"""repro — a reproduction of *Achieving Privacy Preservation When Sharing Data
for Clustering* (Oliveira & Zaïane, 2004).

The package implements the paper's Rotation-Based Transformation (RBT) for
privacy-preserving clustering over centralized data, together with every
substrate the paper relies on or compares against:

* :mod:`repro.core` — RBT itself: rotations, pairwise-security thresholds,
  the security-range solver and the transformation algorithm.
* :mod:`repro.data` — data matrices, relational tables, IO and datasets
  (including the paper's cardiac-arrhythmia worked example).
* :mod:`repro.preprocessing` — identifier suppression and normalization.
* :mod:`repro.metrics` — distances / dissimilarity matrices, clustering
  quality and privacy measures.
* :mod:`repro.clustering` — k-means, k-medoids, hierarchical and DBSCAN
  implemented from scratch (Corollary 1 is exercised across all of them).
* :mod:`repro.baselines` — the prior-work perturbation methods (additive
  noise, translation, scaling, simple rotation, swapping).
* :mod:`repro.attacks` — the re-normalization, brute-force, variance-
  fingerprint and known-sample attacks used in the security analysis.
* :mod:`repro.distributed` — the partitioned-data comparators (vertically
  partitioned k-means, generative-model distributed clustering).
* :mod:`repro.pipeline` — the end-to-end owner workflow of Figure 1.

Quickstart
----------
>>> from repro import PPCPipeline, RBT
>>> from repro.data.datasets import make_patient_cohorts
>>> matrix, labels = make_patient_cohorts(n_patients=90, random_state=0)
>>> bundle = PPCPipeline(RBT(thresholds=0.3, random_state=0)).run(
...     matrix, verify_with_kmeans=True, n_clusters=3
... )
>>> bundle.distances_preserved
True
"""

from . import (
    attacks,
    baselines,
    clustering,
    core,
    data,
    distributed,
    experiments,
    metrics,
    pipeline,
    preprocessing,
)
from .clustering import DBSCAN, AgglomerativeClustering, KMeans, KMedoids
from .core import (
    RBT,
    PairwiseSecurityThreshold,
    RBTResult,
    SecurityRange,
    rbt_transform,
    solve_security_range,
)
from .data import DataMatrix, Schema, Table
from .exceptions import ReproError
from .metrics import (
    adjusted_rand_index,
    dissimilarity_matrix,
    misclassification_error,
    privacy_report,
)
from .pipeline import PPCPipeline, ReleaseBundle
from .preprocessing import MinMaxNormalizer, ZScoreNormalizer

__all__ = [
    # Subpackages
    "attacks",
    "baselines",
    "clustering",
    "core",
    "data",
    "distributed",
    "experiments",
    "metrics",
    "pipeline",
    "preprocessing",
    # Core API
    "RBT",
    "RBTResult",
    "rbt_transform",
    "PairwiseSecurityThreshold",
    "SecurityRange",
    "solve_security_range",
    # Data
    "DataMatrix",
    "Table",
    "Schema",
    # Pre-processing
    "ZScoreNormalizer",
    "MinMaxNormalizer",
    # Clustering
    "KMeans",
    "KMedoids",
    "AgglomerativeClustering",
    "DBSCAN",
    # Metrics
    "dissimilarity_matrix",
    "misclassification_error",
    "adjusted_rand_index",
    "privacy_report",
    # Pipeline
    "PPCPipeline",
    "ReleaseBundle",
    # Errors
    "ReproError",
]

__version__ = "1.0.0"
