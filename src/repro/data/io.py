"""CSV / JSON persistence for tables and data matrices, in-memory and streamed.

The data owner in the paper's scenarios *releases* a transformed database to
a third party.  These helpers provide the serialization layer for that
release: plain CSV and JSON, with the schema stored alongside the values so a
:class:`~repro.data.Table` round-trips losslessly.

Two access styles are provided for matrix CSVs:

* **Materialized** — :func:`matrix_to_csv` / :func:`matrix_from_csv` read or
  write a whole :class:`~repro.data.DataMatrix` at once.
* **Streamed** — :func:`iter_matrix_csv` yields :class:`MatrixCsvChunk` row
  blocks under a configurable ``chunk_rows``, and :class:`MatrixCsvWriter`
  appends row blocks incrementally; together they let the release pipeline
  process datasets that never fit in memory.  The materialized functions are
  thin wrappers over the streamed ones, so both paths share one parser, one
  validator and one value formatter — a matrix written chunk-by-chunk is
  byte-identical to the same matrix written in one call.

Float values are serialized with the shortest round-tripping representation
(:func:`repr`) by default, so a write → read cycle restores every value
**bitwise** — the owner's ``transform`` → ``invert`` contract depends on it.
Pass an explicit printf-style ``float_format`` (e.g. ``"%.6f"``) only for
deliberately lossy, human-oriented output.

Both streamed entry points expose a ``codec`` seam: ``codec="python"`` is the
seed ``csv.reader``/``csv.writer`` lane and remains the cross-check oracle,
while ``codec="fast"`` (the default) routes eligible blocks through the
vectorized codec in :mod:`repro.perf.csv_codec`, which is bitwise-identical
on decode and byte-identical on encode — ineligible blocks fall back to the
oracle lane automatically.  ``iter_matrix_csv`` additionally accepts a
``prefetch`` depth and :class:`MatrixCsvWriter` a ``pipelined`` flag to
overlap I/O with compute across chunks without changing any produced byte.
"""

from __future__ import annotations

import csv
import itertools
import json
import os
import shutil
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from io import StringIO
from pathlib import Path

import numpy as np

from ..exceptions import SerializationError
from .matrix import DataMatrix
from .schema import ColumnRole, Schema
from .table import Table

__all__ = [
    "atomic_write_text",
    "write_csv",
    "read_csv",
    "write_json",
    "read_json",
    "matrix_to_csv",
    "matrix_from_csv",
    "iter_matrix_csv",
    "read_matrix_csv_header",
    "MatrixCsvChunk",
    "MatrixCsvWriter",
    "format_value",
    "DEFAULT_CHUNK_ROWS",
]

#: Default rows per block yielded by :func:`iter_matrix_csv`.
DEFAULT_CHUNK_ROWS: int = 16384


def atomic_write_text(path: str | Path, text: str, *, newline: str | None = None) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + ``os.replace``.

    A crash mid-write leaves either the previous file or nothing at the
    final path — never a torn artifact (the PR 8 crash-safety contract).
    """
    path = Path(path)
    temporary = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with temporary.open("w", newline=newline, encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)


def write_csv(table: Table, path: str | Path, *, include_header: bool = True) -> None:
    """Write ``table`` to ``path`` as CSV (schema roles are not persisted).

    The file is published atomically: rows are staged in memory and land on
    disk via :func:`atomic_write_text`.
    """
    buffer = StringIO(newline="")
    writer = csv.writer(buffer)
    if include_header:
        writer.writerow(table.column_names)
    for record in table.iter_rows():
        writer.writerow([record[name] for name in table.column_names])
    atomic_write_text(path, buffer.getvalue(), newline="")


def read_csv(
    path: str | Path,
    *,
    schema: Schema | None = None,
    numeric_columns: Sequence[str] | None = None,
    identifier_columns: Sequence[str] | None = None,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    When no explicit ``schema`` is supplied, column roles are inferred:
    columns listed in ``identifier_columns`` become identifiers, columns in
    ``numeric_columns`` (or columns whose every value parses as a float)
    become confidential numerics, and everything else becomes categorical.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise SerializationError(f"CSV file {path} is empty")
    header, *data_rows = rows
    if not data_rows:
        raise SerializationError(f"CSV file {path} has a header but no data rows")
    _check_unique_header(header, path)

    columns: dict[str, list[str]] = {name: [] for name in header}
    for row in data_rows:
        if len(row) != len(header):
            raise SerializationError(
                f"CSV row has {len(row)} field(s) but the header declares {len(header)}"
            )
        for name, value in zip(header, row):
            columns[name].append(value)

    if schema is None:
        identifier_columns = set(identifier_columns or [])
        numeric_columns_set = set(numeric_columns) if numeric_columns is not None else None
        roles: dict[str, ColumnRole] = {}
        for name in header:
            if name in identifier_columns:
                roles[name] = ColumnRole.IDENTIFIER
            elif numeric_columns_set is not None:
                roles[name] = (
                    ColumnRole.CONFIDENTIAL_NUMERIC
                    if name in numeric_columns_set
                    else ColumnRole.CATEGORICAL
                )
            else:
                roles[name] = (
                    ColumnRole.CONFIDENTIAL_NUMERIC
                    if _all_parse_as_float(columns[name])
                    else ColumnRole.CATEGORICAL
                )
        schema = Schema.from_names(header, roles=roles)

    typed: dict[str, list] = {}
    for spec in schema:
        raw = columns.get(spec.name)
        if raw is None:
            raise SerializationError(f"schema column {spec.name!r} not present in CSV header")
        if spec.role.is_numeric:
            try:
                typed[spec.name] = [float(value) for value in raw]
            except ValueError as exc:
                raise SerializationError(
                    f"column {spec.name!r} is declared numeric but contains {exc}"
                ) from exc
        else:
            typed[spec.name] = list(raw)
    return Table(schema, typed)


def _check_unique_header(header: Sequence[str], path: Path) -> None:
    """Duplicate header names silently merge columns downstream — reject them."""
    if len(set(header)) != len(header):
        seen: set[str] = set()
        repeated: set[str] = set()
        for name in header:
            (repeated if name in seen else seen).add(name)
        duplicates = sorted(repeated)
        raise SerializationError(
            f"CSV file {path} declares duplicate header name(s) {duplicates}; "
            "column names must be unique"
        )


def _all_parse_as_float(values: Sequence[str]) -> bool:
    """Whether every string in ``values`` parses as a finite float."""
    for value in values:
        try:
            parsed = float(value)
        except ValueError:
            return False
        if not np.isfinite(parsed):
            return False
    return True


def write_json(table: Table, path: str | Path) -> None:
    """Write ``table`` (values and schema roles) to ``path`` as JSON."""
    path = Path(path)
    payload = {
        "schema": [
            {"name": spec.name, "role": spec.role.value, "description": spec.description}
            for spec in table.schema
        ],
        "records": [
            {name: _to_jsonable(value) for name, value in record.items()}
            for record in table.iter_rows()
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def read_json(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"file {path} is not valid JSON: {exc}") from exc
    if "schema" not in payload or "records" not in payload:
        raise SerializationError(f"file {path} is missing the 'schema' or 'records' key")
    try:
        schema = Schema(tuple(_spec_from_payload(entry) for entry in payload["schema"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid schema payload in {path}: {exc}") from exc
    return Table.from_records(payload["records"], schema=schema)


def _spec_from_payload(entry: dict):
    from .schema import ColumnSpec

    return ColumnSpec(entry["name"], ColumnRole(entry["role"]), entry.get("description", ""))


def _to_jsonable(value):
    """Convert numpy scalars to plain Python scalars for JSON output."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


# --------------------------------------------------------------------------- #
# Matrix CSV — streamed core
# --------------------------------------------------------------------------- #
def format_value(value, float_format: str | None = None) -> str:
    """Serialize one matrix value.

    With the default ``float_format=None`` the shortest representation that
    round-trips (``repr``) is used, so ``float(format_value(x)) == x``
    bitwise for every finite float.  A printf-style format gives legacy
    fixed-precision (lossy) output.
    """
    if float_format is None:
        return repr(float(value))
    return float_format % value


@dataclass(frozen=True)
class MatrixCsvChunk:
    """One block of rows from a streamed matrix CSV."""

    #: ``(rows, n_attributes)`` float array of this block's values.
    values: np.ndarray
    #: Object identifiers of this block, or ``None`` when the CSV has none.
    ids: tuple | None
    #: Attribute names (identical across every chunk of one file).
    columns: tuple[str, ...]
    #: Absolute index of this block's first data row (0-based).
    start_row: int

    @property
    def n_rows(self) -> int:
        """Number of rows in this block."""
        return self.values.shape[0]


def read_matrix_csv_header(
    path: str | Path, *, id_column: str | None = "id"
) -> tuple[tuple[str, ...], bool]:
    """Return ``(value_columns, has_ids)`` for a matrix CSV without reading rows."""
    path = Path(path)
    # utf-8-sig: a leading BOM is presentation, not part of the first
    # header name (same tolerance as both decode codecs).
    with path.open(newline="", encoding="utf-8-sig") as handle:
        reader = csv.reader(handle)
        header = None
        for row in reader:
            if row:
                header = row
                break
    if header is None:
        raise SerializationError(f"CSV file {path} does not contain a header and data rows")
    _check_unique_header(header, path)
    has_ids = id_column is not None and bool(header) and header[0] == id_column
    value_columns = tuple(header[1:] if has_ids else header)
    return value_columns, has_ids


def iter_matrix_csv(
    path: str | Path,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    id_column: str | None = "id",
    allow_empty: bool = False,
    codec: str | None = None,
    prefetch: int | None = None,
) -> Iterator[MatrixCsvChunk]:
    """Stream a matrix CSV as :class:`MatrixCsvChunk` blocks of ``chunk_rows`` rows.

    The parser, validation and value typing are exactly those of
    :func:`matrix_from_csv` (which is built on this iterator): ragged rows,
    non-numeric values, duplicate headers and empty files raise
    :class:`~repro.exceptions.SerializationError`.  Peak memory is one block,
    independent of the file size.

    ``allow_empty=True`` accepts a header-only file and yields no chunks — a
    legitimate state for a distributed party whose horizontal shard received
    zero rows; a missing header still raises.

    ``codec`` selects the decode lane (``"fast"`` by default, ``"python"``
    for the seed parser) — the chunks are bitwise identical either way.
    ``prefetch`` (a depth ≥ 1) decodes up to that many chunks ahead on a
    background thread; order and error semantics are unchanged.
    """
    from ..perf.csv_codec import prefetch_chunks, resolve_codec

    if resolve_codec(codec) == "fast":
        chunks = _iter_matrix_csv_fast(
            path, chunk_rows=chunk_rows, id_column=id_column, allow_empty=allow_empty
        )
    else:
        chunks = _iter_matrix_csv_python(
            path, chunk_rows=chunk_rows, id_column=id_column, allow_empty=allow_empty
        )
    if prefetch is not None:
        chunks = prefetch_chunks(chunks, depth=prefetch)
    return chunks


def _validated_chunk_rows(chunk_rows: int) -> int:
    chunk_rows = int(chunk_rows)
    if chunk_rows < 1:
        raise SerializationError(f"chunk_rows must be >= 1, got {chunk_rows}")
    return chunk_rows


def _iter_matrix_csv_fast(
    path: str | Path,
    *,
    chunk_rows: int,
    id_column: str | None,
    allow_empty: bool,
) -> Iterator[MatrixCsvChunk]:
    """Fast decode lane — block parsing in :mod:`repro.perf.csv_codec`."""
    from ..perf.csv_codec import decode_matrix_csv

    chunk_rows = _validated_chunk_rows(chunk_rows)
    yield from decode_matrix_csv(
        path, chunk_rows=chunk_rows, id_column=id_column, allow_empty=allow_empty
    )


def _iter_matrix_csv_python(
    path: str | Path,
    *,
    chunk_rows: int,
    id_column: str | None,
    allow_empty: bool,
) -> Iterator[MatrixCsvChunk]:
    """Seed decode lane — ``csv.reader`` plus per-cell ``float`` (the oracle)."""
    path = Path(path)
    chunk_rows = _validated_chunk_rows(chunk_rows)
    with path.open(newline="", encoding="utf-8-sig") as handle:
        reader = csv.reader(handle)
        header: list[str] | None = None
        ids: list | None = None
        rows: list[list[float]] = []
        start_row = 0
        n_yielded = 0
        columns: tuple[str, ...] = ()
        has_ids = False
        for row in reader:
            if not row:
                continue
            if header is None:
                header = row
                _check_unique_header(header, path)
                has_ids = id_column is not None and bool(header) and header[0] == id_column
                columns = tuple(header[1:] if has_ids else header)
                ids = [] if has_ids else None
                continue
            if len(row) != len(header):
                raise SerializationError(
                    f"CSV row has {len(row)} field(s) but the header declares {len(header)}"
                )
            if has_ids:
                ids.append(row[0])  # type: ignore[union-attr]
                payload = row[1:]
            else:
                payload = row
            try:
                rows.append([float(value) for value in payload])
            except ValueError as exc:
                raise SerializationError(f"non-numeric value in matrix CSV {path}: {exc}") from exc
            if len(rows) == chunk_rows:
                yield MatrixCsvChunk(
                    values=np.asarray(rows, dtype=float).reshape(len(rows), len(columns)),
                    ids=tuple(ids) if has_ids else None,
                    columns=columns,
                    start_row=start_row,
                )
                start_row += len(rows)
                n_yielded += len(rows)
                rows = []
                ids = [] if has_ids else None
        if rows:
            yield MatrixCsvChunk(
                values=np.asarray(rows, dtype=float).reshape(len(rows), len(columns)),
                ids=tuple(ids) if has_ids else None,
                columns=columns,
                start_row=start_row,
            )
            n_yielded += len(rows)
    if header is None or (n_yielded == 0 and not allow_empty):
        raise SerializationError(f"CSV file {path} does not contain a header and data rows")


#: Process-wide counter so concurrent writers targeting the same path from
#: one process never collide on their temporary file name.
_WRITER_SERIAL = itertools.count()


class MatrixCsvWriter:
    """Incremental matrix CSV writer (the streamed dual of :func:`iter_matrix_csv`).

    Writes the header on construction and appends row blocks with
    :meth:`write_rows`; use as a context manager.  A file assembled from any
    sequence of blocks is byte-identical to :func:`matrix_to_csv` writing the
    same rows at once, because both share this class and one value formatter.

    Writes are **atomic**: rows go to a temporary file inside the destination
    directory, and only a clean :meth:`close` publishes it over ``path`` with
    ``os.replace``.  Leaving the context manager on an exception (or calling
    :meth:`abort`) discards the temporary file, so a crashed writer never
    leaves a torn or half-written release on disk — the previous contents of
    ``path``, if any, survive untouched.

    Parameters
    ----------
    path:
        Destination file.
    columns:
        Attribute names (the value columns of the header).
    include_ids:
        Whether an ``id`` column leads each row; :meth:`write_rows` then
        requires ``ids``.
    float_format:
        ``None`` (default) for bitwise round-tripping shortest-repr output,
        or a printf-style format for legacy fixed-precision output.
    append_from:
        Optional existing matrix CSV whose bytes (header included) seed the
        temporary file; the writer then *extends* it instead of writing a
        fresh header.  Combined with the atomic commit this is how the
        versioned release bundle appends rows crash-safely: pass the current
        release as both ``append_from`` and ``path``.
    codec:
        ``"fast"`` (default) encodes eligible blocks with the batch
        formatter in :mod:`repro.perf.csv_codec` — byte-identical to the
        ``"python"`` seed lane, which ineligible blocks (non-string ids,
        ids needing CSV quoting, explicit ``float_format``) always use.
    pipelined:
        When true, encoded text blocks are written by a background thread
        (double-buffered), overlapping encode with disk I/O.  The produced
        bytes and the atomic-commit semantics are unchanged; write errors
        surface on the next :meth:`write_rows` or :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        columns: Sequence[str],
        *,
        include_ids: bool = False,
        float_format: str | None = None,
        append_from: str | Path | None = None,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> None:
        from ..perf.csv_codec import PipelinedTextSink, resolve_codec

        self.path = Path(path)
        self.columns = tuple(str(name) for name in columns)
        self.include_ids = bool(include_ids)
        self.float_format = float_format
        self.codec = resolve_codec(codec)
        self._rows_written = 0
        self._temporary = self.path.with_name(
            f".{self.path.name}.tmp.{os.getpid()}.{next(_WRITER_SERIAL)}"
        )
        if append_from is not None:
            shutil.copyfile(append_from, self._temporary)
            self._handle = self._temporary.open("a", newline="", encoding="utf-8")
            self._writer = csv.writer(self._handle)
            self._text_pending = False
        else:
            self._handle = self._temporary.open("w", newline="", encoding="utf-8")
            self._writer = csv.writer(self._handle)
            header = (["id"] if self.include_ids else []) + list(self.columns)
            self._writer.writerow(header)
            self._text_pending = True
        self._sink = PipelinedTextSink(self._handle) if pipelined else None

    @property
    def rows_written(self) -> int:
        """Number of data rows written so far."""
        return self._rows_written

    def write_rows(self, values, ids: Sequence | None = None) -> None:
        """Append a ``(rows, n_attributes)`` block (with per-row ids when enabled)."""
        if self._handle.closed:
            raise SerializationError(f"MatrixCsvWriter for {self.path} is already closed")
        block = np.asarray(values, dtype=float)
        if block.ndim != 2 or block.shape[1] != len(self.columns):
            raise SerializationError(
                f"row block must have {len(self.columns)} column(s), got shape {block.shape}"
            )
        if self.include_ids:
            if ids is None or len(ids) != block.shape[0]:
                raise SerializationError(
                    f"writer expects one id per row ({block.shape[0]}), "
                    f"got {0 if ids is None else len(ids)}"
                )
        elif ids is not None:
            raise SerializationError("writer was built with include_ids=False but ids were given")
        fmt = self.float_format
        block_ids = ids if self.include_ids else None
        text: str | None = None
        if self.codec == "fast" and fmt is None:
            from ..perf.csv_codec import encode_matrix_block

            text = encode_matrix_block(block, block_ids)
        if text is None and (self.codec == "fast" or self._sink is not None):
            # Oracle-lane bytes for blocks the fast encoder declines, and
            # for the python codec when text must cross the pipelined sink.
            from ..perf.csv_codec import encode_block_via_csv_writer

            text = encode_block_via_csv_writer(block, block_ids, fmt)
        if text is not None:
            if self._sink is not None:
                self._sink.write(text)
            else:
                # ASCII text encodes bytewise to UTF-8, so writing the
                # encoded block straight to the binary buffer skips the
                # TextIOWrapper machinery; any pending text-layer output
                # (header, csv.writer rows) must reach the buffer first to
                # keep the byte order.
                if self._text_pending:
                    self._handle.flush()
                    self._text_pending = False
                self._handle.buffer.write(text.encode("utf-8"))
        else:
            for row_index in range(block.shape[0]):
                row: list = []
                if self.include_ids:
                    row.append(ids[row_index])  # type: ignore[index]
                row.extend(format_value(value, fmt) for value in block[row_index])
                self._writer.writerow(row)
            self._text_pending = True
        self._rows_written += block.shape[0]

    def close(self) -> None:
        """Flush, close and atomically publish the file over ``path`` (idempotent)."""
        if not self._handle.closed:
            if self._sink is not None:
                # A sink failure propagates before the handle closes, so the
                # context manager still aborts instead of publishing.
                self._sink.close()
            self._handle.close()
            os.replace(self._temporary, self.path)

    def abort(self) -> None:
        """Close and discard the temporary file without touching ``path`` (idempotent)."""
        if self._sink is not None:
            try:
                self._sink.close()
            except BaseException:  # repro-lint: disable=RPR010 -- abort() discards the torn write; close() is the reporting path
                pass  # aborting — the pending sink error is intentionally dropped
        if not self._handle.closed:
            self._handle.close()
        self._temporary.unlink(missing_ok=True)

    def __enter__(self) -> MatrixCsvWriter:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


# --------------------------------------------------------------------------- #
# Matrix CSV — materialized wrappers
# --------------------------------------------------------------------------- #
def matrix_to_csv(
    matrix: DataMatrix,
    path: str | Path,
    *,
    float_format: str | None = None,
    codec: str | None = None,
) -> None:
    """Write a :class:`DataMatrix` to CSV (ids first when present).

    The default ``float_format=None`` emits the shortest representation that
    round-trips, so :func:`matrix_from_csv` restores every value bitwise;
    pass e.g. ``"%.6f"`` for deliberately truncated human-oriented output.
    """
    with MatrixCsvWriter(
        path,
        matrix.columns,
        include_ids=matrix.ids is not None,
        float_format=float_format,
        codec=codec,
    ) as writer:
        writer.write_rows(matrix.values, ids=matrix.ids)


def matrix_from_csv(
    path: str | Path, *, id_column: str | None = "id", codec: str | None = None
) -> DataMatrix:
    """Read a :class:`DataMatrix` written by :func:`matrix_to_csv`."""
    chunks = list(iter_matrix_csv(path, id_column=id_column, codec=codec))
    values = (
        chunks[0].values
        if len(chunks) == 1
        else np.concatenate([chunk.values for chunk in chunks], axis=0)
    )
    ids: list | None = None
    if chunks[0].ids is not None:
        ids = [object_id for chunk in chunks for object_id in chunk.ids]  # type: ignore[union-attr]
    return DataMatrix(values, columns=chunks[0].columns, ids=ids)
