"""CSV / JSON persistence for tables and data matrices.

The data owner in the paper's scenarios *releases* a transformed database to
a third party.  These helpers provide the serialization layer for that
release: plain CSV and JSON, with the schema stored alongside the values so a
:class:`~repro.data.Table` round-trips losslessly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from ..exceptions import SerializationError
from .matrix import DataMatrix
from .schema import ColumnRole, Schema
from .table import Table

__all__ = [
    "write_csv",
    "read_csv",
    "write_json",
    "read_json",
    "matrix_to_csv",
    "matrix_from_csv",
]


def write_csv(table: Table, path: str | Path, *, include_header: bool = True) -> None:
    """Write ``table`` to ``path`` as CSV (schema roles are not persisted)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if include_header:
            writer.writerow(table.column_names)
        for record in table.iter_rows():
            writer.writerow([record[name] for name in table.column_names])


def read_csv(
    path: str | Path,
    *,
    schema: Schema | None = None,
    numeric_columns: Sequence[str] | None = None,
    identifier_columns: Sequence[str] | None = None,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    When no explicit ``schema`` is supplied, column roles are inferred:
    columns listed in ``identifier_columns`` become identifiers, columns in
    ``numeric_columns`` (or columns whose every value parses as a float)
    become confidential numerics, and everything else becomes categorical.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise SerializationError(f"CSV file {path} is empty")
    header, *data_rows = rows
    if not data_rows:
        raise SerializationError(f"CSV file {path} has a header but no data rows")

    columns: dict[str, list[str]] = {name: [] for name in header}
    for row in data_rows:
        if len(row) != len(header):
            raise SerializationError(
                f"CSV row has {len(row)} field(s) but the header declares {len(header)}"
            )
        for name, value in zip(header, row):
            columns[name].append(value)

    if schema is None:
        identifier_columns = set(identifier_columns or [])
        numeric_columns_set = set(numeric_columns) if numeric_columns is not None else None
        roles: dict[str, ColumnRole] = {}
        for name in header:
            if name in identifier_columns:
                roles[name] = ColumnRole.IDENTIFIER
            elif numeric_columns_set is not None:
                roles[name] = (
                    ColumnRole.CONFIDENTIAL_NUMERIC
                    if name in numeric_columns_set
                    else ColumnRole.CATEGORICAL
                )
            else:
                roles[name] = (
                    ColumnRole.CONFIDENTIAL_NUMERIC
                    if _all_parse_as_float(columns[name])
                    else ColumnRole.CATEGORICAL
                )
        schema = Schema.from_names(header, roles=roles)

    typed: dict[str, list] = {}
    for spec in schema:
        raw = columns.get(spec.name)
        if raw is None:
            raise SerializationError(f"schema column {spec.name!r} not present in CSV header")
        if spec.role.is_numeric:
            try:
                typed[spec.name] = [float(value) for value in raw]
            except ValueError as exc:
                raise SerializationError(
                    f"column {spec.name!r} is declared numeric but contains {exc}"
                ) from exc
        else:
            typed[spec.name] = list(raw)
    return Table(schema, typed)


def _all_parse_as_float(values: Sequence[str]) -> bool:
    """Whether every string in ``values`` parses as a finite float."""
    for value in values:
        try:
            parsed = float(value)
        except ValueError:
            return False
        if not np.isfinite(parsed):
            return False
    return True


def write_json(table: Table, path: str | Path) -> None:
    """Write ``table`` (values and schema roles) to ``path`` as JSON."""
    path = Path(path)
    payload = {
        "schema": [
            {"name": spec.name, "role": spec.role.value, "description": spec.description}
            for spec in table.schema
        ],
        "records": [
            {name: _to_jsonable(value) for name, value in record.items()}
            for record in table.iter_rows()
        ],
    }
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")


def read_json(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"file {path} is not valid JSON: {exc}") from exc
    if "schema" not in payload or "records" not in payload:
        raise SerializationError(f"file {path} is missing the 'schema' or 'records' key")
    try:
        schema = Schema(
            tuple(
                _spec_from_payload(entry)
                for entry in payload["schema"]
            )
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid schema payload in {path}: {exc}") from exc
    return Table.from_records(payload["records"], schema=schema)


def _spec_from_payload(entry: dict):
    from .schema import ColumnSpec

    return ColumnSpec(entry["name"], ColumnRole(entry["role"]), entry.get("description", ""))


def _to_jsonable(value):
    """Convert numpy scalars to plain Python scalars for JSON output."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def matrix_to_csv(matrix: DataMatrix, path: str | Path, *, float_format: str = "%.6f") -> None:
    """Write a :class:`DataMatrix` to CSV (ids first when present)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header = (["id"] if matrix.ids is not None else []) + list(matrix.columns)
        writer.writerow(header)
        for row_index in range(matrix.n_objects):
            row = []
            if matrix.ids is not None:
                row.append(matrix.ids[row_index])
            row.extend(float_format % value for value in matrix.values[row_index])
            writer.writerow(row)


def matrix_from_csv(path: str | Path, *, id_column: str | None = "id") -> DataMatrix:
    """Read a :class:`DataMatrix` written by :func:`matrix_to_csv`."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if len(rows) < 2:
        raise SerializationError(f"CSV file {path} does not contain a header and data rows")
    header, *data_rows = rows
    has_ids = id_column is not None and header and header[0] == id_column
    value_columns = header[1:] if has_ids else header
    ids: list[str] | None = [] if has_ids else None
    values: list[list[float]] = []
    for row in data_rows:
        if len(row) != len(header):
            raise SerializationError(
                f"CSV row has {len(row)} field(s) but the header declares {len(header)}"
            )
        if has_ids:
            ids.append(row[0])  # type: ignore[union-attr]
            payload = row[1:]
        else:
            payload = row
        try:
            values.append([float(value) for value in payload])
        except ValueError as exc:
            raise SerializationError(f"non-numeric value in matrix CSV {path}: {exc}") from exc
    return DataMatrix(values, columns=value_columns, ids=ids)
