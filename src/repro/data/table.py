"""A light in-memory relational table with mixed column types.

The paper's motivating scenarios start from relational records (patient
records, customer records) containing identifiers, categorical fields and
confidential numerical attributes.  :class:`Table` models that starting
point: it stores heterogeneous columns under a :class:`~repro.data.Schema`,
supports selection / projection / filtering, and can be lowered to the purely
numerical :class:`~repro.data.DataMatrix` that the RBT method operates on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import SchemaError, ValidationError
from .matrix import DataMatrix
from .schema import ColumnRole, Schema

__all__ = ["Table"]


class Table:
    """An in-memory relational table with a typed :class:`Schema`.

    Parameters
    ----------
    schema:
        Column declarations.  Numeric roles are stored as float arrays,
        identifier / categorical roles as object arrays.
    columns:
        Mapping from column name to a sequence of values.  Every column must
        appear in the schema and have the same length.

    Examples
    --------
    >>> schema = Schema.from_names(
    ...     ["id", "age"],
    ...     roles={"id": ColumnRole.IDENTIFIER},
    ...     default_role=ColumnRole.CONFIDENTIAL_NUMERIC,
    ... )
    >>> table = Table(schema, {"id": [1, 2], "age": [30.0, 40.0]})
    >>> table.n_rows
    2
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence]) -> None:
        if set(columns.keys()) != set(schema.names):
            raise SchemaError(
                "table columns must match the schema exactly; "
                f"schema={sorted(schema.names)}, provided={sorted(columns.keys())}"
            )
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"all columns must have the same length, got {lengths}")
        self._schema = schema
        self._columns: dict[str, np.ndarray] = {}
        for spec in schema:
            raw = columns[spec.name]
            if spec.role.is_numeric:
                try:
                    array = np.asarray(raw, dtype=float)
                except (TypeError, ValueError) as exc:
                    raise SchemaError(
                        f"column {spec.name!r} is declared numeric but holds non-numeric values"
                    ) from exc
                if array.size and not np.all(np.isfinite(array)):
                    raise SchemaError(f"numeric column {spec.name!r} contains NaN or inf")
            else:
                array = np.asarray(raw, dtype=object)
            self._columns[spec.name] = array

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """The table's column declarations."""
        return self._schema

    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return self._schema.names

    @property
    def n_rows(self) -> int:
        """Number of records in the table."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def n_columns(self) -> int:
        """Number of columns in the table."""
        return len(self._schema)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - repr is cosmetic
        return f"Table(n_rows={self.n_rows}, columns={self.column_names})"

    def column(self, name: str) -> np.ndarray:
        """Return a copy of column ``name``."""
        if name not in self._columns:
            raise KeyError(f"unknown column {name!r}; available: {self.column_names}")
        return self._columns[name].copy()

    def row(self, index: int) -> dict[str, object]:
        """Return record ``index`` as a dictionary."""
        if not 0 <= index < self.n_rows:
            raise ValidationError(f"row index {index} out of range for table of {self.n_rows} rows")
        return {name: self._columns[name][index] for name in self.column_names}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate over records as dictionaries."""
        for index in range(self.n_rows):
            yield self.row(index)

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def select_columns(self, names: Sequence[str]) -> Table:
        """Projection: keep only the columns in ``names``."""
        schema = self._schema.select(names)
        return Table(schema, {name: self._columns[name] for name in names})

    def drop_columns(self, names: Iterable[str]) -> Table:
        """Projection: drop the columns in ``names``."""
        schema = self._schema.drop(names)
        return Table(schema, {name: self._columns[name] for name in schema.names})

    def filter_rows(self, predicate: Callable[[dict[str, object]], bool]) -> Table:
        """Selection: keep only rows for which ``predicate(record)`` is true."""
        keep = [index for index, record in enumerate(self.iter_rows()) if predicate(record)]
        return self.take_rows(keep)

    def take_rows(self, indices: Sequence[int]) -> Table:
        """Return a table with the rows at ``indices`` in the given order."""
        indices = list(indices)
        for index in indices:
            if not 0 <= index < self.n_rows:
                raise ValidationError(f"row index {index} out of range")
        columns = {name: self._columns[name][indices] for name in self.column_names}
        return Table(self._schema, columns)

    def head(self, count: int = 5) -> Table:
        """Return the first ``count`` rows."""
        return self.take_rows(range(min(count, self.n_rows)))

    def suppress_identifiers(self) -> Table:
        """Drop every column whose role is :attr:`ColumnRole.IDENTIFIER`.

        This is the "Suppressing Identifiers" pre-processing step of
        Section 4.1 and the "Data Anonymization" step of Section 5.3.
        """
        identifiers = self._schema.identifier_names()
        if not identifiers:
            return self
        return self.drop_columns(identifiers)

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_matrix(
        self,
        columns: Sequence[str] | None = None,
        *,
        id_column: str | None = None,
    ) -> DataMatrix:
        """Lower the table to a numerical :class:`DataMatrix`.

        Parameters
        ----------
        columns:
            Numeric columns to include.  Defaults to every numeric column in
            the schema (confidential first, in schema order).
        id_column:
            Optional identifier column whose values become the matrix ``ids``.
        """
        if columns is None:
            columns = self._schema.numeric_names()
        if not columns:
            raise SchemaError("table has no numeric columns to convert to a DataMatrix")
        for name in columns:
            if name not in self._schema:
                raise SchemaError(f"unknown column {name!r}")
            if not self._schema.role_of(name).is_numeric:
                raise SchemaError(f"column {name!r} is not numeric and cannot enter a DataMatrix")
        values = np.column_stack([self._columns[name].astype(float) for name in columns])
        ids = None
        if id_column is not None:
            if id_column not in self._schema:
                raise SchemaError(f"unknown id column {id_column!r}")
            ids = list(self._columns[id_column])
        return DataMatrix(values, columns=list(columns), ids=ids)

    def to_records(self) -> list[dict[str, object]]:
        """Return the table as a list of dictionaries."""
        return list(self.iter_rows())

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, object]],
        schema: Schema | None = None,
        *,
        default_role: ColumnRole = ColumnRole.NUMERIC,
        roles: Mapping[str, ColumnRole] | None = None,
    ) -> Table:
        """Build a table from a sequence of record dictionaries.

        When no ``schema`` is given, one is inferred from the first record:
        every key becomes a column with ``default_role`` unless overridden in
        ``roles``.
        """
        if not records:
            raise ValidationError("records must not be empty")
        names = list(records[0].keys())
        if schema is None:
            schema = Schema.from_names(names, roles=dict(roles or {}), default_role=default_role)
        columns: dict[str, list] = {name: [] for name in schema.names}
        for record in records:
            for name in schema.names:
                if name not in record:
                    raise ValidationError(f"record is missing column {name!r}")
                columns[name].append(record[name])
        return cls(schema, columns)

    def with_matrix_values(self, matrix: DataMatrix) -> Table:
        """Return a table where the columns named in ``matrix`` are replaced by its values.

        Used to fold a transformed (e.g. RBT-rotated) matrix back into the
        original relational context for release.
        """
        if matrix.n_objects != self.n_rows:
            raise ValidationError(
                f"matrix has {matrix.n_objects} object(s) but the table has {self.n_rows} row(s)"
            )
        columns = {name: self._columns[name].copy() for name in self.column_names}
        for name in matrix.columns:
            if name not in self._schema:
                raise SchemaError(f"matrix column {name!r} does not exist in the table")
            columns[name] = matrix.column(name)
        return Table(self._schema, columns)
