"""The :class:`DataMatrix` abstraction from Section 3.2 of the paper.

A data matrix is an ``m x n`` array ``D`` where each of the ``m`` rows is an
object and each of the ``n`` columns is a numerical attribute.  The class is
a thin, immutable wrapper over a ``numpy`` array that keeps column names and
(optionally) per-object identifiers, so transformation steps can be expressed
in terms of attribute names rather than raw column indices.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .._validation import as_float_matrix, check_columns_exist
from ..exceptions import SchemaError, ValidationError

__all__ = ["DataMatrix"]


class DataMatrix:
    """An immutable named-column numerical matrix (``m`` objects x ``n`` attributes).

    Parameters
    ----------
    values:
        2-D numeric array-like of shape ``(m, n)``.
    columns:
        Attribute names, one per column.  Defaults to ``x0, x1, ...``.
    ids:
        Optional per-object identifiers (length ``m``).  They are carried
        along transformations but never participate in them, mirroring the
        paper's treatment of the ``ID`` attribute in Tables 1–3.

    Examples
    --------
    >>> matrix = DataMatrix([[1.0, 2.0], [3.0, 4.0]], columns=["age", "weight"])
    >>> matrix.shape
    (2, 2)
    >>> matrix.column("age").tolist()
    [1.0, 3.0]
    """

    __slots__ = ("_values", "_columns", "_ids")

    def __init__(
        self,
        values,
        columns: Sequence[str] | None = None,
        ids: Sequence | None = None,
    ) -> None:
        matrix = as_float_matrix(values, name="values")
        n_rows, n_cols = matrix.shape
        if columns is None:
            columns = [f"x{i}" for i in range(n_cols)]
        columns = [str(name) for name in columns]
        if len(columns) != n_cols:
            raise SchemaError(
                f"expected {n_cols} column name(s) for a matrix with {n_cols} column(s), "
                f"got {len(columns)}"
            )
        if len(set(columns)) != len(columns):
            raise SchemaError(f"column names must be unique, got {columns}")
        if ids is not None:
            ids = tuple(ids)
            if len(ids) != n_rows:
                raise ValidationError(
                    f"ids must have one entry per row ({n_rows}), got {len(ids)}"
                )
        matrix = matrix.copy()
        matrix.setflags(write=False)
        self._values = matrix
        self._columns = tuple(columns)
        self._ids = ids

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(m, n)`` float array of attribute values."""
        return self._values

    @property
    def columns(self) -> tuple[str, ...]:
        """Attribute names, one per column."""
        return self._columns

    @property
    def ids(self) -> tuple | None:
        """Per-object identifiers, or ``None`` when they were suppressed."""
        return self._ids

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_objects, n_attributes)``."""
        return self._values.shape

    @property
    def n_objects(self) -> int:
        """Number of rows (``m`` in the paper's notation)."""
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of columns (``n`` in the paper's notation)."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.n_objects

    def __repr__(self) -> str:  # pragma: no cover - repr is cosmetic
        return (
            f"DataMatrix(n_objects={self.n_objects}, n_attributes={self.n_attributes}, "
            f"columns={list(self._columns)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataMatrix):
            return NotImplemented
        return (
            self._columns == other._columns
            and self._ids == other._ids
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self._columns, self._ids, self._values.tobytes()))

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    def column_index(self, name: str) -> int:
        """Return the positional index of column ``name``."""
        try:
            return self._columns.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown column {name!r}; available: {list(self._columns)}") from exc

    def column(self, name: str) -> np.ndarray:
        """Return a copy of the values of column ``name`` as a 1-D array."""
        return self._values[:, self.column_index(name)].copy()

    def columns_array(self, names: Sequence[str]) -> np.ndarray:
        """Return a copy of the values of several columns, in the given order."""
        check_columns_exist(names, self._columns, name="names")
        indices = [self.column_index(name) for name in names]
        return self._values[:, indices].copy()

    def select(self, names: Sequence[str]) -> DataMatrix:
        """Return a new matrix restricted to ``names`` (projection)."""
        return DataMatrix(self.columns_array(names), columns=list(names), ids=self._ids)

    def drop(self, names: Iterable[str]) -> DataMatrix:
        """Return a new matrix without the columns in ``names``."""
        to_drop = set(names)
        check_columns_exist(to_drop, self._columns, name="names")
        kept = [name for name in self._columns if name not in to_drop]
        if not kept:
            raise ValidationError("cannot drop every column of a DataMatrix")
        return self.select(kept)

    def rows(self, indices: Sequence[int]) -> DataMatrix:
        """Return a new matrix with only the rows at ``indices`` (selection)."""
        indices = list(indices)
        ids = None if self._ids is None else tuple(self._ids[i] for i in indices)
        return DataMatrix(self._values[indices, :], columns=self._columns, ids=ids)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_values(self, values) -> DataMatrix:
        """Return a new matrix with the same columns/ids but different values."""
        values = as_float_matrix(values, name="values")
        if values.shape != self.shape:
            raise ValidationError(
                f"replacement values must have shape {self.shape}, got {values.shape}"
            )
        return DataMatrix(values, columns=self._columns, ids=self._ids)

    def with_column_values(self, updates: Mapping[str, np.ndarray]) -> DataMatrix:
        """Return a new matrix where the columns named in ``updates`` are replaced."""
        check_columns_exist(updates.keys(), self._columns, name="updates")
        values = self._values.copy()
        for name, column_values in updates.items():
            column_values = np.asarray(column_values, dtype=float).ravel()
            if column_values.size != self.n_objects:
                raise ValidationError(
                    f"replacement for column {name!r} must have length {self.n_objects}, "
                    f"got {column_values.size}"
                )
            values[:, self.column_index(name)] = column_values
        return DataMatrix(values, columns=self._columns, ids=self._ids)

    def without_ids(self) -> DataMatrix:
        """Return a copy with object identifiers suppressed (anonymization step 2)."""
        return DataMatrix(self._values, columns=self._columns, ids=None)

    def rename(self, mapping: Mapping[str, str]) -> DataMatrix:
        """Return a copy with columns renamed according to ``mapping``."""
        check_columns_exist(mapping.keys(), self._columns, name="mapping")
        new_columns = [mapping.get(name, name) for name in self._columns]
        return DataMatrix(self._values, columns=new_columns, ids=self._ids)

    # ------------------------------------------------------------------ #
    # Statistics used throughout the paper
    # ------------------------------------------------------------------ #
    def column_means(self) -> np.ndarray:
        """Arithmetic mean of every attribute."""
        return self._values.mean(axis=0)

    def column_variances(self, *, ddof: int = 0) -> np.ndarray:
        """Variance of every attribute (population variance by default, Eq. 8)."""
        return self._values.var(axis=0, ddof=ddof)

    def column_stds(self, *, ddof: int = 0) -> np.ndarray:
        """Standard deviation of every attribute (population by default)."""
        return self._values.std(axis=0, ddof=ddof)

    def column_minmax(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-attribute minimum and maximum."""
        return self._values.min(axis=0), self._values.max(axis=0)

    def describe(self) -> dict[str, dict[str, float]]:
        """Return per-column summary statistics (mean, std, min, max, variance)."""
        summary: dict[str, dict[str, float]] = {}
        means = self.column_means()
        stds = self.column_stds()
        variances = self.column_variances()
        minima, maxima = self.column_minmax()
        for index, name in enumerate(self._columns):
            summary[name] = {
                "mean": float(means[index]),
                "std": float(stds[index]),
                "var": float(variances[index]),
                "min": float(minima[index]),
                "max": float(maxima[index]),
            }
        return summary

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_records(self) -> list[dict[str, float]]:
        """Return the matrix as a list of per-object dictionaries (including ids)."""
        records = []
        for row_index in range(self.n_objects):
            record: dict[str, float] = {}
            if self._ids is not None:
                record["id"] = self._ids[row_index]
            for col_index, name in enumerate(self._columns):
                record[name] = float(self._values[row_index, col_index])
            records.append(record)
        return records

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, float]],
        *,
        columns: Sequence[str] | None = None,
        id_field: str | None = None,
    ) -> DataMatrix:
        """Build a matrix from a sequence of per-object mappings.

        Parameters
        ----------
        records:
            One mapping per object.
        columns:
            Attribute order; defaults to the keys of the first record
            (excluding ``id_field``).
        id_field:
            Optional key holding the object identifier.
        """
        if not records:
            raise ValidationError("records must not be empty")
        if columns is None:
            columns = [key for key in records[0].keys() if key != id_field]
        ids = None
        if id_field is not None:
            ids = [record[id_field] for record in records]
        rows = []
        for record in records:
            try:
                rows.append([float(record[name]) for name in columns])
            except KeyError as exc:
                raise ValidationError(f"record is missing attribute {exc.args[0]!r}") from exc
        return cls(rows, columns=columns, ids=ids)
