"""Column schemas for relational tables and data matrices.

The paper distinguishes three kinds of attributes in a record (Section 4.1):

* *identifiers* (name, address, phone, ID) — suppressed before release;
* *confidential numerical attributes* — normalized and distorted by RBT;
* other attributes that are simply not subjected to clustering.

:class:`ColumnRole` captures that distinction, and :class:`Schema` groups a
set of :class:`ColumnSpec` declarations so pre-processing steps can decide
what to suppress, normalize and rotate.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import Enum

from ..exceptions import SchemaError

__all__ = ["ColumnRole", "ColumnSpec", "Schema"]


class ColumnRole(str, Enum):
    """Semantic role of a column with respect to privacy-preserving clustering."""

    #: Direct or quasi identifier (name, address, record ID, ...); suppressed on release.
    IDENTIFIER = "identifier"
    #: Confidential numerical attribute that participates in clustering and must be distorted.
    CONFIDENTIAL_NUMERIC = "confidential_numeric"
    #: Numerical attribute used for clustering but not considered sensitive.
    NUMERIC = "numeric"
    #: Categorical attribute kept for bookkeeping; never clustered by the paper's method.
    CATEGORICAL = "categorical"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this role are treated as real numbers."""
        return self in (ColumnRole.CONFIDENTIAL_NUMERIC, ColumnRole.NUMERIC)


@dataclass(frozen=True)
class ColumnSpec:
    """Declaration of a single column.

    Parameters
    ----------
    name:
        Column name; must be unique within a :class:`Schema`.
    role:
        Semantic :class:`ColumnRole`.
    description:
        Optional free-text description (unit, provenance).
    """

    name: str
    role: ColumnRole = ColumnRole.NUMERIC
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")
        if not isinstance(self.role, ColumnRole):
            object.__setattr__(self, "role", ColumnRole(self.role))


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`ColumnSpec` declarations.

    Examples
    --------
    >>> schema = Schema.from_names(
    ...     ["id", "age", "weight"],
    ...     roles={"id": ColumnRole.IDENTIFIER},
    ...     default_role=ColumnRole.CONFIDENTIAL_NUMERIC,
    ... )
    >>> schema.identifier_names()
    ['id']
    >>> schema.confidential_names()
    ['age', 'weight']
    """

    columns: tuple[ColumnSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column name(s) in schema: {sorted(duplicates)}")
        object.__setattr__(self, "columns", tuple(self.columns))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        *,
        roles: dict[str, ColumnRole] | None = None,
        default_role: ColumnRole = ColumnRole.NUMERIC,
    ) -> Schema:
        """Build a schema from column names with an optional per-name role override."""
        roles = roles or {}
        unknown = set(roles) - set(names)
        if unknown:
            raise SchemaError(f"role overrides refer to unknown column(s): {sorted(unknown)}")
        specs = [ColumnSpec(name, roles.get(name, default_role)) for name in names]
        return cls(tuple(specs))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> list[str]:
        """All column names, in declaration order."""
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return any(column.name == name for column in self.columns)

    def __getitem__(self, name: str) -> ColumnSpec:
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)

    def role_of(self, name: str) -> ColumnRole:
        """Return the role declared for column ``name``."""
        return self[name].role

    def names_with_role(self, role: ColumnRole) -> list[str]:
        """Return the names of every column declared with ``role``."""
        return [column.name for column in self.columns if column.role == role]

    def identifier_names(self) -> list[str]:
        """Names of identifier columns (to be suppressed before release)."""
        return self.names_with_role(ColumnRole.IDENTIFIER)

    def confidential_names(self) -> list[str]:
        """Names of confidential numerical columns (to be distorted by RBT)."""
        return self.names_with_role(ColumnRole.CONFIDENTIAL_NUMERIC)

    def numeric_names(self) -> list[str]:
        """Names of every numeric column (confidential or not)."""
        return [column.name for column in self.columns if column.role.is_numeric]

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def select(self, names: Iterable[str]) -> Schema:
        """Return a new schema restricted to ``names`` (kept in the given order)."""
        specs = []
        for name in names:
            if name not in self:
                raise SchemaError(f"cannot select unknown column {name!r}")
            specs.append(self[name])
        return Schema(tuple(specs))

    def drop(self, names: Iterable[str]) -> Schema:
        """Return a new schema without the columns in ``names``."""
        to_drop = set(names)
        unknown = to_drop - set(self.names)
        if unknown:
            raise SchemaError(f"cannot drop unknown column(s): {sorted(unknown)}")
        return Schema(tuple(column for column in self.columns if column.name not in to_drop))

    def with_role(self, name: str, role: ColumnRole) -> Schema:
        """Return a new schema where column ``name`` has role ``role``."""
        if name not in self:
            raise SchemaError(f"cannot re-role unknown column {name!r}")
        specs = [
            ColumnSpec(column.name, role, column.description) if column.name == name else column
            for column in self.columns
        ]
        return Schema(tuple(specs))
