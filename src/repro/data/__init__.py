"""Data substrate: schemas, data matrices, relational tables, IO and datasets.

The paper operates on *data matrices* (Section 3.2): ``m`` objects described
by ``n`` numerical attributes, typically extracted from a relational table
after suppressing identifiers.  This package provides that substrate:

* :class:`Schema` / :class:`ColumnSpec` — typed column declarations.
* :class:`DataMatrix` — an immutable, named-column numerical matrix.
* :class:`Table` — a light in-memory relational table (mixed column types,
  selection, projection, conversion to :class:`DataMatrix`).
* :mod:`repro.data.io` — CSV / JSON persistence.
* :mod:`repro.data.datasets` — the paper's cardiac-arrhythmia sample and
  synthetic dataset generators used by the benchmarks.
"""

from . import datasets
from .io import (
    MatrixCsvChunk,
    MatrixCsvWriter,
    iter_matrix_csv,
    matrix_from_csv,
    matrix_to_csv,
    read_csv,
    read_json,
    read_matrix_csv_header,
    write_csv,
    write_json,
)
from .matrix import DataMatrix
from .schema import ColumnRole, ColumnSpec, Schema
from .table import Table

__all__ = [
    "ColumnRole",
    "ColumnSpec",
    "Schema",
    "DataMatrix",
    "Table",
    "read_csv",
    "write_csv",
    "read_json",
    "write_json",
    "matrix_from_csv",
    "matrix_to_csv",
    "iter_matrix_csv",
    "read_matrix_csv_header",
    "MatrixCsvChunk",
    "MatrixCsvWriter",
    "datasets",
]
