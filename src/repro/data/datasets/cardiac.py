"""The cardiac-arrhythmia sample used by the paper's worked example.

The paper draws a 5-record, 3-attribute excerpt from the UCI Cardiac
Arrhythmia database (Table 1) and walks it through every step of the RBT
method: z-score normalization (Table 2), rotation with the angles
θ₁ = 312.47° and θ₂ = 147.29° (Table 3), the resulting dissimilarity matrix
(Tables 4/6), and the dissimilarity matrix the attacker obtains after
re-normalizing the released data (Table 5).

Every constant printed in the paper is embedded here verbatim so the
benchmark harness can compare *paper value vs. measured value* row by row.
The full 452-record UCI database is not redistributable offline;
:func:`make_synthetic_arrhythmia` generates an arrhythmia-like dataset with
the same attribute names and realistic ranges for the scale benchmarks
(substitution documented in DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_integer_in_range, ensure_rng
from ..matrix import DataMatrix
from ..schema import ColumnRole, Schema
from ..table import Table

__all__ = [
    "CARDIAC_SAMPLE_IDS",
    "CARDIAC_SAMPLE_COLUMNS",
    "CARDIAC_SAMPLE_VALUES",
    "CARDIAC_NORMALIZED_VALUES",
    "PAPER_PAIR1",
    "PAPER_PAIR2",
    "PAPER_PST1",
    "PAPER_PST2",
    "PAPER_THETA1_DEGREES",
    "PAPER_THETA2_DEGREES",
    "PAPER_SECURITY_RANGE1_DEGREES",
    "MEASURED_SECURITY_RANGE1_DEGREES",
    "PAPER_SECURITY_RANGE2_DEGREES",
    "PAPER_VARIANCES_PAIR1",
    "PAPER_VARIANCES_PAIR2",
    "PAPER_TRANSFORMED_VALUES",
    "PAPER_TRANSFORMED_COLUMN_VARIANCES",
    "PAPER_DISSIMILARITY_TRANSFORMED",
    "PAPER_DISSIMILARITY_RENORMALIZED",
    "load_cardiac_sample",
    "load_cardiac_sample_table",
    "load_cardiac_normalized",
    "make_synthetic_arrhythmia",
]

#: Object identifiers of Table 1.
CARDIAC_SAMPLE_IDS: tuple[int, ...] = (1237, 3420, 2543, 4461, 2863)

#: Attribute names of Table 1 (in paper order).
CARDIAC_SAMPLE_COLUMNS: tuple[str, ...] = ("age", "weight", "heart_rate")

#: Raw attribute values of Table 1 (age, weight, heart rate).
CARDIAC_SAMPLE_VALUES: tuple[tuple[float, float, float], ...] = (
    (75.0, 80.0, 63.0),
    (56.0, 64.0, 53.0),
    (40.0, 52.0, 70.0),
    (28.0, 58.0, 76.0),
    (44.0, 90.0, 68.0),
)

#: Z-score-normalized values as printed in Table 2 (sample standard deviation).
CARDIAC_NORMALIZED_VALUES: tuple[tuple[float, float, float], ...] = (
    (1.4809, 0.7095, -0.3476),
    (0.4151, -0.3041, -1.5061),
    (-0.4824, -1.0642, 0.4634),
    (-1.1556, -0.6841, 1.1586),
    (-0.2580, 1.3430, 0.2317),
)

#: First attribute pair rotated in the worked example: (age, heart_rate).
PAPER_PAIR1: tuple[str, str] = ("age", "heart_rate")

#: Second attribute pair rotated in the worked example: (weight, age'), where
#: age' is the already-distorted age column.
PAPER_PAIR2: tuple[str, str] = ("weight", "age")

#: Pairwise-security threshold for the first pair, PST1 = (0.30, 0.55).
PAPER_PST1: tuple[float, float] = (0.30, 0.55)

#: Pairwise-security threshold for the second pair, PST2 = (2.30, 2.30).
PAPER_PST2: tuple[float, float] = (2.30, 2.30)

#: Rotation angle chosen for the first pair in the worked example (degrees).
PAPER_THETA1_DEGREES: float = 312.47

#: Rotation angle chosen for the second pair in the worked example (degrees).
PAPER_THETA2_DEGREES: float = 147.29

#: Security range reported for the first pair, in degrees (Figure 2).  The
#: upper bound reproduces exactly; the printed lower bound does not (the
#: solver obtains 82.69° — see EXPERIMENTS.md for the discrepancy analysis).
PAPER_SECURITY_RANGE1_DEGREES: tuple[float, float] = (48.03, 314.97)

#: Security range for the first pair as measured by this reproduction.
MEASURED_SECURITY_RANGE1_DEGREES: tuple[float, float] = (82.69, 314.97)

#: Security range reported for the second pair, in degrees (Figure 3).
PAPER_SECURITY_RANGE2_DEGREES: tuple[float, float] = (118.74, 258.70)

#: Variances reported for the first pair at θ₁ = 312.47°:
#: Var(age − age') = 0.318 and Var(heart_rate − heart_rate') = 0.9805.
PAPER_VARIANCES_PAIR1: tuple[float, float] = (0.318, 0.9805)

#: Variances reported for the second pair at θ₂ = 147.29°:
#: Var(weight − weight') = 2.9714 and Var(age − age') = 6.9274.
PAPER_VARIANCES_PAIR2: tuple[float, float] = (2.9714, 6.9274)

#: The transformed database printed in Table 3 (age', weight', heart_rate').
PAPER_TRANSFORMED_VALUES: tuple[tuple[float, float, float], ...] = (
    (-1.4405, 0.0819, 0.8577),
    (-1.0063, 1.0077, -0.7108),
    (1.1368, 0.5347, -0.0429),
    (1.7453, -0.3078, -0.0701),
    (-0.4353, -1.3165, -0.0339),
)

#: Column variances of the released data reported in Section 5.2:
#: [1.9039, 0.7840, 0.3122] for (age', weight', heart_rate').
PAPER_TRANSFORMED_COLUMN_VARIANCES: tuple[float, float, float] = (1.9039, 0.7840, 0.3122)

#: Lower triangle of the dissimilarity matrix of Table 4 / Table 6 (Euclidean
#: distances between the transformed objects; identical to the dissimilarity
#: matrix of the normalized data by Theorem 2).
PAPER_DISSIMILARITY_TRANSFORMED: tuple[tuple[float, ...], ...] = (
    (),
    (1.8723,),
    (2.7674, 2.2940),
    (3.3409, 3.1164, 1.0396),
    (1.9393, 2.4872, 2.4287, 2.4029),
)

#: Lower triangle of the dissimilarity matrix of Table 5 — the distances the
#: attacker obtains after z-score re-normalizing the released data.  They no
#: longer match Table 4, which is what frustrates the inversion attempt.
PAPER_DISSIMILARITY_RENORMALIZED: tuple[tuple[float, ...], ...] = (
    (),
    (3.0121,),
    (2.5196, 2.0314),
    (2.8778, 2.7384, 1.0499),
    (2.3604, 2.9205, 2.3811, 1.9492),
)


def load_cardiac_sample() -> DataMatrix:
    """Return the raw 5-record sample of Table 1 as a :class:`DataMatrix`."""
    return DataMatrix(
        np.asarray(CARDIAC_SAMPLE_VALUES, dtype=float),
        columns=list(CARDIAC_SAMPLE_COLUMNS),
        ids=CARDIAC_SAMPLE_IDS,
    )


def load_cardiac_sample_table() -> Table:
    """Return the Table 1 sample as a relational :class:`Table` with an ID column."""
    schema = Schema.from_names(
        ["id", *CARDIAC_SAMPLE_COLUMNS],
        roles={"id": ColumnRole.IDENTIFIER},
        default_role=ColumnRole.CONFIDENTIAL_NUMERIC,
    )
    values = np.asarray(CARDIAC_SAMPLE_VALUES, dtype=float)
    columns = {
        "id": list(CARDIAC_SAMPLE_IDS),
        "age": values[:, 0],
        "weight": values[:, 1],
        "heart_rate": values[:, 2],
    }
    return Table(schema, columns)


def load_cardiac_normalized() -> DataMatrix:
    """Return the z-score-normalized sample exactly as printed in Table 2.

    The values are the paper's printed 4-decimal figures.  Recomputing the
    normalization from Table 1 with sample statistics (``ddof=1``) reproduces
    them to the printed precision (verified in the test suite).
    """
    return DataMatrix(
        np.asarray(CARDIAC_NORMALIZED_VALUES, dtype=float),
        columns=list(CARDIAC_SAMPLE_COLUMNS),
        ids=CARDIAC_SAMPLE_IDS,
    )


def make_synthetic_arrhythmia(
    n_patients: int = 452,
    *,
    n_extra_attributes: int = 0,
    random_state=None,
) -> DataMatrix:
    """Generate an arrhythmia-like dataset with realistic attribute ranges.

    The UCI Cardiac Arrhythmia database is not redistributable offline, so
    scale benchmarks use this synthetic stand-in.  Patients are drawn from
    three latent cohorts (healthy, tachycardic, bradycardic) whose ``age``,
    ``weight`` and ``heart_rate`` marginals bracket the values of Table 1;
    ``n_extra_attributes`` appends additional correlated vitals so the
    attribute-count axis of the Theorem 1 scaling bench can be exercised.

    Parameters
    ----------
    n_patients:
        Number of synthetic records (default matches the UCI row count).
    n_extra_attributes:
        Number of extra numeric attributes beyond the three of Table 1.
    random_state:
        Seed / generator for reproducibility.

    Returns
    -------
    DataMatrix
        Matrix with columns ``age, weight, heart_rate[, v0, v1, ...]`` and
        integer patient identifiers.
    """
    n_patients = check_integer_in_range(n_patients, name="n_patients", minimum=2)
    n_extra_attributes = check_integer_in_range(
        n_extra_attributes, name="n_extra_attributes", minimum=0
    )
    rng = ensure_rng(random_state)

    cohort_specs = [
        # (weight of cohort, mean [age, weight, heart_rate], std [age, weight, heart_rate])
        (0.5, np.array([45.0, 70.0, 72.0]), np.array([12.0, 12.0, 8.0])),
        (0.3, np.array([60.0, 82.0, 95.0]), np.array([10.0, 14.0, 10.0])),
        (0.2, np.array([35.0, 62.0, 52.0]), np.array([9.0, 10.0, 6.0])),
    ]
    weights = np.array([spec[0] for spec in cohort_specs])
    cohorts = rng.choice(len(cohort_specs), size=n_patients, p=weights / weights.sum())

    base = np.empty((n_patients, 3), dtype=float)
    for cohort_index, (_, mean, std) in enumerate(cohort_specs):
        mask = cohorts == cohort_index
        count = int(mask.sum())
        if count:
            base[mask] = rng.normal(loc=mean, scale=std, size=(count, 3))
    # Clip to physiologically plausible ranges.
    base[:, 0] = np.clip(base[:, 0], 1.0, 100.0)
    base[:, 1] = np.clip(base[:, 1], 30.0, 160.0)
    base[:, 2] = np.clip(base[:, 2], 35.0, 180.0)

    columns = ["age", "weight", "heart_rate"]
    if n_extra_attributes:
        extra = np.empty((n_patients, n_extra_attributes), dtype=float)
        for attribute_index in range(n_extra_attributes):
            # Each extra vital is a noisy linear mix of the base vitals so the
            # synthetic data keeps correlated structure rather than pure noise.
            mix = rng.normal(size=3)
            noise = rng.normal(scale=5.0, size=n_patients)
            extra[:, attribute_index] = base @ mix + noise
            columns.append(f"v{attribute_index}")
        values = np.hstack([base, extra])
    else:
        values = base

    ids = tuple(1000 + index for index in range(n_patients))
    return DataMatrix(values, columns=columns, ids=ids)
