"""Datasets used by the paper's worked example and by the benchmarks.

* :mod:`repro.data.datasets.cardiac` — the exact 5-record cardiac-arrhythmia
  sample of Table 1 plus a synthetic arrhythmia-like generator for scale runs.
* :mod:`repro.data.datasets.synthetic` — synthetic cluster generators
  (isotropic Gaussian blobs, anisotropic mixtures, concentric rings,
  uniform noise) used to evaluate clustering quality.
* :mod:`repro.data.datasets.partitioned` — helpers to split a dataset
  vertically or horizontally across simulated parties, matching the
  distributed-PPC comparators.
"""

from .cardiac import (
    CARDIAC_NORMALIZED_VALUES,
    CARDIAC_SAMPLE_COLUMNS,
    CARDIAC_SAMPLE_IDS,
    CARDIAC_SAMPLE_VALUES,
    MEASURED_SECURITY_RANGE1_DEGREES,
    PAPER_DISSIMILARITY_RENORMALIZED,
    PAPER_DISSIMILARITY_TRANSFORMED,
    PAPER_PAIR1,
    PAPER_PAIR2,
    PAPER_PST1,
    PAPER_PST2,
    PAPER_SECURITY_RANGE1_DEGREES,
    PAPER_SECURITY_RANGE2_DEGREES,
    PAPER_THETA1_DEGREES,
    PAPER_THETA2_DEGREES,
    PAPER_TRANSFORMED_COLUMN_VARIANCES,
    PAPER_TRANSFORMED_VALUES,
    PAPER_VARIANCES_PAIR1,
    PAPER_VARIANCES_PAIR2,
    load_cardiac_normalized,
    load_cardiac_sample,
    load_cardiac_sample_table,
    make_synthetic_arrhythmia,
)
from .synthetic import (
    make_anisotropic_blobs,
    make_blobs,
    make_customer_segments,
    make_patient_cohorts,
    make_rings,
    make_uniform_noise,
)
from .partitioned import split_horizontally, split_vertically

__all__ = [
    "CARDIAC_SAMPLE_IDS",
    "CARDIAC_SAMPLE_COLUMNS",
    "CARDIAC_SAMPLE_VALUES",
    "CARDIAC_NORMALIZED_VALUES",
    "PAPER_PAIR1",
    "PAPER_PAIR2",
    "PAPER_PST1",
    "PAPER_PST2",
    "PAPER_THETA1_DEGREES",
    "PAPER_THETA2_DEGREES",
    "PAPER_SECURITY_RANGE1_DEGREES",
    "MEASURED_SECURITY_RANGE1_DEGREES",
    "PAPER_SECURITY_RANGE2_DEGREES",
    "PAPER_VARIANCES_PAIR1",
    "PAPER_VARIANCES_PAIR2",
    "PAPER_TRANSFORMED_VALUES",
    "PAPER_TRANSFORMED_COLUMN_VARIANCES",
    "PAPER_DISSIMILARITY_TRANSFORMED",
    "PAPER_DISSIMILARITY_RENORMALIZED",
    "load_cardiac_sample",
    "load_cardiac_sample_table",
    "load_cardiac_normalized",
    "make_synthetic_arrhythmia",
    "make_blobs",
    "make_anisotropic_blobs",
    "make_rings",
    "make_uniform_noise",
    "make_customer_segments",
    "make_patient_cohorts",
    "split_vertically",
    "split_horizontally",
]
