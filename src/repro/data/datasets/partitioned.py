"""Helpers that split a dataset across simulated parties.

The related work the paper positions against operates on *partitioned* data:
vertically partitioned (different attributes of the same objects at different
sites, Vaidya & Clifton) and horizontally partitioned (different objects with
the same schema at different sites, Meregu & Ghosh).  These helpers produce
such partitions from a single :class:`~repro.data.DataMatrix` so the
distributed comparators in :mod:`repro.distributed` can be driven from the
same synthetic workloads as the RBT experiments.
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_integer_in_range, ensure_rng
from ...exceptions import DatasetError
from ..matrix import DataMatrix

__all__ = ["split_vertically", "split_horizontally"]


def split_vertically(
    matrix: DataMatrix,
    n_parties: int,
    *,
    random_state=None,
) -> list[DataMatrix]:
    """Split the attributes of ``matrix`` across ``n_parties`` sites.

    Every party receives the same objects (in the same order, so they can be
    joined on position or on the shared ids) but a disjoint, non-empty subset
    of the attributes.  The attribute-to-party assignment is round-robin over
    a random permutation when ``random_state`` is given, or over the original
    column order otherwise.
    """
    n_parties = check_integer_in_range(n_parties, name="n_parties", minimum=1)
    if n_parties > matrix.n_attributes:
        raise DatasetError(
            f"cannot split {matrix.n_attributes} attribute(s) across {n_parties} parties; "
            "every party needs at least one attribute"
        )
    columns = list(matrix.columns)
    if random_state is not None:
        rng = ensure_rng(random_state)
        columns = [columns[index] for index in rng.permutation(len(columns))]
    partitions: list[list[str]] = [[] for _ in range(n_parties)]
    for position, column in enumerate(columns):
        partitions[position % n_parties].append(column)
    return [matrix.select(party_columns) for party_columns in partitions]


def split_horizontally(
    matrix: DataMatrix,
    n_parties: int,
    *,
    labels: np.ndarray | None = None,
    random_state=None,
) -> list[DataMatrix] | tuple[list[DataMatrix], list[np.ndarray]]:
    """Split the objects of ``matrix`` across ``n_parties`` sites.

    Every party receives the full schema but a disjoint subset of objects.
    When ground-truth ``labels`` are supplied they are split consistently and
    returned alongside the per-party matrices.
    """
    n_parties = check_integer_in_range(n_parties, name="n_parties", minimum=1)
    if n_parties > matrix.n_objects:
        raise DatasetError(
            f"cannot split {matrix.n_objects} object(s) across {n_parties} parties; "
            "every party needs at least one object"
        )
    rng = ensure_rng(random_state)
    order = rng.permutation(matrix.n_objects)
    chunks = np.array_split(order, n_parties)
    parts = [matrix.rows(chunk.tolist()) for chunk in chunks]
    if labels is None:
        return parts
    labels = np.asarray(labels)
    if labels.shape[0] != matrix.n_objects:
        raise DatasetError(
            f"labels must have one entry per object ({matrix.n_objects}), got {labels.shape[0]}"
        )
    label_parts = [labels[chunk] for chunk in chunks]
    return parts, label_parts
