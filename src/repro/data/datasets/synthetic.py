"""Synthetic dataset generators for clustering-quality experiments.

The paper's claims about accuracy (Corollary 1) and about misclassification
under naive distortions are demonstrated here on synthetic data with known
ground-truth cluster labels, since the original UCI data is not available
offline.  Generators cover the standard clustering shapes:

* isotropic Gaussian blobs (the canonical k-means workload),
* anisotropic / correlated mixtures,
* concentric rings (a density-based workload DBSCAN separates but k-means
  does not — used to show algorithm independence is about *distance
  preservation*, not about a particular algorithm succeeding),
* uniform background noise,
* and two "story" generators matching the paper's motivating scenarios
  (patient cohorts, customer segments).
"""

from __future__ import annotations

import numpy as np

from ..._validation import check_integer_in_range, check_positive, ensure_rng
from ...exceptions import DatasetError
from ..matrix import DataMatrix

__all__ = [
    "make_blobs",
    "make_anisotropic_blobs",
    "make_rings",
    "make_uniform_noise",
    "make_customer_segments",
    "make_patient_cohorts",
]


def make_blobs(
    n_objects: int = 300,
    n_attributes: int = 2,
    n_clusters: int = 3,
    *,
    cluster_std: float = 1.0,
    center_box: tuple[float, float] = (-10.0, 10.0),
    random_state=None,
) -> tuple[DataMatrix, np.ndarray]:
    """Generate isotropic Gaussian blobs with ground-truth labels.

    Returns
    -------
    (DataMatrix, ndarray)
        The data matrix (columns ``x0 .. x{n-1}``) and an integer label per
        object identifying the generating blob.
    """
    n_objects = check_integer_in_range(n_objects, name="n_objects", minimum=n_clusters)
    n_attributes = check_integer_in_range(n_attributes, name="n_attributes", minimum=1)
    n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
    cluster_std = check_positive(cluster_std, name="cluster_std")
    low, high = center_box
    if not low < high:
        raise DatasetError(f"center_box must be an increasing interval, got {center_box}")
    rng = ensure_rng(random_state)

    centers = rng.uniform(low, high, size=(n_clusters, n_attributes))
    labels = _balanced_labels(n_objects, n_clusters, rng)
    values = centers[labels] + rng.normal(scale=cluster_std, size=(n_objects, n_attributes))
    return DataMatrix(values), labels


def make_anisotropic_blobs(
    n_objects: int = 300,
    n_clusters: int = 3,
    *,
    n_attributes: int = 2,
    anisotropy: float = 3.0,
    random_state=None,
) -> tuple[DataMatrix, np.ndarray]:
    """Generate Gaussian clusters stretched by a random linear map.

    Anisotropic clusters exercise the claim that RBT preserves clustering
    structure even when that structure is not axis-aligned.
    """
    anisotropy = check_positive(anisotropy, name="anisotropy")
    rng = ensure_rng(random_state)
    matrix, labels = make_blobs(
        n_objects,
        n_attributes,
        n_clusters,
        cluster_std=1.0,
        random_state=rng,
    )
    transform = rng.normal(size=(n_attributes, n_attributes))
    # Scale one random direction to create elongated clusters.
    scales = np.ones(n_attributes)
    scales[rng.integers(n_attributes)] = anisotropy
    transform = transform * scales
    stretched = matrix.values @ transform
    return DataMatrix(stretched, columns=matrix.columns), labels


def make_rings(
    n_objects: int = 400,
    *,
    n_rings: int = 2,
    noise: float = 0.05,
    radius_step: float = 1.0,
    random_state=None,
) -> tuple[DataMatrix, np.ndarray]:
    """Generate 2-D concentric rings (a density-based clustering workload)."""
    n_objects = check_integer_in_range(n_objects, name="n_objects", minimum=n_rings)
    n_rings = check_integer_in_range(n_rings, name="n_rings", minimum=1)
    noise = check_positive(noise, name="noise")
    radius_step = check_positive(radius_step, name="radius_step")
    rng = ensure_rng(random_state)

    labels = _balanced_labels(n_objects, n_rings, rng)
    radii = radius_step * (labels + 1).astype(float)
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n_objects)
    values = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    values += rng.normal(scale=noise, size=values.shape)
    return DataMatrix(values, columns=["x0", "x1"]), labels


def make_uniform_noise(
    n_objects: int = 100,
    n_attributes: int = 2,
    *,
    low: float = 0.0,
    high: float = 1.0,
    random_state=None,
) -> DataMatrix:
    """Generate structure-free uniform noise (no meaningful clusters)."""
    n_objects = check_integer_in_range(n_objects, name="n_objects", minimum=1)
    n_attributes = check_integer_in_range(n_attributes, name="n_attributes", minimum=1)
    if not low < high:
        raise DatasetError(f"low must be smaller than high, got low={low}, high={high}")
    rng = ensure_rng(random_state)
    values = rng.uniform(low, high, size=(n_objects, n_attributes))
    return DataMatrix(values)


def make_customer_segments(
    n_customers: int = 500,
    *,
    random_state=None,
) -> tuple[DataMatrix, np.ndarray]:
    """Generate the paper's second motivating scenario: retail customer segments.

    Four latent segments over five confidential attributes
    (``annual_spend``, ``visits_per_month``, ``avg_basket``, ``tenure_years``,
    ``returns_rate``), suitable for the marketing example and for the
    vertically-partitioned comparator.
    """
    n_customers = check_integer_in_range(n_customers, name="n_customers", minimum=4)
    rng = ensure_rng(random_state)
    segments = [
        # mean: spend, visits, basket, tenure, returns
        (np.array([12000.0, 12.0, 85.0, 6.0, 0.02]), np.array([1500.0, 2.0, 10.0, 1.5, 0.01])),
        (np.array([4000.0, 4.0, 60.0, 2.0, 0.05]), np.array([800.0, 1.5, 8.0, 1.0, 0.02])),
        (np.array([800.0, 1.0, 35.0, 0.5, 0.10]), np.array([200.0, 0.5, 6.0, 0.3, 0.03])),
        (np.array([7000.0, 20.0, 25.0, 4.0, 0.08]), np.array([1000.0, 3.0, 5.0, 1.0, 0.02])),
    ]
    labels = _balanced_labels(n_customers, len(segments), rng)
    values = np.empty((n_customers, 5), dtype=float)
    for segment_index, (mean, std) in enumerate(segments):
        mask = labels == segment_index
        count = int(mask.sum())
        if count:
            values[mask] = rng.normal(loc=mean, scale=std, size=(count, 5))
    values = np.abs(values)
    columns = ["annual_spend", "visits_per_month", "avg_basket", "tenure_years", "returns_rate"]
    ids = tuple(f"C{index:05d}" for index in range(n_customers))
    return DataMatrix(values, columns=columns, ids=ids), labels


def make_patient_cohorts(
    n_patients: int = 400,
    *,
    n_cohorts: int = 3,
    random_state=None,
) -> tuple[DataMatrix, np.ndarray]:
    """Generate the paper's first motivating scenario: patient disease cohorts.

    Six confidential vitals (``age``, ``weight``, ``heart_rate``,
    ``systolic_bp``, ``cholesterol``, ``glucose``) drawn from ``n_cohorts``
    latent disease groups.
    """
    n_patients = check_integer_in_range(n_patients, name="n_patients", minimum=n_cohorts)
    n_cohorts = check_integer_in_range(n_cohorts, name="n_cohorts", minimum=1, maximum=6)
    rng = ensure_rng(random_state)
    cohort_means = np.array(
        [
            [42.0, 70.0, 72.0, 118.0, 180.0, 90.0],
            [63.0, 85.0, 95.0, 145.0, 240.0, 160.0],
            [35.0, 60.0, 52.0, 105.0, 150.0, 80.0],
            [70.0, 78.0, 80.0, 160.0, 260.0, 200.0],
            [50.0, 95.0, 88.0, 135.0, 220.0, 130.0],
            [28.0, 55.0, 65.0, 110.0, 140.0, 75.0],
        ]
    )[:n_cohorts]
    cohort_stds = np.array(
        [
            [8.0, 9.0, 7.0, 8.0, 20.0, 10.0],
            [7.0, 10.0, 9.0, 10.0, 25.0, 20.0],
            [6.0, 8.0, 6.0, 7.0, 18.0, 8.0],
            [6.0, 9.0, 8.0, 9.0, 22.0, 25.0],
            [9.0, 11.0, 8.0, 9.0, 24.0, 15.0],
            [5.0, 7.0, 6.0, 6.0, 15.0, 7.0],
        ]
    )[:n_cohorts]
    labels = _balanced_labels(n_patients, n_cohorts, rng)
    values = np.empty((n_patients, 6), dtype=float)
    for cohort_index in range(n_cohorts):
        mask = labels == cohort_index
        count = int(mask.sum())
        if count:
            values[mask] = rng.normal(
                loc=cohort_means[cohort_index],
                scale=cohort_stds[cohort_index],
                size=(count, 6),
            )
    columns = ["age", "weight", "heart_rate", "systolic_bp", "cholesterol", "glucose"]
    ids = tuple(f"P{index:05d}" for index in range(n_patients))
    return DataMatrix(np.abs(values), columns=columns, ids=ids), labels


def _balanced_labels(n_objects: int, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """Assign objects to clusters as evenly as possible, then shuffle."""
    labels = np.arange(n_objects) % n_clusters
    rng.shuffle(labels)
    return labels
