"""The pairwise-security threshold PST(ρ1, ρ2) of Definition 2.

The security of RBT is quantified per attribute pair: after rotating the
pair ``(A_i, A_j)`` into ``(A_i', A_j')`` the constraints

.. math::

    Var(A_i - A_i') \\ge \\rho_1  \\quad\\text{and}\\quad  Var(A_j - A_j') \\ge \\rho_2

must hold, with ``ρ1, ρ2 > 0``.  :class:`PairwiseSecurityThreshold` is the
value object carrying ``(ρ1, ρ2)`` plus the broadcasting helpers the RBT
algorithm needs (one threshold per pair, or a single threshold reused for
every pair).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..exceptions import ThresholdError

__all__ = ["PairwiseSecurityThreshold"]


@dataclass(frozen=True)
class PairwiseSecurityThreshold:
    """A pairwise-security threshold ``PST(ρ1, ρ2)`` with ``ρ1, ρ2 > 0``.

    Examples
    --------
    >>> PairwiseSecurityThreshold(0.30, 0.55)
    PairwiseSecurityThreshold(rho1=0.3, rho2=0.55)
    >>> PairwiseSecurityThreshold.coerce((2.30, 2.30))
    PairwiseSecurityThreshold(rho1=2.3, rho2=2.3)
    """

    rho1: float
    rho2: float

    def __post_init__(self) -> None:
        rho1, rho2 = float(self.rho1), float(self.rho2)
        if not (rho1 > 0 and rho2 > 0):
            raise ThresholdError(
                f"pairwise-security thresholds must be strictly positive, got ({rho1}, {rho2})"
            )
        object.__setattr__(self, "rho1", rho1)
        object.__setattr__(self, "rho2", rho2)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(ρ1, ρ2)``."""
        return (self.rho1, self.rho2)

    @classmethod
    def coerce(cls, value) -> PairwiseSecurityThreshold:
        """Accept an existing threshold, a (ρ1, ρ2) pair, or a single scalar ρ."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (int, float)):
            return cls(float(value), float(value))
        try:
            rho1, rho2 = value
        except (TypeError, ValueError) as exc:
            raise ThresholdError(
                "a pairwise-security threshold must be a scalar, a (rho1, rho2) pair "
                f"or a PairwiseSecurityThreshold, got {value!r}"
            ) from exc
        return cls(float(rho1), float(rho2))

    @classmethod
    def broadcast(
        cls,
        thresholds,
        n_pairs: int,
    ) -> list["PairwiseSecurityThreshold"]:
        """Expand ``thresholds`` to exactly ``n_pairs`` threshold objects.

        ``thresholds`` may be a single threshold (scalar, pair or instance) —
        reused for every pair — or a sequence with one entry per pair.
        """
        if n_pairs <= 0:
            raise ThresholdError(f"n_pairs must be positive, got {n_pairs}")
        if isinstance(thresholds, (cls, int, float)):
            single = cls.coerce(thresholds)
            return [single] * n_pairs
        thresholds = list(thresholds) if isinstance(thresholds, Iterable) else [thresholds]
        if len(thresholds) == 2 and all(isinstance(value, (int, float)) for value in thresholds):
            # A bare (rho1, rho2) pair counts as a single threshold.
            single = cls.coerce(tuple(thresholds))
            return [single] * n_pairs
        coerced = [cls.coerce(value) for value in thresholds]
        if len(coerced) == 1:
            return coerced * n_pairs
        if len(coerced) != n_pairs:
            raise ThresholdError(
                f"expected 1 or {n_pairs} pairwise-security threshold(s), got {len(coerced)}"
            )
        return coerced
