"""Variance-vs-θ curves and the *security range* solver (Figures 2 and 3).

For a pair of attribute columns ``A_i``, ``A_j`` rotated by θ the distorted
columns are ``A_i' = cosθ·A_i + sinθ·A_j`` and ``A_j' = −sinθ·A_i + cosθ·A_j``
(Equation 1), so the differences are

.. math::

    A_i - A_i' &= (1-\\cos\\theta)\\,A_i - \\sin\\theta\\,A_j \\\\
    A_j - A_j' &= \\sin\\theta\\,A_i + (1-\\cos\\theta)\\,A_j

and, writing ``σ_i² = Var(A_i)``, ``σ_j² = Var(A_j)`` and
``σ_ij = Cov(A_i, A_j)`` (sample estimators by default; see ``ddof``),

.. math::

    Var(A_i - A_i') &= (1-\\cos\\theta)^2 σ_i^2 + \\sin^2\\theta\\, σ_j^2
                      - 2(1-\\cos\\theta)\\sin\\theta\\, σ_{ij} \\\\
    Var(A_j - A_j') &= \\sin^2\\theta\\, σ_i^2 + (1-\\cos\\theta)^2 σ_j^2
                      + 2(1-\\cos\\theta)\\sin\\theta\\, σ_{ij}

These closed forms are what :func:`variance_difference_curves` evaluates.
The **security range** of a pair under a threshold PST(ρ1, ρ2) is the set of
angles for which both variances clear their thresholds; it is computed on a
dense θ grid and the interval end points are then sharpened by bisection.
For the paper's worked example this reproduces the second pair's range
(118.74°–258.70°) exactly and the first pair's *upper* bound (314.97°)
exactly; the first pair's printed lower bound (48.03°) is not reproducible
under any estimator convention we tried — the solver obtains 82.69°, the
angle at which Var(heart_rate − heart_rate') reaches ρ2 = 0.55 (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_vector, check_integer_in_range, ensure_rng
from ..exceptions import SecurityRangeError, ValidationError
from .thresholds import PairwiseSecurityThreshold

__all__ = [
    "VarianceCurves",
    "SecurityRange",
    "variance_difference_curves",
    "compute_variance_curves",
    "solve_security_range",
]


def variance_difference_curves(
    attribute_i,
    attribute_j,
    theta_degrees,
    *,
    ddof: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``Var(A_i − A_i')`` and ``Var(A_j − A_j')`` at the given angles.

    Parameters
    ----------
    attribute_i, attribute_j:
        The attribute columns (typically already normalized).
    theta_degrees:
        Scalar or array of rotation angles in degrees.
    ddof:
        Degrees of freedom of the variance estimator (1 = sample, the paper's
        effective choice; 0 = the population form of Eq. 8).

    Returns
    -------
    (ndarray, ndarray)
        The two variance curves, with the same shape as ``theta_degrees``.
    """
    attribute_i = as_float_vector(attribute_i, name="attribute_i")
    attribute_j = as_float_vector(attribute_j, name="attribute_j")
    if attribute_i.shape != attribute_j.shape:
        raise ValidationError(
            "attribute_i and attribute_j must have the same length, "
            f"got {attribute_i.size} and {attribute_j.size}"
        )
    theta = np.deg2rad(np.asarray(theta_degrees, dtype=float))
    var_i = float(np.var(attribute_i, ddof=ddof))
    var_j = float(np.var(attribute_j, ddof=ddof))
    n = attribute_i.size
    denominator = n - ddof
    if denominator <= 0:
        raise ValidationError("not enough observations for the requested ddof")
    covariance = float(
        np.sum((attribute_i - attribute_i.mean()) * (attribute_j - attribute_j.mean())) / denominator
    )

    one_minus_cos = 1.0 - np.cos(theta)
    sin_theta = np.sin(theta)
    curve_i = (
        one_minus_cos**2 * var_i
        + sin_theta**2 * var_j
        - 2.0 * one_minus_cos * sin_theta * covariance
    )
    curve_j = (
        sin_theta**2 * var_i
        + one_minus_cos**2 * var_j
        + 2.0 * one_minus_cos * sin_theta * covariance
    )
    return curve_i, curve_j


@dataclass(frozen=True)
class VarianceCurves:
    """The sampled variance-vs-θ curves of a pair (the data behind Figures 2/3)."""

    #: Sampled angles, in degrees.
    theta_degrees: np.ndarray
    #: ``Var(A_i − A_i')`` at each sampled angle.
    variance_i: np.ndarray
    #: ``Var(A_j − A_j')`` at each sampled angle.
    variance_j: np.ndarray

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Return ``(θ, Var_i, Var_j)`` rows — the series a plot of Figure 2/3 would show."""
        return [
            (float(theta), float(var_i), float(var_j))
            for theta, var_i, var_j in zip(self.theta_degrees, self.variance_i, self.variance_j)
        ]


def compute_variance_curves(
    attribute_i,
    attribute_j,
    *,
    resolution: int = 3600,
    ddof: int = 1,
) -> VarianceCurves:
    """Sample both variance curves on a uniform θ grid over [0°, 360°)."""
    resolution = check_integer_in_range(resolution, name="resolution", minimum=8)
    theta = np.linspace(0.0, 360.0, resolution, endpoint=False)
    curve_i, curve_j = variance_difference_curves(attribute_i, attribute_j, theta, ddof=ddof)
    return VarianceCurves(theta_degrees=theta, variance_i=curve_i, variance_j=curve_j)


@dataclass(frozen=True)
class SecurityRange:
    """The set of angles satisfying a pairwise-security threshold.

    The range is stored as a tuple of disjoint ``(start, end)`` intervals in
    degrees, each inclusive.  For the paper's examples the range is a single
    interval, but with strongly correlated attributes it can split into
    several.
    """

    intervals: tuple[tuple[float, float], ...]
    threshold: PairwiseSecurityThreshold

    def __post_init__(self) -> None:
        if not self.intervals:
            raise SecurityRangeError(
                "the security range is empty: no rotation angle satisfies "
                f"PST({self.threshold.rho1}, {self.threshold.rho2})"
            )
        for start, end in self.intervals:
            if not (0.0 <= start <= end <= 360.0):
                raise ValidationError(f"invalid security-range interval ({start}, {end})")

    @property
    def lower_bound(self) -> float:
        """Smallest admissible angle (degrees)."""
        return self.intervals[0][0]

    @property
    def upper_bound(self) -> float:
        """Largest admissible angle (degrees)."""
        return self.intervals[-1][1]

    @property
    def total_measure(self) -> float:
        """Total length of the security range in degrees (how much freedom θ has)."""
        return float(sum(end - start for start, end in self.intervals))

    def contains(self, theta_degrees: float, *, tolerance: float = 1e-9) -> bool:
        """Whether ``theta_degrees`` (taken modulo 360) lies inside the range."""
        theta = float(theta_degrees) % 360.0
        return any(start - tolerance <= theta <= end + tolerance for start, end in self.intervals)

    def sample(self, random_state=None) -> float:
        """Draw an angle uniformly at random from the security range (Step 2c)."""
        rng = ensure_rng(random_state)
        lengths = np.array([end - start for start, end in self.intervals], dtype=float)
        if np.all(lengths == 0.0):
            # Degenerate range: every interval is a single angle.
            index = int(rng.integers(len(self.intervals)))
            return float(self.intervals[index][0])
        probabilities = lengths / lengths.sum()
        index = int(rng.choice(len(self.intervals), p=probabilities))
        start, end = self.intervals[index]
        return float(rng.uniform(start, end))


def solve_security_range(
    attribute_i,
    attribute_j,
    threshold,
    *,
    resolution: int = 7200,
    refine_iterations: int = 40,
    ddof: int = 1,
) -> SecurityRange:
    """Compute the security range of a pair under ``threshold`` (Step 2b/2c).

    The admissible set ``{θ : Var(A_i−A_i') ≥ ρ1 and Var(A_j−A_j') ≥ ρ2}`` is
    located on a dense grid of ``resolution`` angles and every interval end
    point is then refined by bisection (``refine_iterations`` halvings) so the
    reported bounds are accurate to far below a hundredth of a degree.

    Raises
    ------
    SecurityRangeError
        If no angle satisfies both constraints (the thresholds are too large
        for this pair).
    """
    threshold = PairwiseSecurityThreshold.coerce(threshold)
    resolution = check_integer_in_range(resolution, name="resolution", minimum=16)
    refine_iterations = check_integer_in_range(refine_iterations, name="refine_iterations", minimum=0)
    attribute_i = as_float_vector(attribute_i, name="attribute_i")
    attribute_j = as_float_vector(attribute_j, name="attribute_j")

    def satisfied(theta_degrees: np.ndarray) -> np.ndarray:
        curve_i, curve_j = variance_difference_curves(
            attribute_i, attribute_j, theta_degrees, ddof=ddof
        )
        return (curve_i >= threshold.rho1) & (curve_j >= threshold.rho2)

    grid = np.linspace(0.0, 360.0, resolution, endpoint=False)
    mask = satisfied(grid)
    if not mask.any():
        raise SecurityRangeError(
            "the security range is empty: no rotation angle satisfies "
            f"PST({threshold.rho1}, {threshold.rho2}) for this attribute pair"
        )

    intervals = _mask_to_intervals(grid, mask)
    refined = [
        _refine_interval(interval, satisfied, step=360.0 / resolution, iterations=refine_iterations)
        for interval in intervals
    ]
    return SecurityRange(intervals=tuple(refined), threshold=threshold)


def _mask_to_intervals(grid: np.ndarray, mask: np.ndarray) -> list[tuple[float, float]]:
    """Convert a boolean mask over the θ grid into contiguous [start, end] intervals."""
    intervals: list[tuple[float, float]] = []
    in_run = False
    run_start = 0.0
    for theta, ok in zip(grid, mask):
        if ok and not in_run:
            in_run = True
            run_start = float(theta)
        elif not ok and in_run:
            in_run = False
            intervals.append((run_start, float(previous)))
        previous = theta
    if in_run:
        intervals.append((run_start, float(grid[-1])))
    return intervals


def _refine_interval(
    interval: tuple[float, float],
    satisfied,
    *,
    step: float,
    iterations: int,
) -> tuple[float, float]:
    """Sharpen interval end points by bisection against the ``satisfied`` predicate."""
    start, end = interval

    def check(theta: float) -> bool:
        return bool(satisfied(np.array([theta]))[0])

    # Refine the lower bound: search in [start - step, start] for the true boundary.
    low_outside = start - step
    if low_outside >= 0.0 and not check(low_outside):
        lo, hi = low_outside, start
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if check(mid):
                hi = mid
            else:
                lo = mid
        start = hi
    # Refine the upper bound: search in [end, end + step].
    high_outside = end + step
    if high_outside <= 360.0 and not check(high_outside):
        lo, hi = end, high_outside
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if check(mid):
                lo = mid
            else:
                hi = mid
        end = lo
    return (float(start), float(end))
