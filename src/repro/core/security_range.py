"""Variance-vs-θ curves and the *security range* solver (Figures 2 and 3).

For a pair of attribute columns ``A_i``, ``A_j`` rotated by θ the distorted
columns are ``A_i' = cosθ·A_i + sinθ·A_j`` and ``A_j' = −sinθ·A_i + cosθ·A_j``
(Equation 1), so the differences are

.. math::

    A_i - A_i' &= (1-\\cos\\theta)\\,A_i - \\sin\\theta\\,A_j \\\\
    A_j - A_j' &= \\sin\\theta\\,A_i + (1-\\cos\\theta)\\,A_j

and, writing ``σ_i² = Var(A_i)``, ``σ_j² = Var(A_j)`` and
``σ_ij = Cov(A_i, A_j)`` (sample estimators by default; see ``ddof``),

.. math::

    Var(A_i - A_i') &= (1-\\cos\\theta)^2 σ_i^2 + \\sin^2\\theta\\, σ_j^2
                      - 2(1-\\cos\\theta)\\sin\\theta\\, σ_{ij} \\\\
    Var(A_j - A_j') &= \\sin^2\\theta\\, σ_i^2 + (1-\\cos\\theta)^2 σ_j^2
                      + 2(1-\\cos\\theta)\\sin\\theta\\, σ_{ij}

These closed forms are what :func:`variance_difference_curves` evaluates.
The **security range** of a pair under a threshold PST(ρ1, ρ2) is the set of
angles for which both variances clear their thresholds.

Because both curves share the shape
``f(θ) = A(1−cosθ)² + B sin²θ + C(1−cosθ)sinθ``, the half-angle substitution
``t = tan(θ/2)`` turns ``f(θ) = ρ`` into the quartic
``(4A−ρ)t⁴ + 4Ct³ + (4B−2ρ)t² − ρ = 0``, so the range's end points can be
solved *analytically* (the default, see :mod:`repro.perf.analytic`) instead
of on a dense θ grid; the original grid-plus-bisection search is retained as
a cross-check via ``method="grid"`` and both paths reuse the three moments
``(σ_i², σ_j², σ_ij)`` computed once per call rather than re-estimating them
on every probe.

For the paper's worked example both methods reproduce the second pair's
range (118.74°–258.70°) exactly and the first pair's *upper* bound (314.97°)
exactly; the first pair's printed lower bound (48.03°) is not reproducible
under any estimator convention we tried — the solver obtains 82.69°, the
angle at which Var(heart_rate − heart_rate') reaches ρ2 = 0.55 (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..exceptions import SecurityRangeError, ValidationError
from ..perf.analytic import (
    pair_moments,
    solve_admissible_angles,
    variance_curves_from_moments,
)
from .thresholds import PairwiseSecurityThreshold

__all__ = [
    "VarianceCurves",
    "SecurityRange",
    "variance_difference_curves",
    "compute_variance_curves",
    "solve_security_range",
    "solve_security_range_from_moments",
]


def variance_difference_curves(
    attribute_i,
    attribute_j,
    theta_degrees,
    *,
    ddof: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``Var(A_i − A_i')`` and ``Var(A_j − A_j')`` at the given angles.

    Parameters
    ----------
    attribute_i, attribute_j:
        The attribute columns (typically already normalized).
    theta_degrees:
        Scalar or array of rotation angles in degrees.
    ddof:
        Degrees of freedom of the variance estimator (1 = sample, the paper's
        effective choice; 0 = the population form of Eq. 8).

    Returns
    -------
    (ndarray, ndarray)
        The two variance curves, with the same shape as ``theta_degrees``.
    """
    variance_i, variance_j, covariance = pair_moments(attribute_i, attribute_j, ddof=ddof)
    return variance_curves_from_moments(variance_i, variance_j, covariance, theta_degrees)


@dataclass(frozen=True)
class VarianceCurves:
    """The sampled variance-vs-θ curves of a pair (the data behind Figures 2/3)."""

    #: Sampled angles, in degrees.
    theta_degrees: np.ndarray
    #: ``Var(A_i − A_i')`` at each sampled angle.
    variance_i: np.ndarray
    #: ``Var(A_j − A_j')`` at each sampled angle.
    variance_j: np.ndarray

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Return ``(θ, Var_i, Var_j)`` rows — the series a plot of Figure 2/3 would show."""
        return [
            (float(theta), float(var_i), float(var_j))
            for theta, var_i, var_j in zip(self.theta_degrees, self.variance_i, self.variance_j)
        ]


def compute_variance_curves(
    attribute_i,
    attribute_j,
    *,
    resolution: int = 3600,
    ddof: int = 1,
) -> VarianceCurves:
    """Sample both variance curves on a uniform θ grid over [0°, 360°)."""
    resolution = check_integer_in_range(resolution, name="resolution", minimum=8)
    theta = np.linspace(0.0, 360.0, resolution, endpoint=False)
    curve_i, curve_j = variance_difference_curves(attribute_i, attribute_j, theta, ddof=ddof)
    return VarianceCurves(theta_degrees=theta, variance_i=curve_i, variance_j=curve_j)


@dataclass(frozen=True)
class SecurityRange:
    """The set of angles satisfying a pairwise-security threshold.

    The range is stored as a tuple of disjoint *circular* ``(start, end)``
    intervals in degrees, each inclusive.  Every ``start`` lies in
    ``[0, 360]``; an ``end`` greater than 360 denotes an interval that wraps
    through 0° (e.g. ``(300.0, 390.0)`` covers 300°→360° and 0°→30°).  For
    the paper's examples the range is a single plain interval, but with
    strongly correlated attributes it can split into several.

    Note that :func:`solve_security_range` itself never produces a wrapped
    interval: both variance curves vanish at θ = 0 (every term carries a
    ``(1−cosθ)`` or ``sinθ`` factor) and PST thresholds are strictly
    positive, so an admissible set can never touch the 0°/360° seam.  The
    wrap support keeps ``contains``/``sample``/``total_measure`` coherent
    for ranges constructed directly (e.g. from externally supplied or
    zero-threshold admissible sets).
    """

    intervals: tuple[tuple[float, float], ...]
    threshold: PairwiseSecurityThreshold

    def __post_init__(self) -> None:
        if not self.intervals:
            raise SecurityRangeError(
                "the security range is empty: no rotation angle satisfies "
                f"PST({self.threshold.rho1}, {self.threshold.rho2})"
            )
        for start, end in self.intervals:
            if not (0.0 <= start <= end <= start + 360.0) or start > 360.0:
                raise ValidationError(f"invalid security-range interval ({start}, {end})")

    @property
    def lower_bound(self) -> float:
        """Smallest admissible angle (degrees; a wrapped range starts past 0°)."""
        return self.intervals[0][0]

    @property
    def upper_bound(self) -> float:
        """Largest admissible angle (degrees; may exceed 360 for a wrapped range)."""
        return self.intervals[-1][1]

    @property
    def total_measure(self) -> float:
        """Total length of the security range in degrees (how much freedom θ has)."""
        return float(sum(end - start for start, end in self.intervals))

    def contains(self, theta_degrees: float, *, tolerance: float = 1e-9) -> bool:
        """Whether ``theta_degrees`` (taken modulo 360) lies inside the range."""
        theta = float(theta_degrees) % 360.0
        return any(
            start - tolerance <= candidate <= end + tolerance
            for start, end in self.intervals
            for candidate in (theta, theta + 360.0)
        )

    def sample(self, random_state=None) -> float:
        """Draw an angle uniformly at random from the security range (Step 2c)."""
        rng = ensure_rng(random_state)
        lengths = np.array([end - start for start, end in self.intervals], dtype=float)
        if np.all(lengths == 0.0):
            # Degenerate range: every interval is a single angle.
            index = int(rng.integers(len(self.intervals)))
            return float(self.intervals[index][0]) % 360.0
        probabilities = lengths / lengths.sum()
        index = int(rng.choice(len(self.intervals), p=probabilities))
        start, end = self.intervals[index]
        return float(rng.uniform(start, end)) % 360.0


def solve_security_range(
    attribute_i,
    attribute_j,
    threshold,
    *,
    method: str = "analytic",
    resolution: int = 7200,
    refine_iterations: int = 40,
    ddof: int = 1,
) -> SecurityRange:
    """Compute the security range of a pair under ``threshold`` (Step 2b/2c).

    The admissible set ``{θ : Var(A_i−A_i') ≥ ρ1 and Var(A_j−A_j') ≥ ρ2}`` is
    solved in closed form by default (``method="analytic"``): the threshold
    crossings of each curve are the real roots of a quartic in ``tan(θ/2)``,
    Newton-polished to machine precision (see :mod:`repro.perf.analytic`).
    With ``method="grid"`` the set is instead located on a dense grid of
    ``resolution`` angles and every interval end point is refined by
    bisection (``refine_iterations`` halvings) — retained as an independent
    cross-check of the analytic path; both agree to ≤ 1e-12 degrees.

    Raises
    ------
    SecurityRangeError
        If no angle satisfies both constraints (the thresholds are too large
        for this pair).
    """
    # The three moments determine both curves completely; compute them once
    # instead of re-reducing the columns on every probe.
    variance_i, variance_j, covariance = pair_moments(attribute_i, attribute_j, ddof=ddof)
    return solve_security_range_from_moments(
        variance_i,
        variance_j,
        covariance,
        threshold,
        method=method,
        resolution=resolution,
        refine_iterations=refine_iterations,
    )


def solve_security_range_from_moments(
    variance_i: float,
    variance_j: float,
    covariance: float,
    threshold,
    *,
    method: str = "analytic",
    resolution: int = 7200,
    refine_iterations: int = 40,
) -> SecurityRange:
    """Compute a security range directly from ``(σ_i², σ_j², σ_ij)``.

    Both variance-difference curves are functions of these three moments
    alone, so callers that already hold them — the streaming release
    pipeline accumulates them from row chunks without materializing the
    columns — can solve the range without the data.
    :func:`solve_security_range` is a thin wrapper that computes the moments
    from two columns and delegates here.
    """
    threshold = PairwiseSecurityThreshold.coerce(threshold)
    resolution = check_integer_in_range(resolution, name="resolution", minimum=16)
    refine_iterations = check_integer_in_range(
        refine_iterations, name="refine_iterations", minimum=0
    )
    if method not in ("analytic", "grid"):
        raise ValidationError(f"method must be 'analytic' or 'grid', got {method!r}")

    if method == "analytic":
        intervals = solve_admissible_angles(
            variance_i, variance_j, covariance, threshold.rho1, threshold.rho2
        )
        if not intervals:
            raise SecurityRangeError(
                "the security range is empty: no rotation angle satisfies "
                f"PST({threshold.rho1}, {threshold.rho2}) for this attribute pair"
            )
        return SecurityRange(intervals=tuple(intervals), threshold=threshold)

    def satisfied(theta_degrees: np.ndarray) -> np.ndarray:
        curve_i, curve_j = variance_curves_from_moments(
            variance_i, variance_j, covariance, theta_degrees
        )
        return (curve_i >= threshold.rho1) & (curve_j >= threshold.rho2)

    grid = np.linspace(0.0, 360.0, resolution, endpoint=False)
    mask = satisfied(grid)
    if not mask.any():
        raise SecurityRangeError(
            "the security range is empty: no rotation angle satisfies "
            f"PST({threshold.rho1}, {threshold.rho2}) for this attribute pair"
        )

    intervals = _mask_to_intervals(grid, mask)
    refined = [
        _refine_interval(interval, satisfied, step=360.0 / resolution, iterations=refine_iterations)
        for interval in intervals
    ]
    return SecurityRange(intervals=tuple(refined), threshold=threshold)


def _mask_to_intervals(grid: np.ndarray, mask: np.ndarray) -> list[tuple[float, float]]:
    """Convert a boolean mask over the θ grid into contiguous circular intervals.

    A run that is still open at the last grid point continues, modulo 360,
    into a run starting at the first grid point: the two are merged into one
    wrapped interval ``(start, end + 360)`` so ``lower_bound``,
    ``total_measure`` and ``sample()`` see a single admissible arc rather
    than two spuriously disjoint ones.  (With strictly positive thresholds
    the solver's mask is always False at θ = 0, so the merge only triggers
    for predicates supplied by other callers.)
    """
    if mask.all():
        return [(float(grid[0]), float(grid[0]) + 360.0)]
    intervals: list[tuple[float, float]] = []
    in_run = False
    run_start = 0.0
    previous = float(grid[0])
    for theta, ok in zip(grid, mask):
        if ok and not in_run:
            in_run = True
            run_start = float(theta)
        elif not ok and in_run:
            in_run = False
            intervals.append((run_start, float(previous)))
        previous = float(theta)
    if in_run:
        intervals.append((run_start, float(grid[-1])))
        if mask[0] and len(intervals) > 1:
            # The run wraps through 0°: splice the leading run onto this one.
            first_start, first_end = intervals.pop(0)
            wrapped_start, _ = intervals.pop()
            intervals.append((wrapped_start, first_end + 360.0))
    return intervals


def _refine_interval(
    interval: tuple[float, float],
    satisfied,
    *,
    step: float,
    iterations: int,
) -> tuple[float, float]:
    """Sharpen interval end points by bisection against the ``satisfied`` predicate."""
    start, end = interval
    if end > 360.0:
        # A wrapped interval only arises from a predicate that admits θ = 0,
        # which the PST solver (ρ > 0) never produces; if one ever reaches
        # here, keep its grid-resolution bounds rather than refine across
        # the seam.
        return (float(start), float(end))

    def check(theta: float) -> bool:
        return bool(satisfied(np.array([theta]))[0])

    # Refine the lower bound: search in [start - step, start] for the true boundary.
    low_outside = start - step
    if low_outside >= 0.0 and not check(low_outside):
        lo, hi = low_outside, start
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if check(mid):
                hi = mid
            else:
                lo = mid
        start = hi
    # Refine the upper bound: search in [end, end + step].
    high_outside = end + step
    if high_outside <= 360.0 and not check(high_outside):
        lo, hi = end, high_outside
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if check(mid):
                lo = mid
            else:
                hi = mid
        end = lo
    return (float(start), float(end))
