"""The paper's primary contribution: the Rotation-Based Transformation (RBT).

* :mod:`repro.core.rotation` — 2-D rotation matrices (Equation 1) and
  attribute-pair rotation.
* :mod:`repro.core.thresholds` — the pairwise-security threshold
  PST(ρ1, ρ2) of Definition 2.
* :mod:`repro.core.security_range` — the variance-vs-θ curves of Figures 2
  and 3 and the *security range* solver (analytic closed form plus numeric
  cross-check).
* :mod:`repro.core.pair_selection` — strategies for grouping attributes
  into pairs (Step 1 of the algorithm in Section 4.3).
* :mod:`repro.core.rbt` — the RBT algorithm (Definition 3, Section 4.3):
  :class:`RBT`, its per-pair :class:`RotationRecord` bookkeeping and the
  :class:`RBTResult` release object.
"""

from .rotation import (
    is_rotation_matrix,
    rotate_pair,
    rotation_matrix,
)
from .thresholds import PairwiseSecurityThreshold
from .security_range import (
    SecurityRange,
    VarianceCurves,
    compute_variance_curves,
    solve_security_range,
    variance_difference_curves,
)
from .pair_selection import (
    PairSelectionStrategy,
    select_pairs,
)
from .rbt import RBT, RBTResult, RotationRecord, rbt_transform
from .secrets import RBTSecret, RotationStep

__all__ = [
    "rotation_matrix",
    "rotate_pair",
    "is_rotation_matrix",
    "PairwiseSecurityThreshold",
    "VarianceCurves",
    "SecurityRange",
    "variance_difference_curves",
    "compute_variance_curves",
    "solve_security_range",
    "PairSelectionStrategy",
    "select_pairs",
    "RBT",
    "RotationRecord",
    "RBTResult",
    "rbt_transform",
    "RBTSecret",
    "RotationStep",
]
