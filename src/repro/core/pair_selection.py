"""Attribute-pair selection strategies (Step 1 of the RBT algorithm).

The algorithm distorts ``k = ceil(n / 2)`` attribute pairs.  The paper leaves
the pairing to the security administrator ("the pairs are not selected
sequentially — a security administrator could select the pairs of attributes
in any order of his choice") and notes that when ``n`` is odd the last
attribute is paired with an attribute that has already been distorted.

Strategies provided:

* ``EXPLICIT`` — the caller supplies the pairs (how the paper's worked
  example chooses ``[age, heart_rate]`` then ``[weight, age]``).
* ``INTERLEAVED`` — deterministic non-sequential pairing (first with middle,
  second with middle+1, ...), the library default.
* ``SEQUENTIAL`` — adjacent columns paired in order (provided mostly as a
  baseline for the ablation benchmark).
* ``RANDOM`` — random pairing drawn from ``random_state``.
* ``MAX_VARIANCE`` — greedy pairing that maximizes a proxy for the achievable
  ``Var(A − A')`` (pairs the most- with the least-correlated columns); the
  paper mentions "we could try all the possible combinations of attribute
  pairs to maximize the variance" — this strategy is the tractable greedy
  version of that idea.

Every strategy returns a list of ``(first, second)`` column-name tuples whose
*first* elements are all distinct and cover all columns; for odd ``n`` the
final pair reuses an already-distorted column as its second element.
"""

from __future__ import annotations

from collections.abc import Sequence
from enum import Enum

import numpy as np

from .._validation import ensure_rng
from ..exceptions import PairSelectionError

__all__ = ["PairSelectionStrategy", "select_pairs"]


class PairSelectionStrategy(str, Enum):
    """Available pairing strategies for Step 1 of the RBT algorithm."""

    EXPLICIT = "explicit"
    INTERLEAVED = "interleaved"
    SEQUENTIAL = "sequential"
    RANDOM = "random"
    MAX_VARIANCE = "max_variance"


def select_pairs(
    columns: Sequence[str],
    *,
    strategy: PairSelectionStrategy | str = PairSelectionStrategy.INTERLEAVED,
    explicit_pairs: Sequence[tuple[str, str]] | None = None,
    values: np.ndarray | None = None,
    correlation: np.ndarray | None = None,
    random_state=None,
) -> list[tuple[str, str]]:
    """Group ``columns`` into rotation pairs according to ``strategy``.

    Parameters
    ----------
    columns:
        The attribute names to distort (at least two).
    strategy:
        A :class:`PairSelectionStrategy` or its string value.
    explicit_pairs:
        Required when ``strategy`` is ``EXPLICIT``; validated so that every
        column is distorted at least once, no column is paired with itself,
        and the second element of a trailing odd pair has already been
        distorted by an earlier pair.
    values:
        Column-value matrix aligned with ``columns``; used by
        ``MAX_VARIANCE`` to compute the correlation structure.
    correlation:
        Pre-computed ``(n, n)`` correlation matrix aligned with ``columns``;
        an alternative to ``values`` for ``MAX_VARIANCE`` (the streaming
        release pipeline derives it from chunk-accumulated moments without
        materializing the columns).
    random_state:
        Seed / generator for the ``RANDOM`` strategy.

    Returns
    -------
    list of (str, str)
        One tuple per rotation, in the order they will be applied.
    """
    columns = [str(name) for name in columns]
    if len(columns) < 2:
        raise PairSelectionError(
            f"pair selection needs at least two attributes, got {len(columns)}"
        )
    if len(set(columns)) != len(columns):
        raise PairSelectionError(f"attribute names must be unique, got {columns}")
    strategy = PairSelectionStrategy(strategy)

    if strategy is PairSelectionStrategy.EXPLICIT:
        if not explicit_pairs:
            raise PairSelectionError("explicit strategy requires explicit_pairs")
        return _validate_explicit(columns, explicit_pairs)
    if strategy is PairSelectionStrategy.SEQUENTIAL:
        ordered = list(columns)
    elif strategy is PairSelectionStrategy.INTERLEAVED:
        ordered = _interleave(columns)
    elif strategy is PairSelectionStrategy.RANDOM:
        rng = ensure_rng(random_state)
        ordered = [columns[index] for index in rng.permutation(len(columns))]
    elif strategy is PairSelectionStrategy.MAX_VARIANCE:
        ordered = _max_variance_order(columns, values, correlation)
    else:  # pragma: no cover - exhaustive enum
        raise PairSelectionError(f"unsupported strategy {strategy}")
    return _pair_up(ordered)


def _interleave(columns: Sequence[str]) -> list[str]:
    """Order columns so consecutive pairs are (first, middle), (second, middle+1), ..."""
    half = (len(columns) + 1) // 2
    first_half, second_half = list(columns[:half]), list(columns[half:])
    ordered: list[str] = []
    for index in range(half):
        ordered.append(first_half[index])
        if index < len(second_half):
            ordered.append(second_half[index])
    return ordered


def _max_variance_order(
    columns: Sequence[str],
    values: np.ndarray | None,
    correlation: np.ndarray | None = None,
) -> list[str]:
    """Greedy pairing: repeatedly pair the two remaining least-correlated columns.

    Lower |correlation| leaves more of the rotation's energy in the difference
    ``A − A'``, so the achievable ``Var(A − A')`` is larger; this implements
    the paper's "maximize the variance between the original and the distorted
    attributes" remark as a greedy heuristic.
    """
    if correlation is None:
        if values is None:
            raise PairSelectionError(
                "max_variance strategy requires the column values or a correlation matrix"
            )
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(columns):
            raise PairSelectionError(
                f"values must be a 2-D array with {len(columns)} column(s), "
                f"got shape {values.shape}"
            )
        with np.errstate(invalid="ignore"):
            correlation = np.corrcoef(values, rowvar=False)
    else:
        correlation = np.asarray(correlation, dtype=float)
        if correlation.shape != (len(columns), len(columns)):
            raise PairSelectionError(
                f"correlation must be a {len(columns)}x{len(columns)} matrix, "
                f"got shape {correlation.shape}"
            )
    correlation = np.nan_to_num(correlation, nan=0.0)
    remaining = list(range(len(columns)))
    ordered_indices: list[int] = []
    while len(remaining) >= 2:
        best_pair = None
        best_score = np.inf
        for position_a, index_a in enumerate(remaining):
            for index_b in remaining[position_a + 1 :]:
                score = abs(float(correlation[index_a, index_b]))
                if score < best_score:
                    best_score = score
                    best_pair = (index_a, index_b)
        assert best_pair is not None
        ordered_indices.extend(best_pair)
        remaining = [index for index in remaining if index not in best_pair]
    ordered_indices.extend(remaining)
    return [columns[index] for index in ordered_indices]


def _pair_up(ordered: list[str]) -> list[tuple[str, str]]:
    """Turn an ordered column list into pairs, reusing the first column for an odd tail."""
    pairs = [(ordered[index], ordered[index + 1]) for index in range(0, len(ordered) - 1, 2)]
    if len(ordered) % 2 == 1:
        # The last attribute is distorted along with an attribute that has
        # already been distorted (the paper's rule for odd n).
        pairs.append((ordered[-1], ordered[0]))
    return pairs


def _validate_explicit(
    columns: Sequence[str],
    explicit_pairs: Sequence[tuple[str, str]],
) -> list[tuple[str, str]]:
    pairs = [(str(first), str(second)) for first, second in explicit_pairs]
    known = set(columns)
    distorted: set[str] = set()
    for first, second in pairs:
        if first == second:
            raise PairSelectionError(f"an attribute cannot be paired with itself: {first!r}")
        for name in (first, second):
            if name not in known:
                raise PairSelectionError(f"pair refers to unknown attribute {name!r}")
        distorted.update((first, second))
    missing = known - distorted
    if missing:
        raise PairSelectionError(
            f"every attribute must be distorted at least once; missing: {sorted(missing)}"
        )
    expected = (len(columns) + 1) // 2
    if len(pairs) < expected:
        raise PairSelectionError(
            f"{len(columns)} attribute(s) need at least {expected} pair(s), got {len(pairs)}"
        )
    return pairs
