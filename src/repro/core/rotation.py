"""Rotation primitives (Section 3.1, Equation 1).

The paper rotates a pair of attributes by the clockwise rotation matrix

.. math::

    R(\\theta) = \\begin{pmatrix} \\cos\\theta & \\sin\\theta \\\\
                                 -\\sin\\theta & \\cos\\theta \\end{pmatrix}

applied to the 2-row matrix ``V`` whose first row is attribute ``A_i`` and
whose second row is attribute ``A_j`` (``V' = R V``).  Angles are expressed
in **degrees** at the API surface because the paper quotes degrees
(θ₁ = 312.47°, θ₂ = 147.29°, security ranges in degrees); conversion to
radians happens internally.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_vector
from ..exceptions import ValidationError

__all__ = ["rotation_matrix", "rotate_pair", "rotate_block", "is_rotation_matrix"]


def rotation_matrix(theta_degrees: float) -> np.ndarray:
    """Return the 2x2 clockwise rotation matrix of Equation (1) for ``theta_degrees``."""
    theta = np.deg2rad(float(theta_degrees))
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    return np.array([[cos_t, sin_t], [-sin_t, cos_t]], dtype=float)


def rotate_block(
    attribute_i: np.ndarray,
    attribute_j: np.ndarray,
    theta_degrees: float,
    *,
    inverse: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise rotation kernel shared by the in-memory and streaming paths.

    Computes ``A_i' = cosθ·A_i + sinθ·A_j`` and ``A_j' = cosθ·A_j − sinθ·A_i``
    (``inverse=True`` flips the sign of ``sinθ``, i.e. applies ``R(θ)ᵀ``).
    Because every operation is elementwise — no matrix product, whose BLAS
    kernel selection can depend on the operand length — rotating a column in
    row chunks produces bitwise-identical values to rotating it whole, which
    is what makes the streamed release byte-identical to the in-memory one.
    Inputs are not validated; callers pass equal-length float arrays.
    """
    theta = np.deg2rad(float(theta_degrees))
    cos_t = float(np.cos(theta))
    sin_t = float(np.sin(theta))
    if inverse:
        sin_t = -sin_t
    return cos_t * attribute_i + sin_t * attribute_j, cos_t * attribute_j - sin_t * attribute_i


def rotate_pair(
    attribute_i,
    attribute_j,
    theta_degrees: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate the attribute pair ``(A_i, A_j)`` by ``theta_degrees``.

    Implements ``V' = R x V`` with ``V = [A_i; A_j]`` stacked as rows, i.e.::

        A_i' =  cos(θ) A_i + sin(θ) A_j
        A_j' = -sin(θ) A_i + cos(θ) A_j

    Parameters
    ----------
    attribute_i, attribute_j:
        1-D arrays of equal length holding the two attribute columns.
    theta_degrees:
        Rotation angle in degrees (the paper measures θ clockwise).

    Returns
    -------
    (ndarray, ndarray)
        The rotated columns ``(A_i', A_j')``.
    """
    attribute_i = as_float_vector(attribute_i, name="attribute_i")
    attribute_j = as_float_vector(attribute_j, name="attribute_j")
    if attribute_i.shape != attribute_j.shape:
        raise ValidationError(
            "attribute_i and attribute_j must have the same length, "
            f"got {attribute_i.size} and {attribute_j.size}"
        )
    return rotate_block(attribute_i, attribute_j, theta_degrees)


def is_rotation_matrix(matrix, *, atol: float = 1e-10) -> bool:
    """Whether ``matrix`` is a proper 2-D rotation (orthogonal, determinant +1)."""
    array = np.asarray(matrix, dtype=float)
    if array.shape != (2, 2):
        return False
    # repro-lint: disable=RPR007 -- 2x2 orthogonality check under a tolerance, nothing released
    identity_check = np.allclose(array @ array.T, np.eye(2), atol=atol)
    determinant_check = np.isclose(np.linalg.det(array), 1.0, atol=atol)
    return bool(identity_check and determinant_check)
