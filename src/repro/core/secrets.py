"""Persistence of the data owner's rotation secrets.

The output of an RBT run has two parts: the released matrix (shared) and the
rotation bookkeeping — which attribute pairs were rotated, in which order, by
which angles (kept by the owner).  With the bookkeeping the transformation is
exactly invertible; without it an attacker faces the computational-work
argument of Section 5.2.

:class:`RBTSecret` is the owner-side artifact: a compact, JSON-serializable
record of the pairings and angles (plus the thresholds they satisfied) that
can be stored in a key vault and applied later to invert a release or to
re-apply the identical transformation to a new batch of records drawn from
the same normalized space.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data import DataMatrix
from ..exceptions import SerializationError, ValidationError
from .rbt import RBTResult, RotationRecord
from .rotation import rotate_block
from .thresholds import PairwiseSecurityThreshold

__all__ = ["RotationStep", "RBTSecret"]

#: Format marker written into serialized secrets so future revisions can evolve.
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RotationStep:
    """One pairwise rotation: the pair of attribute names and the angle used."""

    pair: tuple[str, str]
    theta_degrees: float
    threshold: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if len(self.pair) != 2 or self.pair[0] == self.pair[1]:
            raise ValidationError(f"a rotation step needs two distinct attributes, got {self.pair}")
        object.__setattr__(self, "pair", (str(self.pair[0]), str(self.pair[1])))
        object.__setattr__(self, "theta_degrees", float(self.theta_degrees))
        object.__setattr__(
            self, "threshold", (float(self.threshold[0]), float(self.threshold[1]))
        )


@dataclass(frozen=True)
class RBTSecret:
    """The owner's record of an RBT transformation (pairs, order and angles).

    Examples
    --------
    >>> from repro.core import RBT
    >>> from repro.data.datasets import load_cardiac_normalized
    >>> result = RBT(thresholds=0.25, random_state=0).transform(load_cardiac_normalized())
    >>> secret = RBTSecret.from_result(result)
    >>> restored = secret.invert(result.matrix)
    >>> bool(abs(restored.values - load_cardiac_normalized().values).max() < 1e-9)
    True
    """

    steps: tuple[RotationStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValidationError("an RBT secret must contain at least one rotation step")
        object.__setattr__(self, "steps", tuple(self.steps))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(cls, result: RBTResult) -> RBTSecret:
        """Extract the secret from an :class:`~repro.core.RBTResult`."""
        return cls.from_records(result.records)

    @classmethod
    def from_records(cls, records: Sequence[RotationRecord]) -> RBTSecret:
        """Build a secret from rotation records (an :class:`RBTResult`'s or a
        streaming release report's)."""
        steps = tuple(
            RotationStep(
                pair=record.pair,
                theta_degrees=record.theta_degrees,
                threshold=record.threshold.as_tuple(),
            )
            for record in records
        )
        return cls(steps)

    @classmethod
    def from_steps(cls, steps: Sequence[tuple[tuple[str, str], float]]) -> RBTSecret:
        """Build a secret from bare ``((name_i, name_j), theta_degrees)`` tuples."""
        return cls(tuple(RotationStep(pair=pair, theta_degrees=theta) for pair, theta in steps))

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply(self, matrix: DataMatrix) -> DataMatrix:
        """Re-apply the recorded rotations (in order) to ``matrix``.

        Useful when new records arrive that were normalized with the same
        statistics: applying the same secret keeps the new release consistent
        with the previous one.
        """
        return self._run(matrix, inverse=False)

    def invert(self, released: DataMatrix) -> DataMatrix:
        """Undo the recorded rotations (in reverse order) on a released matrix."""
        return self._run(released, inverse=True)

    def check_columns(self, columns: Sequence[str]) -> None:
        """Validate that every attribute the secret references is present."""
        columns = list(columns)
        for step in self.steps:
            for name in step.pair:
                if name not in columns:
                    raise ValidationError(
                        f"secret refers to attribute {name!r} which is not in the matrix "
                        f"(columns: {columns})"
                    )

    def apply_to_block(
        self,
        values,
        columns: Sequence[str],
        *,
        inverse: bool = False,
        copy: bool = True,
        validate: bool = True,
    ) -> np.ndarray:
        """Apply (or undo) the recorded rotations to a raw ``(rows, n)`` block.

        The rotation is a fixed linear map once the angles are chosen, applied
        elementwise per row — so running it block-by-block over a stream of
        row chunks produces bitwise-identical values to running it on the
        whole matrix.  This is the kernel behind both :meth:`apply` /
        :meth:`invert` and the streaming ``invert`` path.

        ``copy=False`` mutates and returns ``values`` (the block must be a
        writable float array the caller owns) and ``validate=False`` skips
        the per-call column check — the streaming path validates once up
        front and owns every freshly parsed chunk, so it opts out of both
        in its per-chunk loop.
        """
        if validate:
            self.check_columns(columns)
        columns = list(columns)
        values = np.array(values, dtype=float, copy=True) if copy else values
        ordered = reversed(self.steps) if inverse else self.steps
        for step in ordered:
            index_i = columns.index(step.pair[0])
            index_j = columns.index(step.pair[1])
            rotated_i, rotated_j = rotate_block(
                values[:, index_i], values[:, index_j], step.theta_degrees, inverse=inverse
            )
            values[:, index_i] = rotated_i
            values[:, index_j] = rotated_j
        return values

    def _run(self, matrix: DataMatrix, *, inverse: bool) -> DataMatrix:
        if not isinstance(matrix, DataMatrix):
            raise ValidationError("RBTSecret operates on DataMatrix instances")
        return matrix.with_values(
            self.apply_to_block(matrix.values, matrix.columns, inverse=inverse)
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return a JSON-serializable representation of the secret."""
        return {
            "format": "repro.rbt-secret",
            "version": _FORMAT_VERSION,
            "steps": [
                {
                    "pair": list(step.pair),
                    "theta_degrees": step.theta_degrees,
                    "threshold": list(step.threshold),
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RBTSecret:
        """Rebuild a secret from :meth:`to_dict` output."""
        try:
            if payload.get("format") != "repro.rbt-secret":
                raise SerializationError("payload is not an RBT secret (missing format marker)")
            steps = tuple(
                RotationStep(
                    pair=tuple(entry["pair"]),
                    theta_degrees=entry["theta_degrees"],
                    threshold=tuple(entry.get("threshold", (0.0, 0.0)) or (0.0, 0.0)),
                )
                for entry in payload["steps"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed RBT secret payload: {exc}") from exc
        return cls(steps)

    def save(self, path: str | Path) -> None:
        """Write the secret to ``path`` as JSON.

        The file grants full inversion capability; store it like a key.
        """
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> RBTSecret:
        """Read a secret previously written by :meth:`save`."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(f"cannot read RBT secret from {path}: {exc}") from exc
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        """The rotated attribute pairs, in application order."""
        return tuple(step.pair for step in self.steps)

    @property
    def angles_degrees(self) -> tuple[float, ...]:
        """The rotation angles, in application order."""
        return tuple(step.theta_degrees for step in self.steps)

    def thresholds(self) -> tuple[PairwiseSecurityThreshold | None, ...]:
        """The recorded thresholds (``None`` for steps stored without one)."""
        result: list[PairwiseSecurityThreshold | None] = []
        for step in self.steps:
            if step.threshold[0] > 0 and step.threshold[1] > 0:
                result.append(PairwiseSecurityThreshold(*step.threshold))
            else:
                result.append(None)
        return tuple(result)
