"""The Rotation-Based Transformation algorithm (Definitions 2/3, Section 4.3).

The algorithm receives a *normalized* data matrix ``D`` and a set of
pairwise-security thresholds and produces the released matrix ``D'``:

1. **Selecting the attribute pairs** — ``k = ceil(n/2)`` pairs are formed
   (Step 1); the pairing is configurable through
   :mod:`repro.core.pair_selection` or given explicitly.
2. **Distorting the attribute pairs** — for every pair the variance curves
   ``Var(A_i − A_i')(θ)`` / ``Var(A_j − A_j')(θ)`` are computed, the
   *security range* satisfying PST(ρ1, ρ2) is solved, an angle θ is drawn
   uniformly at random from that range (or taken from ``angles`` when the
   caller wants to reproduce a specific run, such as the paper's worked
   example), and the pair is rotated (Steps 2a–2d).

Successive rotations are applied to the *current* state of the matrix, so an
attribute appearing in a later pair (the odd-``n`` rule, or the paper's
``[weight, age]`` second pair) is rotated again starting from its already
distorted values — exactly as in the worked example.

The transformation is an isometry (Theorem 2): every pairwise rotation
preserves all inter-object Euclidean distances, so the dissimilarity matrix
of ``D'`` equals that of ``D`` and any distance-based clustering algorithm
returns identical clusters (Corollary 1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..data import DataMatrix
from ..exceptions import ValidationError
from ..metrics.privacy import perturbation_variance
from ..perf.analytic import pair_moments
from ..perf.streaming import streamed_correlation
from .pair_selection import PairSelectionStrategy, select_pairs
from .rotation import rotate_block, rotate_pair
from .security_range import SecurityRange, solve_security_range_from_moments
from .thresholds import PairwiseSecurityThreshold

__all__ = ["RBT", "RotationRecord", "RBTResult", "rbt_transform"]


@dataclass(frozen=True)
class RotationRecord:
    """Bookkeeping for one pairwise rotation (one iteration of Step 2).

    Attributes
    ----------
    pair:
        The ``(A_i, A_j)`` column names, in rotation order (the order fixes
        the direction of the rotation in the plane of the two attributes).
    threshold:
        The pairwise-security threshold this rotation had to satisfy.
    security_range:
        The full set of admissible angles that was solved for this pair.
    theta_degrees:
        The angle actually used.
    achieved_variances:
        ``(Var(A_i − A_i'), Var(A_j − A_j'))`` measured between the columns as
        they entered this rotation and as they left it — the quantities the
        paper reports for its worked example (0.318/0.9805 and 2.9714/6.9274).
    """

    pair: tuple[str, str]
    threshold: PairwiseSecurityThreshold
    security_range: SecurityRange
    theta_degrees: float
    achieved_variances: tuple[float, float]

    @property
    def satisfied(self) -> bool:
        """Whether the achieved variances clear the threshold."""
        return (
            self.achieved_variances[0] >= self.threshold.rho1
            and self.achieved_variances[1] >= self.threshold.rho2
        )


@dataclass(frozen=True)
class RBTResult:
    """The outcome of an RBT run: the released matrix plus the rotation secrets.

    The ``records`` (pairings, thresholds and angles) are the data owner's
    secret: with them the transformation is exactly invertible
    (:meth:`inverse`); without them an attacker faces the computational-work
    argument of Section 5.2.
    """

    matrix: DataMatrix
    records: tuple[RotationRecord, ...]

    @property
    def angles_degrees(self) -> tuple[float, ...]:
        """The rotation angle of every pair, in application order."""
        return tuple(record.theta_degrees for record in self.records)

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        """The attribute pairs, in application order."""
        return tuple(record.pair for record in self.records)

    def inverse(self) -> DataMatrix:
        """Undo the transformation using the stored secrets (owner-side only)."""
        values = self.matrix.values.copy()
        columns = list(self.matrix.columns)
        for record in reversed(self.records):
            index_i = columns.index(record.pair[0])
            index_j = columns.index(record.pair[1])
            restored_i, restored_j = rotate_block(  # R^{-1} = R^T
                values[:, index_i], values[:, index_j], record.theta_degrees, inverse=True
            )
            values[:, index_i] = restored_i
            values[:, index_j] = restored_j
        return self.matrix.with_values(values)

    def summary(self) -> list[dict[str, object]]:
        """Per-rotation summary rows (pair, threshold, range, angle, variances)."""
        rows = []
        for record in self.records:
            rows.append(
                {
                    "pair": record.pair,
                    "threshold": record.threshold.as_tuple(),
                    "security_range": record.security_range.intervals,
                    "theta_degrees": record.theta_degrees,
                    "achieved_variances": record.achieved_variances,
                    "satisfied": record.satisfied,
                }
            )
        return rows


class RBT:
    """The Rotation-Based Transformation (Definition 3).

    Parameters
    ----------
    thresholds:
        Pairwise-security thresholds: a single PST (scalar, ``(ρ1, ρ2)`` pair
        or :class:`PairwiseSecurityThreshold`) reused for every pair, or one
        per pair.
    strategy:
        Pair-selection strategy (ignored when ``pairs`` is given).
    pairs:
        Explicit attribute pairs, e.g. the paper's
        ``[("age", "heart_rate"), ("weight", "age")]``.
    angles:
        Optional fixed rotation angles (degrees), one per pair.  Each fixed
        angle must lie inside the pair's security range; use this to
        reproduce a particular run (the paper's θ₁ = 312.47°, θ₂ = 147.29°).
    random_state:
        Seed / generator used to draw angles (and random pairings).
    solver:
        Security-range solver: ``"analytic"`` (default, closed-form quartic
        crossings — see :mod:`repro.perf.analytic`) or ``"grid"`` (the
        original dense-grid + bisection search, kept as a cross-check).
    resolution:
        θ-grid resolution used by the ``"grid"`` security-range solver.
    ddof:
        Degrees of freedom for the variance estimator (1 = sample, matching
        the paper's printed numbers; 0 = the population form of Eq. 8).

    Examples
    --------
    >>> from repro.data.datasets import load_cardiac_normalized
    >>> transformer = RBT(
    ...     thresholds=[(0.30, 0.55), (2.30, 2.30)],
    ...     pairs=[("age", "heart_rate"), ("weight", "age")],
    ...     angles=[312.47, 147.29],
    ... )
    >>> released = transformer.transform(load_cardiac_normalized())
    >>> released.matrix.shape
    (5, 3)
    """

    def __init__(
        self,
        thresholds=0.25,
        *,
        strategy: PairSelectionStrategy | str = PairSelectionStrategy.INTERLEAVED,
        pairs: Sequence[tuple[str, str]] | None = None,
        angles: Sequence[float] | None = None,
        random_state=None,
        solver: str = "analytic",
        resolution: int = 7200,
        ddof: int = 1,
    ) -> None:
        self.thresholds = thresholds
        self.strategy = (
            PairSelectionStrategy(strategy) if pairs is None else PairSelectionStrategy.EXPLICIT
        )
        self.pairs = [tuple(pair) for pair in pairs] if pairs is not None else None
        self.angles = [float(angle) for angle in angles] if angles is not None else None
        self.random_state = random_state
        if solver not in ("analytic", "grid"):
            raise ValidationError(f"solver must be 'analytic' or 'grid', got {solver!r}")
        self.solver = solver
        self.resolution = check_integer_in_range(resolution, name="resolution", minimum=16)
        self.ddof = check_integer_in_range(ddof, name="ddof", minimum=0, maximum=1)

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def transform(self, matrix: DataMatrix | np.ndarray) -> RBTResult:
        """Apply the RBT algorithm to a (normalized) data matrix.

        Returns an :class:`RBTResult` holding the released matrix and the
        per-pair rotation records.
        """
        matrix = self._coerce_matrix(matrix)
        pairs = self._resolve_pairs(matrix)
        thresholds = PairwiseSecurityThreshold.broadcast(self.thresholds, len(pairs))
        if self.angles is not None and len(self.angles) != len(pairs):
            raise ValidationError(
                f"expected {len(pairs)} fixed angle(s) (one per pair), got {len(self.angles)}"
            )
        rng = ensure_rng(self.random_state)

        values = matrix.values.copy()
        columns = list(matrix.columns)
        records: list[RotationRecord] = []
        for pair_index, (pair, threshold) in enumerate(zip(pairs, thresholds)):
            index_i = columns.index(pair[0])
            index_j = columns.index(pair[1])
            column_i = values[:, index_i].copy()
            column_j = values[:, index_j].copy()

            moments = pair_moments(column_i, column_j, ddof=self.ddof)
            security_range = self.solve_range_from_moments(moments, threshold)
            theta = self.choose_theta(pair_index, pair, security_range, rng)

            rotated_i, rotated_j = rotate_pair(column_i, column_j, theta)
            achieved = (
                perturbation_variance(column_i, rotated_i, ddof=self.ddof),
                perturbation_variance(column_j, rotated_j, ddof=self.ddof),
            )
            values[:, index_i] = rotated_i
            values[:, index_j] = rotated_j
            records.append(
                RotationRecord(
                    pair=(pair[0], pair[1]),
                    threshold=threshold,
                    security_range=security_range,
                    theta_degrees=theta,
                    achieved_variances=achieved,
                )
            )

        released = matrix.with_values(values)
        return RBTResult(matrix=released, records=tuple(records))

    # Alias matching the fit/transform vocabulary used elsewhere in the library.
    def fit_transform(self, matrix: DataMatrix | np.ndarray) -> RBTResult:
        """Alias for :meth:`transform` (RBT has no separate fitting step)."""
        return self.transform(matrix)

    # ------------------------------------------------------------------ #
    # Planning primitives (shared with the streaming release pipeline)
    # ------------------------------------------------------------------ #
    def solve_range_from_moments(self, moments, threshold) -> SecurityRange:
        """Solve one pair's security range from its ``(σ_i², σ_j², σ_ij)``.

        This is Step 2b expressed on moment summaries alone, so the
        streaming pipeline — which accumulates the moments from row chunks —
        reaches the exact security range the in-memory path computes.
        """
        variance_i, variance_j, covariance = moments
        return solve_security_range_from_moments(
            variance_i,
            variance_j,
            covariance,
            threshold,
            method=self.solver,
            resolution=self.resolution,
        )

    def choose_theta(
        self,
        pair_index: int,
        pair: tuple[str, str],
        security_range: SecurityRange,
        rng: np.random.Generator,
    ) -> float:
        """Pick the rotation angle of one pair (Step 2c): fixed or sampled."""
        if self.angles is not None:
            theta = float(self.angles[pair_index])
            if not security_range.contains(theta, tolerance=0.25):
                raise ValidationError(
                    f"fixed angle {theta}° for pair {pair} lies outside its security range "
                    f"{security_range.intervals}"
                )
            return theta
        return security_range.sample(rng)

    def resolve_pairs_for_columns(
        self,
        columns: Sequence[str],
        *,
        values: np.ndarray | None = None,
        correlation: np.ndarray | None = None,
    ) -> list[tuple[str, str]]:
        """Run Step 1 (pair selection) from column names and optional statistics.

        ``values`` feeds the ``max_variance`` strategy in the in-memory path;
        the streaming pipeline passes a ``correlation`` matrix derived from
        its chunk-accumulated moments instead.  The in-memory branch derives
        its correlation through the same chunk-invariant reducer
        (:func:`repro.perf.streaming.streamed_correlation`), so the greedy
        pairing — and with it the drawn angles — is bitwise identical
        between the two paths even on near-tied correlations.
        """
        if len(columns) < 2:
            raise ValidationError(
                f"RBT needs at least two attributes to rotate, got {len(columns)}"
            )
        if self.pairs is not None:
            return select_pairs(
                columns,
                strategy=PairSelectionStrategy.EXPLICIT,
                explicit_pairs=self.pairs,
            )
        if (
            self.strategy is PairSelectionStrategy.MAX_VARIANCE
            and correlation is None
            and values is not None
        ):
            correlation = streamed_correlation(values, ddof=1)
            values = None
        return select_pairs(
            columns,
            strategy=self.strategy,
            values=values,
            correlation=correlation,
            random_state=self.random_state,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_matrix(matrix) -> DataMatrix:
        if isinstance(matrix, DataMatrix):
            return matrix
        return DataMatrix(matrix)

    def _resolve_pairs(self, matrix: DataMatrix) -> list[tuple[str, str]]:
        return self.resolve_pairs_for_columns(matrix.columns, values=matrix.values)


def rbt_transform(
    matrix: DataMatrix | np.ndarray,
    thresholds=0.25,
    *,
    pairs: Sequence[tuple[str, str]] | None = None,
    angles: Sequence[float] | None = None,
    strategy: PairSelectionStrategy | str = PairSelectionStrategy.INTERLEAVED,
    random_state=None,
) -> RBTResult:
    """One-shot convenience wrapper around :class:`RBT`.

    Parameters mirror :class:`RBT`; see its docstring for details.
    """
    transformer = RBT(
        thresholds,
        strategy=strategy,
        pairs=pairs,
        angles=angles,
        random_state=random_state,
    )
    return transformer.transform(matrix)
