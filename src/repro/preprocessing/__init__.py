"""Pre-processing steps applied before the RBT distortion (Section 4.1).

* Identifier suppression (:func:`suppress_identifiers`,
  :class:`IdentifierSuppressor`).
* Attribute normalization: min-max (Equation 3), z-score (Equation 4) and
  decimal-scaling normalizers, all following a ``fit`` / ``transform`` /
  ``inverse_transform`` protocol.
* :class:`PreprocessingPipeline` to chain the steps the paper prescribes
  (suppress identifiers, then normalize the confidential attributes).
"""

from .normalization import (
    DecimalScalingNormalizer,
    MinMaxNormalizer,
    Normalizer,
    ZScoreNormalizer,
    normalize_min_max,
    normalize_z_score,
)
from .suppression import IdentifierSuppressor, suppress_identifiers
from .pipeline import PreprocessingPipeline

__all__ = [
    "Normalizer",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "DecimalScalingNormalizer",
    "normalize_min_max",
    "normalize_z_score",
    "IdentifierSuppressor",
    "suppress_identifiers",
    "PreprocessingPipeline",
]
