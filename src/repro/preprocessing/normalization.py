"""Attribute normalization (Section 3.2, Equations 3 and 4).

The paper normalizes the confidential attributes before rotating them, both
to give every attribute equal weight and as a first, weak obfuscation step
(Section 5.3, "Data Obscuring").  Three normalizers are provided:

* :class:`MinMaxNormalizer` — Equation (3), linear rescaling into
  ``[new_min, new_max]``.
* :class:`ZScoreNormalizer` — Equation (4), zero-mean / unit-variance using
  **sample** statistics by default (``ddof=1``).  The paper's Equation (8)
  states the population variance (division by ``N``), but the printed
  figures of Table 2 only reproduce with the sample standard deviation
  (division by ``N−1``); the estimator is configurable through ``ddof``.
* :class:`DecimalScalingNormalizer` — the third classical normalizer from the
  Han & Kamber reference the paper cites; included for completeness.

Every normalizer follows the ``fit`` / ``transform`` / ``inverse_transform``
protocol and operates on :class:`~repro.data.DataMatrix` instances (or raw
arrays, returning arrays).

All normalizers can also be fitted **out-of-core** with :meth:`Normalizer.fit_stream`,
which consumes an iterable of row chunks.  The in-memory :meth:`Normalizer.fit`
is routed through the same chunk-invariant reduction
(:class:`repro.perf.streaming.StreamingMoments` for the z-score moments;
min/max reductions are exactly associative already), so the statistics —
and therefore every transformed value — are **bitwise identical** no matter
how the rows were chunked.  This is the property the streaming release
pipeline's byte-identity guarantee rests on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import as_float_matrix
from ..data import DataMatrix
from ..exceptions import NormalizationError, ValidationError
from ..perf.streaming import StreamingMoments

__all__ = [
    "Normalizer",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "DecimalScalingNormalizer",
    "normalize_min_max",
    "normalize_z_score",
]


class Normalizer(ABC):
    """Base class for column-wise normalizers.

    Subclasses implement :meth:`_fit_array`, :meth:`_transform_array` and
    :meth:`_inverse_transform_array` on raw ``(m, n)`` arrays; this base class
    handles :class:`DataMatrix` wrapping, fitting state and validation.
    """

    def __init__(self) -> None:
        self._n_attributes: int | None = None

    # ------------------------------------------------------------------ #
    # Public protocol
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._n_attributes is not None

    def fit(self, data) -> Normalizer:
        """Learn per-column statistics from ``data`` and return ``self``."""
        array = self._coerce(data)
        self._fit_array(array)
        self._n_attributes = array.shape[1]
        return self

    def fit_stream(self, chunks, *, backend=None) -> Normalizer:
        """Learn per-column statistics from an iterable of row chunks.

        Each chunk is a ``(rows, n_attributes)`` array (or
        :class:`~repro.data.DataMatrix`); all chunks must share one width.
        The fitted statistics are bitwise identical to :meth:`fit` on the
        vertically stacked chunks, for any chunk boundaries — :meth:`fit`
        itself delegates to the same single-chunk stream.

        ``backend`` is an execution-backend spec (see
        :mod:`repro.perf.backends`) handed to accumulators that support one
        (the z-score :class:`~repro.perf.streaming.StreamingMoments`); the
        min/max accumulators ignore it.  Serial and parallel fits produce
        the same bits.
        """
        fitter = None
        n_attributes: int | None = None
        n_rows = 0
        for chunk in chunks:
            array = self._coerce(chunk)
            if n_attributes is None:
                n_attributes = array.shape[1]
                fitter = self._stream_fitter(n_attributes)
                if backend is not None and hasattr(fitter, "backend"):
                    fitter.backend = backend
            elif array.shape[1] != n_attributes:
                raise ValidationError(
                    f"chunk has {array.shape[1]} attribute(s) but earlier chunks "
                    f"had {n_attributes}"
                )
            if array.shape[0] == 0:
                continue
            fitter.update(array)
            n_rows += array.shape[0]
        if n_attributes is None or n_rows == 0:
            raise NormalizationError(f"{type(self).__name__}.fit_stream received no rows")
        self._finish_stream_fit(fitter, n_rows=n_rows)
        self._n_attributes = n_attributes
        return self

    def transform(self, data):
        """Normalize ``data`` using the fitted statistics.

        Returns a :class:`DataMatrix` when given one, otherwise an array.
        """
        self._check_fitted(data)
        array = self._coerce(data)
        transformed = self._transform_array(array)
        return self._rewrap(data, transformed)

    def fit_transform(self, data):
        """Equivalent to ``fit(data).transform(data)``."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data):
        """Map normalized values back to the original scale."""
        self._check_fitted(data)
        array = self._coerce(data)
        restored = self._inverse_transform_array(array)
        return self._rewrap(data, restored)

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _fit_array(self, array: np.ndarray) -> None:
        """Learn statistics from a raw array (a one-chunk stream fit)."""
        fitter = self._stream_fitter(array.shape[1])
        fitter.update(array)
        self._finish_stream_fit(fitter, n_rows=array.shape[0])

    @abstractmethod
    def _stream_fitter(self, n_columns: int):
        """Return an accumulator with ``update(chunk)`` for streamed fitting."""

    @abstractmethod
    def _finish_stream_fit(self, fitter, *, n_rows: int) -> None:
        """Turn the accumulator's state into fitted statistics."""

    @abstractmethod
    def _transform_array(self, array: np.ndarray) -> np.ndarray:
        """Normalize a raw array."""

    @abstractmethod
    def _inverse_transform_array(self, array: np.ndarray) -> np.ndarray:
        """Invert the normalization of a raw array."""

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(data) -> np.ndarray:
        if isinstance(data, DataMatrix):
            return data.values.copy()
        return as_float_matrix(data, name="data")

    @staticmethod
    def _rewrap(original, transformed: np.ndarray):
        if isinstance(original, DataMatrix):
            return original.with_values(transformed)
        return transformed

    def _check_fitted(self, data) -> None:
        if not self.is_fitted:
            raise NormalizationError(
                f"{type(self).__name__} must be fitted before transform/inverse_transform"
            )
        array = self._coerce(data)
        if array.shape[1] != self._n_attributes:
            raise ValidationError(
                f"{type(self).__name__} was fitted on {self._n_attributes} attribute(s) "
                f"but received {array.shape[1]}"
            )


class MinMaxNormalizer(Normalizer):
    """Min-max normalization (Equation 3).

    Maps every attribute value ``v`` to::

        v' = (v - min_A) / (max_A - min_A) * (new_max - new_min) + new_min

    Parameters
    ----------
    feature_range:
        Target interval ``(new_min, new_max)``; defaults to ``(0.0, 1.0)``.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        super().__init__()
        new_min, new_max = float(feature_range[0]), float(feature_range[1])
        if not new_min < new_max:
            raise ValidationError(
                f"feature_range must be an increasing interval, got {feature_range}"
            )
        self.feature_range = (new_min, new_max)
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def _stream_fitter(self, n_columns: int) -> _RangeAccumulator:
        # Per-column min/max: exactly associative reductions, so running
        # chunk-wise extrema equal the whole-matrix extrema bitwise.
        return _RangeAccumulator()

    def _finish_stream_fit(self, fitter: _RangeAccumulator, *, n_rows: int) -> None:
        data_min, data_max = fitter.data_min, fitter.data_max
        degenerate = np.isclose(data_max, data_min)
        if np.any(degenerate):
            indices = np.flatnonzero(degenerate).tolist()
            raise NormalizationError(
                f"min-max normalization is undefined for constant column(s) at index {indices}"
            )
        self.data_min_ = data_min
        self.data_max_ = data_max

    def _transform_array(self, array: np.ndarray) -> np.ndarray:
        new_min, new_max = self.feature_range
        scale = (new_max - new_min) / (self.data_max_ - self.data_min_)
        return (array - self.data_min_) * scale + new_min

    def _inverse_transform_array(self, array: np.ndarray) -> np.ndarray:
        new_min, new_max = self.feature_range
        scale = (self.data_max_ - self.data_min_) / (new_max - new_min)
        return (array - new_min) * scale + self.data_min_


class ZScoreNormalizer(Normalizer):
    """Z-score (zero-mean) normalization (Equation 4).

    Maps every attribute value ``v`` to ``v' = (v - mean_A) / std_A`` using
    sample statistics by default (``ddof=1``), which is what reproduces the
    paper's Table 2 (the paper's Equation 8 states the population form, but
    its printed numbers use the sample estimator).

    Parameters
    ----------
    ddof:
        Delta degrees of freedom for the standard deviation; ``1`` (default)
        is the sample estimator that matches the paper's printed values,
        ``0`` the population estimator of Equation (8) as written.
    """

    def __init__(self, *, ddof: int = 1) -> None:
        super().__init__()
        if ddof not in (0, 1):
            raise ValidationError(f"ddof must be 0 or 1, got {ddof}")
        self.ddof = ddof
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def _stream_fitter(self, n_columns: int) -> StreamingMoments:
        # Tiled, fsum-combined moments: the mean/std are identical bits for
        # any chunking of the same rows (including the whole matrix at once).
        return StreamingMoments(n_columns)

    def _finish_stream_fit(self, fitter: StreamingMoments, *, n_rows: int) -> None:
        if n_rows <= self.ddof:
            raise NormalizationError(
                f"z-score normalization with ddof={self.ddof} needs more than "
                f"{self.ddof} row(s), got {n_rows}"
            )
        mean = fitter.means()
        std = np.sqrt(fitter.variances(ddof=self.ddof))
        degenerate = np.isclose(std, 0.0)
        if np.any(degenerate):
            indices = np.flatnonzero(degenerate).tolist()
            raise NormalizationError(
                f"z-score normalization is undefined for constant column(s) at index {indices}"
            )
        self.mean_ = mean
        self.std_ = std

    def _transform_array(self, array: np.ndarray) -> np.ndarray:
        return (array - self.mean_) / self.std_

    def _inverse_transform_array(self, array: np.ndarray) -> np.ndarray:
        return array * self.std_ + self.mean_


class DecimalScalingNormalizer(Normalizer):
    """Decimal-scaling normalization: ``v' = v / 10^j`` with the smallest ``j``
    such that ``max(|v'|) < 1`` for every attribute."""

    def __init__(self) -> None:
        super().__init__()
        self.scale_: np.ndarray | None = None

    def _stream_fitter(self, n_columns: int) -> _MaxAbsAccumulator:
        return _MaxAbsAccumulator()

    def _finish_stream_fit(self, fitter: _MaxAbsAccumulator, *, n_rows: int) -> None:
        max_abs = fitter.max_abs
        exponents = np.zeros(max_abs.shape[0], dtype=float)
        nonzero = max_abs > 0
        exponents[nonzero] = np.floor(np.log10(max_abs[nonzero])) + 1
        exponents = np.maximum(exponents, 0.0)
        self.scale_ = np.power(10.0, exponents)

    def _transform_array(self, array: np.ndarray) -> np.ndarray:
        return array / self.scale_

    def _inverse_transform_array(self, array: np.ndarray) -> np.ndarray:
        return array * self.scale_


class _RangeAccumulator:
    """Streaming per-column min/max (exact — min/max are associative)."""

    def __init__(self) -> None:
        self.data_min: np.ndarray | None = None
        self.data_max: np.ndarray | None = None

    def update(self, array: np.ndarray) -> None:
        chunk_min = array.min(axis=0)
        chunk_max = array.max(axis=0)
        if self.data_min is None:
            self.data_min = chunk_min
            self.data_max = chunk_max
        else:
            self.data_min = np.minimum(self.data_min, chunk_min)
            self.data_max = np.maximum(self.data_max, chunk_max)

    def state(self) -> dict:
        """Serializable fitter state — the distributed wire payload."""
        return {
            "data_min": None if self.data_min is None else self.data_min.copy(),
            "data_max": None if self.data_max is None else self.data_max.copy(),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another shard's :meth:`state` in (min/max are associative)."""
        if state["data_min"] is None:
            return
        if self.data_min is None:
            self.data_min = np.array(state["data_min"], dtype=float)
            self.data_max = np.array(state["data_max"], dtype=float)
        else:
            self.data_min = np.minimum(self.data_min, state["data_min"])
            self.data_max = np.maximum(self.data_max, state["data_max"])


class _MaxAbsAccumulator:
    """Streaming per-column max(|v|) (exact — max is associative)."""

    def __init__(self) -> None:
        self.max_abs: np.ndarray | None = None

    def update(self, array: np.ndarray) -> None:
        chunk_max = np.abs(array).max(axis=0)
        if self.max_abs is None:
            self.max_abs = chunk_max
        else:
            self.max_abs = np.maximum(self.max_abs, chunk_max)

    def state(self) -> dict:
        """Serializable fitter state — the distributed wire payload."""
        return {"max_abs": None if self.max_abs is None else self.max_abs.copy()}

    def merge_state(self, state: dict) -> None:
        """Fold another shard's :meth:`state` in (max is associative)."""
        if state["max_abs"] is None:
            return
        if self.max_abs is None:
            self.max_abs = np.array(state["max_abs"], dtype=float)
        else:
            self.max_abs = np.maximum(self.max_abs, state["max_abs"])


def normalize_min_max(
    data,
    feature_range: tuple[float, float] = (0.0, 1.0),
):
    """One-shot min-max normalization of ``data`` (Equation 3)."""
    return MinMaxNormalizer(feature_range).fit_transform(data)


def normalize_z_score(data, *, ddof: int = 1):
    """One-shot z-score normalization of ``data`` (Equation 4)."""
    return ZScoreNormalizer(ddof=ddof).fit_transform(data)
