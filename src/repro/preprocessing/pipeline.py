"""A small pre-processing pipeline matching Figure 1's first stage.

The paper prescribes exactly two pre-processing steps before the RBT
distortion: suppress identifiers, then normalize the confidential numerical
attributes.  :class:`PreprocessingPipeline` composes those steps (and keeps
the fitted normalizer around so examples can show why an attacker's attempt
to undo the normalization fails).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data import DataMatrix, Table
from ..exceptions import ValidationError
from .normalization import Normalizer, ZScoreNormalizer
from .suppression import IdentifierSuppressor

__all__ = ["PreprocessingPipeline"]


@dataclass
class PreprocessingPipeline:
    """Suppress identifiers, project to confidential attributes, normalize.

    Parameters
    ----------
    normalizer:
        Any :class:`~repro.preprocessing.Normalizer`; defaults to the
        z-score normalizer the paper uses in its worked example.
    suppressor:
        Identifier suppressor applied first; defaults to schema-based
        suppression with object ids retained.

    Examples
    --------
    >>> from repro.data.datasets import load_cardiac_sample_table
    >>> pipeline = PreprocessingPipeline()
    >>> normalized = pipeline.run_table(load_cardiac_sample_table())
    >>> normalized.columns
    ('age', 'weight', 'heart_rate')
    """

    normalizer: Normalizer = field(default_factory=ZScoreNormalizer)
    suppressor: IdentifierSuppressor = field(default_factory=IdentifierSuppressor)

    def run_table(self, table: Table, *, id_column: str | None = None) -> DataMatrix:
        """Run the full pipeline on a relational :class:`Table`.

        The identifier columns are suppressed, the remaining numeric columns
        are lowered to a :class:`DataMatrix` (optionally keeping ``id_column``
        as the object ids *before* it is suppressed), and the matrix is
        normalized with a freshly fitted copy of :attr:`normalizer`.
        """
        if not isinstance(table, Table):
            raise ValidationError(f"run_table expects a Table, got {type(table).__name__}")
        ids = None
        if id_column is not None:
            if id_column not in table.schema:
                raise ValidationError(f"unknown id column {id_column!r}")
            ids = list(table.column(id_column))
        released = self.suppressor.transform_table(table)
        matrix = released.to_matrix()
        if ids is not None:
            matrix = DataMatrix(matrix.values, columns=matrix.columns, ids=ids)
        return self.run_matrix(matrix)

    def run_matrix(self, matrix: DataMatrix) -> DataMatrix:
        """Run suppression + normalization on a :class:`DataMatrix`."""
        if not isinstance(matrix, DataMatrix):
            raise ValidationError(f"run_matrix expects a DataMatrix, got {type(matrix).__name__}")
        suppressed = self.suppressor.transform_matrix(matrix)
        return self.normalizer.fit(suppressed).transform(suppressed)

    def run(self, data, *, id_column: str | None = None) -> DataMatrix:
        """Dispatch to :meth:`run_table` or :meth:`run_matrix` based on input type."""
        if isinstance(data, Table):
            return self.run_table(data, id_column=id_column)
        if isinstance(data, DataMatrix):
            return self.run_matrix(data)
        raise ValidationError(
            f"PreprocessingPipeline expects a Table or DataMatrix, got {type(data).__name__}"
        )
