"""Identifier suppression (Section 4.1, "Suppressing Identifiers").

Attributes that are not subjected to clustering — names, addresses, phone
numbers, record IDs — are removed from the released data.  Depending on the
application the object identifier may either be retained (the hospital
scenario, where the researcher must report which patients fall in which
group) or suppressed entirely (public releases such as census data), so the
suppressor can be configured either way.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..data import DataMatrix, Table
from ..exceptions import ValidationError

__all__ = ["IdentifierSuppressor", "suppress_identifiers"]


class IdentifierSuppressor:
    """Removes identifier columns (and optionally the object ids) before release.

    Parameters
    ----------
    extra_columns:
        Additional column names to suppress on top of the columns whose
        schema role is :attr:`~repro.data.ColumnRole.IDENTIFIER` (for
        :class:`Table` inputs) — useful when no schema is available.
    drop_object_ids:
        Whether to also strip the :class:`DataMatrix` per-object ``ids``.
        ``True`` matches the "could be suppressed when data is made public"
        branch of the paper's assumption.
    """

    def __init__(
        self,
        extra_columns: Sequence[str] | None = None,
        *,
        drop_object_ids: bool = False,
    ) -> None:
        self.extra_columns = list(extra_columns or [])
        self.drop_object_ids = bool(drop_object_ids)

    def transform_table(self, table: Table) -> Table:
        """Return ``table`` without identifier-role columns and ``extra_columns``."""
        result = table.suppress_identifiers()
        to_drop = [name for name in self.extra_columns if name in result.schema]
        if to_drop:
            result = result.drop_columns(to_drop)
        return result

    def transform_matrix(self, matrix: DataMatrix) -> DataMatrix:
        """Return ``matrix`` without ``extra_columns`` and, optionally, without ids."""
        to_drop = [name for name in self.extra_columns if name in matrix.columns]
        result = matrix.drop(to_drop) if to_drop else matrix
        if self.drop_object_ids:
            result = result.without_ids()
        return result

    def transform(self, data):
        """Dispatch to :meth:`transform_table` or :meth:`transform_matrix`."""
        if isinstance(data, Table):
            return self.transform_table(data)
        if isinstance(data, DataMatrix):
            return self.transform_matrix(data)
        raise ValidationError(
            f"IdentifierSuppressor expects a Table or DataMatrix, got {type(data).__name__}"
        )


def suppress_identifiers(
    data, columns: Iterable[str] | None = None, *, drop_object_ids: bool = False
):
    """One-shot identifier suppression on a :class:`Table` or :class:`DataMatrix`."""
    suppressor = IdentifierSuppressor(list(columns or []), drop_object_ids=drop_object_ids)
    return suppressor.transform(data)
