"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SchemaError",
    "NormalizationError",
    "SecurityRangeError",
    "ThresholdError",
    "PairSelectionError",
    "ClusteringError",
    "ConvergenceError",
    "AttackError",
    "ProtocolError",
    "DatasetError",
    "SerializationError",
    "ExperimentError",
    "BundleError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range or type)."""


class SchemaError(ReproError, ValueError):
    """A table or data matrix violates its declared schema."""


class NormalizationError(ReproError, ValueError):
    """A normalizer could not be fitted or applied.

    Typical causes are constant columns for z-score normalization or a
    degenerate ``min == max`` range for min-max normalization.
    """


class SecurityRangeError(ReproError, ValueError):
    """No rotation angle satisfies the requested pairwise-security threshold.

    Raised by the security-range solver when the variance curves never reach
    the requested thresholds, i.e. the security range is empty.
    """


class ThresholdError(ReproError, ValueError):
    """A pairwise-security threshold is malformed (non-positive or wrong arity)."""


class PairSelectionError(ReproError, ValueError):
    """An attribute-pair selection is invalid (unknown column, self-pair, ...)."""


class ClusteringError(ReproError, ValueError):
    """A clustering algorithm received invalid input or an invalid configuration."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its iteration budget."""


class AttackError(ReproError, RuntimeError):
    """An attack simulation could not be carried out on the supplied data."""


class ProtocolError(ReproError, RuntimeError):
    """A distributed-clustering protocol was driven in an invalid order."""


class DatasetError(ReproError, ValueError):
    """A dataset generator or loader received inconsistent parameters."""


class SerializationError(ReproError, ValueError):
    """A table or matrix could not be serialized or deserialized."""


class ExperimentError(ReproError, ValueError):
    """An experiment spec is invalid or a grid trial could not be executed."""


class BundleError(ReproError, ValueError):
    """A versioned release bundle is missing, torn, drifted or incompatible.

    Raised when a bundle directory fails its manifest/content-hash
    consistency checks, when an append is attempted against an unexpected
    bundle version, or when the appended rows' schema drifts from the
    columns the bundle was created with.
    """
