"""Common interface for baseline perturbation methods."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import as_float_matrix
from ..data import DataMatrix

__all__ = ["PerturbationMethod"]


class PerturbationMethod(ABC):
    """Base class for data-perturbation baselines.

    Subclasses implement :meth:`_perturb_array` on a raw ``(m, n)`` array;
    the base class handles :class:`DataMatrix` wrapping so every baseline and
    RBT can be driven through the same benchmark harness.
    """

    #: Human-readable method name used in benchmark output.
    name: str = "perturbation"

    def perturb(self, data):
        """Perturb ``data`` and return the released version.

        Returns a :class:`DataMatrix` when given one (same columns and ids),
        otherwise a plain array.
        """
        if isinstance(data, DataMatrix):
            return data.with_values(self._perturb_array(data.values.copy()))
        array = as_float_matrix(data, name="data")
        return self._perturb_array(array.copy())

    # Alias so baselines can be swapped where an RBT-style transform is expected.
    def transform(self, data):
        """Alias for :meth:`perturb`."""
        return self.perturb(data)

    @abstractmethod
    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        """Return the perturbed version of ``array``."""
