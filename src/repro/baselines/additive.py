"""Additive-noise data perturbation (the statistical-database baseline).

The classical security-control technique for statistical databases ([1, 9]
in the paper) releases ``Y = X + e`` with ``e`` drawn independently per value
from a zero-mean distribution.  The security level is ``Var(e)``, exactly the
``Var(X − Y)`` measure RBT also reports — but unlike RBT the added noise is
not an isometry, so pairwise distances change and points near cluster
boundaries get misclassified.  The benchmark
``bench_baseline_misclassification`` sweeps ``noise_scale`` to reproduce that
trade-off.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng
from ..exceptions import ValidationError
from .base import PerturbationMethod

__all__ = ["AdditiveNoisePerturbation"]


class AdditiveNoisePerturbation(PerturbationMethod):
    """Release ``Y = X + e`` with i.i.d. zero-mean noise.

    Parameters
    ----------
    noise_scale:
        Standard deviation of the noise (uniform half-width when
        ``distribution="uniform"``).  This is the privacy/accuracy knob.
    distribution:
        ``"gaussian"`` (default) or ``"uniform"``.
    random_state:
        Seed / generator for reproducibility.
    """

    name = "additive_noise"

    def __init__(
        self,
        noise_scale: float = 0.1,
        *,
        distribution: str = "gaussian",
        random_state=None,
    ) -> None:
        self.noise_scale = check_positive(noise_scale, name="noise_scale")
        if distribution not in ("gaussian", "uniform"):
            raise ValidationError(
                f"distribution must be 'gaussian' or 'uniform', got {distribution!r}"
            )
        self.distribution = distribution
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        rng = ensure_rng(self.random_state)
        if self.distribution == "gaussian":
            noise = rng.normal(scale=self.noise_scale, size=array.shape)
        else:
            half_width = self.noise_scale * np.sqrt(3.0)  # same variance as the gaussian case
            noise = rng.uniform(-half_width, half_width, size=array.shape)
        return array + noise
