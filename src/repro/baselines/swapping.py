"""Value-swapping perturbation (classical data swapping).

Data swapping exchanges attribute values between records so the marginal
distribution of every attribute is exactly preserved while record-level
values are scrambled.  Marginals are perfect but the *joint* structure — and
with it the cluster structure — degrades as the swap fraction grows, which
makes swapping a useful third point of comparison between RBT (structure
preserved exactly) and additive noise (structure degraded smoothly).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_probability, ensure_rng
from .base import PerturbationMethod

__all__ = ["ValueSwappingPerturbation"]


class ValueSwappingPerturbation(PerturbationMethod):
    """Randomly swap a fraction of the values within every attribute.

    Parameters
    ----------
    swap_fraction:
        Fraction of rows whose value is exchanged with another row's value,
        per attribute (0 = release unchanged, 1 = a full random permutation
        of every column).
    random_state:
        Seed / generator for reproducibility.
    """

    name = "value_swapping"

    def __init__(self, swap_fraction: float = 0.2, *, random_state=None) -> None:
        self.swap_fraction = check_probability(swap_fraction, name="swap_fraction")
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        rng = ensure_rng(self.random_state)
        result = array.copy()
        n_objects = array.shape[0]
        n_to_swap = int(round(self.swap_fraction * n_objects))
        if n_to_swap < 2:
            return result
        for column in range(array.shape[1]):
            chosen = rng.choice(n_objects, size=n_to_swap, replace=False)
            # A uniform permutation of the chosen rows leaves ~1 fixed point
            # in expectation (and more by chance), so the realized swap
            # fraction would fall systematically below ``swap_fraction``.
            # Cycling the randomly ordered subset is a fixed-point-free
            # permutation (a uniform random cycle on the chosen rows), so
            # every chosen row receives another chosen row's value.
            result[chosen, column] = array[np.roll(chosen, 1), column]
        return result
