"""Multiplicative-noise data perturbation.

A classical alternative to additive noise: each value is multiplied by an
independent random factor close to 1 (``Y = X * (1 + e)``).  Like additive
noise it is not distance-preserving, and — because the distortion scales with
the magnitude of the value — it disproportionately moves the points far from
the origin, making the misclassification problem worse for spread-out
clusters.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng
from .base import PerturbationMethod

__all__ = ["MultiplicativeNoisePerturbation"]


class MultiplicativeNoisePerturbation(PerturbationMethod):
    """Release ``Y = X * (1 + e)`` with i.i.d. zero-mean Gaussian ``e``.

    Parameters
    ----------
    noise_scale:
        Standard deviation of the multiplicative factor ``e``.
    random_state:
        Seed / generator for reproducibility.
    """

    name = "multiplicative_noise"

    def __init__(self, noise_scale: float = 0.1, *, random_state=None) -> None:
        self.noise_scale = check_positive(noise_scale, name="noise_scale")
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        rng = ensure_rng(self.random_state)
        factors = 1.0 + rng.normal(scale=self.noise_scale, size=array.shape)
        return array * factors
