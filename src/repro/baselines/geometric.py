"""Geometric data-transformation baselines from the authors' earlier work [10].

The paper's predecessor ("Privacy Preserving Clustering By Data
Transformation", SBBD 2003) distorted data with a family of geometric
transformations — translations, scalings and a single rotation — applied to
the raw (un-normalized) attributes.  Its key finding, restated in Section 2,
is that these transformations "are unfeasible for privacy-preserving
clustering if we do not consider the normalization of the data before
transformation": per-attribute translations and scalings change the relative
weights of the attributes and therefore the similarity between points.

These baselines exist so the benchmarks can demonstrate that finding:

* :class:`TranslationPerturbation` — adds a per-attribute constant.
* :class:`ScalingPerturbation` — multiplies each attribute by a constant.
* :class:`SimpleRotationPerturbation` — one fixed-angle rotation of every
  consecutive attribute pair (no security range, no per-pair thresholds); on
  normalized data this is distance-preserving but offers *no quantified
  security guarantee*, which is precisely the gap RBT's pairwise-security
  threshold fills.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng
from ..core.rotation import rotate_pair
from ..exceptions import ValidationError
from .base import PerturbationMethod

__all__ = [
    "TranslationPerturbation",
    "ScalingPerturbation",
    "SimpleRotationPerturbation",
]


class TranslationPerturbation(PerturbationMethod):
    """Shift every attribute by a (random or given) constant.

    Parameters
    ----------
    offsets:
        Per-attribute offsets.  When ``None`` they are drawn uniformly from
        ``[-max_offset, max_offset]`` per attribute.
    max_offset:
        Half-width of the random offset range.
    random_state:
        Seed / generator for reproducibility.
    """

    name = "translation"

    def __init__(self, offsets=None, *, max_offset: float = 10.0, random_state=None) -> None:
        self.offsets = None if offsets is None else np.asarray(offsets, dtype=float).ravel()
        self.max_offset = check_positive(max_offset, name="max_offset")
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        offsets = self.offsets
        if offsets is None:
            rng = ensure_rng(self.random_state)
            offsets = rng.uniform(-self.max_offset, self.max_offset, size=array.shape[1])
        elif offsets.size != array.shape[1]:
            raise ValidationError(
                f"expected {array.shape[1]} offset(s), got {offsets.size}"
            )
        return array + offsets


class ScalingPerturbation(PerturbationMethod):
    """Multiply every attribute by a (random or given) positive constant.

    Parameters
    ----------
    factors:
        Per-attribute scale factors.  When ``None`` they are drawn uniformly
        from ``[min_factor, max_factor]``.
    min_factor, max_factor:
        Range for random factors.
    random_state:
        Seed / generator for reproducibility.
    """

    name = "scaling"

    def __init__(
        self,
        factors=None,
        *,
        min_factor: float = 0.5,
        max_factor: float = 3.0,
        random_state=None,
    ) -> None:
        self.factors = None if factors is None else np.asarray(factors, dtype=float).ravel()
        self.min_factor = check_positive(min_factor, name="min_factor")
        self.max_factor = check_positive(max_factor, name="max_factor")
        if self.min_factor >= self.max_factor:
            raise ValidationError(
                f"min_factor must be smaller than max_factor, got {min_factor} >= {max_factor}"
            )
        if self.factors is not None and np.any(self.factors <= 0):
            raise ValidationError("scaling factors must be strictly positive")
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        factors = self.factors
        if factors is None:
            rng = ensure_rng(self.random_state)
            factors = rng.uniform(self.min_factor, self.max_factor, size=array.shape[1])
        elif factors.size != array.shape[1]:
            raise ValidationError(f"expected {array.shape[1]} factor(s), got {factors.size}")
        return array * factors


class SimpleRotationPerturbation(PerturbationMethod):
    """Rotate every consecutive attribute pair by one fixed angle.

    This is the "simple rotation" of the prior work: a single angle, no
    per-pair security range, applied to consecutive pairs ``(0,1), (2,3),
    ...`` (a trailing odd attribute is left unchanged).  It preserves
    distances just like RBT but provides no mechanism to guarantee a privacy
    level — the achieved ``Var(X − X')`` is whatever the fixed angle happens
    to give.

    Parameters
    ----------
    theta_degrees:
        Rotation angle; when ``None`` one angle is drawn uniformly from
        (0°, 360°).
    random_state:
        Seed / generator for the random-angle case.
    """

    name = "simple_rotation"

    def __init__(self, theta_degrees: float | None = 45.0, *, random_state=None) -> None:
        self.theta_degrees = None if theta_degrees is None else float(theta_degrees)
        self.random_state = random_state

    def _perturb_array(self, array: np.ndarray) -> np.ndarray:
        theta = self.theta_degrees
        if theta is None:
            rng = ensure_rng(self.random_state)
            theta = float(rng.uniform(0.0, 360.0))
        result = array.copy()
        for first in range(0, array.shape[1] - 1, 2):
            rotated_i, rotated_j = rotate_pair(array[:, first], array[:, first + 1], theta)
            result[:, first] = rotated_i
            result[:, first + 1] = rotated_j
        return result
