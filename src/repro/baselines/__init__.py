"""Baseline perturbation methods from the prior work the paper compares against.

The paper motivates RBT by arguing that the classical data-distortion
techniques either destroy the clustering structure (misclassification) or
provide no privacy.  This package implements those comparators so the
benchmarks can reproduce the comparison:

* :class:`AdditiveNoisePerturbation` — the additive-noise family of
  statistical-database security ([1, 9] in the paper; also the method whose
  misclassification problem was the key finding of the authors' earlier
  work [10]).
* :class:`MultiplicativeNoisePerturbation` — multiplicative noise variant.
* :class:`TranslationPerturbation`, :class:`ScalingPerturbation`,
  :class:`SimpleRotationPerturbation` — the geometric transformation family
  studied in [10] (translation / scaling / a single global rotation applied
  to *un-normalized* data, which changes similarity between points unless the
  data is normalized first).
* :class:`ValueSwappingPerturbation` — classical data swapping.

Every baseline implements the same ``perturb(matrix) -> DataMatrix``
interface and accepts a ``random_state`` for reproducibility.
"""

from .additive import AdditiveNoisePerturbation
from .base import PerturbationMethod
from .geometric import (
    ScalingPerturbation,
    SimpleRotationPerturbation,
    TranslationPerturbation,
)
from .multiplicative import MultiplicativeNoisePerturbation
from .swapping import ValueSwappingPerturbation

__all__ = [
    "PerturbationMethod",
    "AdditiveNoisePerturbation",
    "MultiplicativeNoisePerturbation",
    "TranslationPerturbation",
    "ScalingPerturbation",
    "SimpleRotationPerturbation",
    "ValueSwappingPerturbation",
]
