"""The formal attack contract: protocol, result container, error measures.

Every attack in :mod:`repro.attacks` implements the :class:`Attack` protocol:
a ``name``, and a ``run(released, original=None)`` returning an
:class:`AttackResult`.  The result is a hardened, immutable record —

* ``work`` counts the hypotheses the attacker scored (the paper's
  Section 5.2 "amount of computational work" argument made measurable),
* ``succeeded`` is the breach flag under the attack's own tolerance,
* ``per_attribute_errors`` carries the per-attribute RMSE profile, and
* every array reachable from the result (``per_attribute_errors`` and any
  ndarray inside ``details``) is stored as a read-only copy, so no caller
  can mutate evidence another consumer is still holding (the same policy
  the clustering layer applies to its metadata).

Determinism contract: attacks that consume randomness accept an explicit
``random_state`` and derive every draw from it, so identical seeds give
identical :class:`AttackResult` objects across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import as_float_matrix
from ..data import DataMatrix
from ..exceptions import ValidationError

__all__ = [
    "Attack",
    "AttackResult",
    "reconstruction_error",
    "per_attribute_reconstruction_error",
    "distance_change_diagnostics",
]


def reconstruction_error(original, reconstructed) -> float:
    """Root-mean-square error between the true data and an attacker's reconstruction."""
    original = as_float_matrix(original, name="original")
    reconstructed = as_float_matrix(reconstructed, name="reconstructed")
    if original.shape != reconstructed.shape:
        raise ValidationError(
            f"original and reconstructed must have the same shape, got {original.shape} and {reconstructed.shape}"
        )
    return float(np.sqrt(np.mean((original - reconstructed) ** 2)))


def per_attribute_reconstruction_error(original, reconstructed) -> np.ndarray:
    """Per-attribute RMSE between the true data and a reconstruction."""
    original = as_float_matrix(original, name="original")
    reconstructed = as_float_matrix(reconstructed, name="reconstructed")
    if original.shape != reconstructed.shape:
        raise ValidationError(
            f"original and reconstructed must have the same shape, got {original.shape} and {reconstructed.shape}"
        )
    return np.sqrt(np.mean((original - reconstructed) ** 2, axis=0))


def distance_change_diagnostics(
    original_values,
    reconstruction_values,
    *,
    distance_cache=None,
    atol: float = 1e-6,
) -> dict:
    """The paper's Table 5 diagnostic: does the attack preserve the distances?

    Returns ``max_distance_change`` (the worst ``|d − d'|`` between the true
    dissimilarity matrix and the reconstruction's) and a boolean
    ``distances_preserved``.  When a :class:`~repro.perf.cache.DistanceCache`
    is supplied, the original's matrix is fetched through it, so an attack
    suite running several attacks against the same data computes it once;
    the numbers are byte-identical either way (the cache uses the same
    chunked kernel).
    """
    from ..metrics.distance import dissimilarity_matrix

    if distance_cache is not None:
        original_distances = distance_cache.pairwise(original_values)
    else:
        original_distances = dissimilarity_matrix(original_values)
    attacked_distances = dissimilarity_matrix(reconstruction_values)
    return {
        "max_distance_change": float(np.max(np.abs(original_distances - attacked_distances))),
        "distances_preserved": bool(
            np.allclose(original_distances, attacked_distances, atol=atol)
        ),
    }


def _frozen_array(values) -> np.ndarray:
    array = np.array(values, dtype=float)
    array.setflags(write=False)
    return array


def _freeze(value):
    """Deep-copy ``value``, turning every ndarray into a read-only copy."""
    if isinstance(value, np.ndarray):
        frozen = value.copy()
        frozen.setflags(write=False)
        return frozen
    if isinstance(value, dict):
        return {key: _freeze(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_freeze(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_freeze(item) for item in value)
    return value


@runtime_checkable
class Attack(Protocol):
    """What the registry, the suite runner and the experiments grid require.

    ``original`` is the defender's ground truth; attacks that can run
    without it (everything except the known-sample adversary) report
    ``error = nan`` and ``succeeded = False`` when it is omitted.
    """

    name: str

    def run(
        self, released: DataMatrix, original: DataMatrix | None = None
    ) -> AttackResult:  # pragma: no cover - protocol signature only
        ...


@dataclass(frozen=True)
class AttackResult:
    """Outcome of an attack simulation.

    Attributes
    ----------
    name:
        Attack name.
    reconstruction:
        The attacker's best reconstruction of the original (normalized) data.
    error:
        RMSE between the reconstruction and the true original data (only
        computable in simulation, where the evaluator holds the truth).
    succeeded:
        Breach flag: whether the attack is judged successful under its own
        criterion (e.g. error below a tolerance).
    work:
        A measure of attacker effort (number of candidate hypotheses scored).
    per_attribute_errors:
        Per-attribute RMSE profile of the reconstruction (``None`` without
        ground truth).  Stored as a read-only array.
    details:
        Attack-specific extras (best angle, best pairing, distance
        diagnostics).  Arrays inside are stored as read-only copies.
    """

    name: str
    reconstruction: DataMatrix
    error: float
    succeeded: bool
    work: int = 0
    per_attribute_errors: np.ndarray | None = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Mutability hardening: everything array-like the result exposes is a
        # read-only copy, so callers cannot corrupt shared evidence.
        if self.per_attribute_errors is not None:
            object.__setattr__(
                self, "per_attribute_errors", _frozen_array(self.per_attribute_errors)
            )
        object.__setattr__(self, "details", _freeze(self.details))

    def summary(self) -> dict:
        """A JSON-friendly summary (reconstruction and array details omitted)."""
        return {
            "name": self.name,
            "error": None if np.isnan(self.error) else float(self.error),
            "succeeded": bool(self.succeeded),
            "work": int(self.work),
            "per_attribute_errors": (
                None
                if self.per_attribute_errors is None
                else [float(value) for value in self.per_attribute_errors]
            ),
        }
