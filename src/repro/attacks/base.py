"""Shared attack-result container and reconstruction-error measures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_matrix
from ..data import DataMatrix
from ..exceptions import ValidationError

__all__ = ["AttackResult", "reconstruction_error", "per_attribute_reconstruction_error"]


def reconstruction_error(original, reconstructed) -> float:
    """Root-mean-square error between the true data and an attacker's reconstruction."""
    original = as_float_matrix(original, name="original")
    reconstructed = as_float_matrix(reconstructed, name="reconstructed")
    if original.shape != reconstructed.shape:
        raise ValidationError(
            f"original and reconstructed must have the same shape, got {original.shape} and {reconstructed.shape}"
        )
    return float(np.sqrt(np.mean((original - reconstructed) ** 2)))


def per_attribute_reconstruction_error(original, reconstructed) -> np.ndarray:
    """Per-attribute RMSE between the true data and a reconstruction."""
    original = as_float_matrix(original, name="original")
    reconstructed = as_float_matrix(reconstructed, name="reconstructed")
    if original.shape != reconstructed.shape:
        raise ValidationError(
            f"original and reconstructed must have the same shape, got {original.shape} and {reconstructed.shape}"
        )
    return np.sqrt(np.mean((original - reconstructed) ** 2, axis=0))


@dataclass(frozen=True)
class AttackResult:
    """Outcome of an attack simulation.

    Attributes
    ----------
    name:
        Attack name.
    reconstruction:
        The attacker's best reconstruction of the original (normalized) data.
    error:
        RMSE between the reconstruction and the true original data (only
        computable in simulation, where the evaluator holds the truth).
    succeeded:
        Whether the attack is judged successful under its own criterion
        (e.g. error below a tolerance).
    work:
        A measure of attacker effort (number of candidate hypotheses scored).
    details:
        Attack-specific extras (best angle, best pairing, per-attribute error).
    """

    name: str
    reconstruction: DataMatrix
    error: float
    succeeded: bool
    work: int = 0
    details: dict = field(default_factory=dict)
