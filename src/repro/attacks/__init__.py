"""Attack simulations for the computational-security analysis of Section 5.2.

The paper argues that RBT's security rests on the computational work needed
to reverse the transformation: the attacker does not know the attribute
pairing, the order inside each pair, the thresholds, or the (real-valued)
angles.  This package makes that argument executable:

* :class:`RenormalizationAttack` — the attack the paper itself analyses
  (Table 5): re-normalize the released data hoping to undo the rotation; the
  result's dissimilarity matrix no longer matches the original, so the
  attempt fails.
* :class:`BruteForceAngleAttack` — grid search over pairings and angles,
  scoring candidate inversions against reference statistics the attacker may
  know; quantifies the "amount of computational work" argument.
* :class:`VarianceFingerprintAttack` — uses the fact that the attacker may
  know the original (normalized) per-attribute variances; tries to find a
  rotation that restores them.
* :class:`KnownSampleAttack` — a stronger adversary that knows a subset of
  original records and regresses the rotation matrix from them (the style of
  attack later shown, in follow-up literature, to break rotation
  perturbation; included to make the library honest about RBT's limits).

All attacks return an :class:`AttackResult` with the reconstruction and
error measures, so benchmarks can compare attacker effort vs. success.
"""

from .base import AttackResult, reconstruction_error, per_attribute_reconstruction_error
from .renormalization import RenormalizationAttack
from .brute_force import BruteForceAngleAttack
from .variance_fingerprint import VarianceFingerprintAttack
from .known_sample import KnownSampleAttack

__all__ = [
    "AttackResult",
    "reconstruction_error",
    "per_attribute_reconstruction_error",
    "RenormalizationAttack",
    "BruteForceAngleAttack",
    "VarianceFingerprintAttack",
    "KnownSampleAttack",
]
