"""Attack simulations for the computational-security analysis of Section 5.2.

The paper argues that RBT's security rests on the computational work needed
to reverse the transformation: the attacker does not know the attribute
pairing, the order inside each pair, the thresholds, or the (real-valued)
angles.  This package makes that argument executable:

* :class:`RenormalizationAttack` — the attack the paper itself analyses
  (Table 5): re-normalize the released data hoping to undo the rotation; the
  result's dissimilarity matrix no longer matches the original, so the
  attempt fails.
* :class:`BruteForceAngleAttack` — grid search over pairings and angles,
  scoring candidate inversions against reference statistics the attacker may
  know; quantifies the "amount of computational work" argument.
* :class:`VarianceFingerprintAttack` — uses the fact that the attacker may
  know the original (normalized) per-attribute variances; tries to find a
  rotation that restores them.
* :class:`KnownSampleAttack` — a stronger adversary that knows a subset of
  original records and regresses the rotation matrix from them (the style of
  attack later shown, in follow-up literature, to break rotation
  perturbation; included to make the library honest about RBT's limits).
* :class:`SequentialReleaseAttack` — an observer of a *versioned* release
  (the frozen-policy appends of :mod:`repro.pipeline.versioned`) intersects
  the angle hypotheses admissible under every release prefix, measuring how
  much the version history shrinks the effective security range.

Every attack implements the :class:`Attack` protocol and returns an
immutable :class:`AttackResult`; :mod:`repro.attacks.registry` resolves
attacks by name (for threat models, the experiments grid and the ``repro
audit`` CLI), and :mod:`repro.attacks.streamed` re-expresses the attacks as
moment-space plans so a streamed release can be audited without ever
materializing it.
"""

from .base import (
    Attack,
    AttackResult,
    distance_change_diagnostics,
    per_attribute_reconstruction_error,
    reconstruction_error,
)
from .brute_force import BruteForceAngleAttack
from .known_sample import KnownSampleAttack
from .registry import available_attacks, build_attack, register_attack
from .renormalization import RenormalizationAttack
from .sequential import SequentialReleaseAttack
from .streamed import LinearReconstruction, MomentSketch, plan_attack, plan_known_sample
from .variance_fingerprint import VarianceFingerprintAttack

__all__ = [
    "Attack",
    "AttackResult",
    "BruteForceAngleAttack",
    "KnownSampleAttack",
    "LinearReconstruction",
    "MomentSketch",
    "RenormalizationAttack",
    "SequentialReleaseAttack",
    "VarianceFingerprintAttack",
    "available_attacks",
    "build_attack",
    "distance_change_diagnostics",
    "per_attribute_reconstruction_error",
    "plan_attack",
    "plan_known_sample",
    "reconstruction_error",
    "register_attack",
]
