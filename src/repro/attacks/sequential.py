"""Sequential-release attack: do versioned releases leak the rotation angles?

A versioned release bundle (:mod:`repro.pipeline.versioned`) publishes
releases v1..vK of the *same* frozen rotation over a growing feed, and the
releases are append-only — release v*k* is exactly the first
``version_rows[k-1]`` rows of the current release.  An observer who kept
every version therefore holds K correlated views of one secret: the
per-version *prefix moments* of the released columns.

This attack quantifies how much that helps.  For every unordered column
pair and candidate angle θ it computes, analytically from the prefix
moments, the variances the un-rotated columns would have had::

    Var(x_i) =  cos²θ·V_i + sin²θ·V_j + 2·cosθ·sinθ·C_ij
    Var(x_j) =  sin²θ·V_i + cos²θ·V_j − 2·cosθ·sinθ·C_ij

(the inverse rotation applied in moment space).  Angles whose implied
variances land within ``variance_tolerance`` of the normalized target (1)
are *admissible* for that version.  Each extra version is an independent
finite-sample draw of the same constraint, so intersecting the admissible
sets across versions shrinks the attacker's effective angle range — the
``range_shrink`` this attack reports is the factor by which observing
v1..vK narrows the hypothesis space relative to seeing only the final
release.  The attack then un-rotates the most-pinned non-overlapping pairs
at their best intersected angle and scores the reconstruction.

The attack is fully deterministic (the grid, the intersection and the
greedy selection involve no randomness); ``random_state`` is accepted for
registry uniformity only.  It needs the actual release prefixes' moments,
which a single moment sketch of the final release cannot provide, so it is
dense-engine only — the streamed audit planner rejects it.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_integer_in_range
from ..data import DataMatrix
from ..exceptions import AttackError
from .base import AttackResult, per_attribute_reconstruction_error, reconstruction_error

__all__ = ["SequentialReleaseAttack"]


class SequentialReleaseAttack:
    """Intersect per-version admissible angles, then un-rotate the pinned pairs.

    Parameters
    ----------
    version_rows:
        Cumulative row counts of the observed releases (e.g. the bundle's
        ``version_rows()``); release v*k* is the first ``version_rows[k-1]``
        rows.  Defaults to a single version covering all rows, which
        degrades the attack to a one-shot variance test.
    angle_resolution:
        Number of candidate angles on the grid.
    success_tolerance:
        RMSE below which the reconstruction counts as a breach.
    variance_tolerance:
        How close an implied un-rotated variance must come to the
        normalized target (1) for the angle to stay admissible.
    random_state:
        Accepted for registry uniformity; the attack is deterministic and
        never draws from it.
    """

    name = "sequential_release"

    def __init__(
        self,
        version_rows=None,
        *,
        angle_resolution: int = 720,
        success_tolerance: float = 0.1,
        variance_tolerance: float = 0.1,
        random_state=None,
    ) -> None:
        self.version_rows = (
            None if version_rows is None else [int(rows) for rows in version_rows]
        )
        self.angle_resolution = check_integer_in_range(
            angle_resolution, name="angle_resolution", minimum=4
        )
        self.success_tolerance = float(success_tolerance)
        self.variance_tolerance = float(variance_tolerance)
        if self.variance_tolerance <= 0.0:
            raise AttackError(
                f"variance_tolerance must be > 0, got {self.variance_tolerance}"
            )
        self.random_state = random_state

    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``; ``original`` is used only for scoring."""
        if not isinstance(released, DataMatrix):
            raise AttackError("SequentialReleaseAttack expects the released DataMatrix")
        values = np.asarray(released.values, dtype=float)
        n_rows, n_attributes = values.shape
        if n_attributes < 2:
            raise AttackError("sequential_release needs at least two released attributes")
        version_rows = self._checked_version_rows(n_rows)

        theta = np.linspace(0.0, 360.0, self.angle_resolution, endpoint=False)
        cos, sin = np.cos(np.radians(theta)), np.sin(np.radians(theta))
        # Per-version prefix covariance matrices (the attacker's whole view).
        prefix_cov = [
            np.cov(values[:rows], rowvar=False, ddof=1) for rows in version_rows
        ]

        pairs: list[dict] = []
        work = 0
        for index_i, index_j in combinations(range(n_attributes), 2):
            admissible = np.ones(theta.size, dtype=bool)
            per_version_counts: list[int] = []
            final_mask = None
            for cov in prefix_cov:
                variance_i, variance_j = cov[index_i, index_i], cov[index_j, index_j]
                covariance = cov[index_i, index_j]
                implied_i = (
                    cos**2 * variance_i + sin**2 * variance_j + 2.0 * cos * sin * covariance
                )
                implied_j = (
                    sin**2 * variance_i + cos**2 * variance_j - 2.0 * cos * sin * covariance
                )
                mask = (np.abs(implied_i - 1.0) <= self.variance_tolerance) & (
                    np.abs(implied_j - 1.0) <= self.variance_tolerance
                )
                admissible &= mask
                per_version_counts.append(int(mask.sum()))
                final_mask = mask
                work += theta.size
            final_count = per_version_counts[-1]
            intersected = int(admissible.sum())
            best_theta = None
            if intersected:
                # Pin the angle with the final (largest-sample) prefix: among
                # the intersected candidates, minimize the implied-variance
                # profile error against the normalized target.
                cov = prefix_cov[-1]
                variance_i, variance_j = cov[index_i, index_i], cov[index_j, index_j]
                covariance = cov[index_i, index_j]
                implied_i = (
                    cos**2 * variance_i + sin**2 * variance_j + 2.0 * cos * sin * covariance
                )
                implied_j = (
                    sin**2 * variance_i + cos**2 * variance_j - 2.0 * cos * sin * covariance
                )
                profile = (implied_i - 1.0) ** 2 + (implied_j - 1.0) ** 2
                profile = np.where(admissible, profile, np.inf)
                best_theta = float(theta[int(np.argmin(profile))])
            pairs.append(
                {
                    "pair": (index_i, index_j),
                    "admissible_per_version": per_version_counts,
                    "admissible_final": final_count,
                    "admissible_intersected": intersected,
                    "theta_degrees": best_theta,
                }
            )
            del final_mask

        # Effective security range before/after using the version history: the
        # admissible fraction of the grid, summed over pairs the final release
        # alone leaves open.
        measure_final = sum(entry["admissible_final"] for entry in pairs)
        measure_intersected = sum(entry["admissible_intersected"] for entry in pairs)
        range_shrink = (
            float(measure_intersected) / float(measure_final) if measure_final else 1.0
        )

        # Greedy un-rotation: most-pinned pairs first, never reusing a column,
        # skipping pairs whose version history is inconsistent (empty
        # intersection: the columns were not rotated together by one frozen
        # angle, or the tolerance is too tight).
        candidate = values.copy()
        taken: set[int] = set()
        applied: list[dict] = []
        order = sorted(
            (entry for entry in pairs if entry["admissible_intersected"]),
            key=lambda entry: (entry["admissible_intersected"], entry["pair"]),
        )
        for entry in order:
            index_i, index_j = entry["pair"]
            if index_i in taken or index_j in taken:
                continue
            angle = np.radians(entry["theta_degrees"])
            # x = R(−θ)·r for R(θ) = [[cosθ, −sinθ], [sinθ, cosθ]].
            column_i = candidate[:, index_i].copy()
            column_j = candidate[:, index_j].copy()
            candidate[:, index_i] = np.cos(angle) * column_i + np.sin(angle) * column_j
            candidate[:, index_j] = -np.sin(angle) * column_i + np.cos(angle) * column_j
            taken.update((index_i, index_j))
            applied.append(
                {"pair": [index_i, index_j], "theta_degrees": entry["theta_degrees"]}
            )

        reconstruction = released.with_values(candidate)
        error = float("nan")
        succeeded = False
        per_attribute = None
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            per_attribute = per_attribute_reconstruction_error(
                original.values, reconstruction.values
            )
            succeeded = error <= self.success_tolerance
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=work,
            per_attribute_errors=per_attribute,
            details={
                "version_rows": list(version_rows),
                "n_versions": len(version_rows),
                "pairs": [
                    {
                        "pair": list(entry["pair"]),
                        "admissible_per_version": entry["admissible_per_version"],
                        "admissible_intersected": entry["admissible_intersected"],
                        "theta_degrees": entry["theta_degrees"],
                    }
                    for entry in pairs
                ],
                "applied_rotations": applied,
                "effective_measure_final": measure_final,
                "effective_measure_intersected": measure_intersected,
                "range_shrink": range_shrink,
            },
        )

    def _checked_version_rows(self, n_rows: int) -> list[int]:
        if self.version_rows is None:
            return [n_rows]
        version_rows = self.version_rows
        if not version_rows:
            raise AttackError("version_rows must name at least one release")
        previous = 0
        for rows in version_rows:
            if rows <= previous:
                raise AttackError(
                    f"version_rows must be strictly increasing and positive, got {version_rows}"
                )
            previous = rows
        if version_rows[-1] != n_rows:
            raise AttackError(
                f"version_rows[-1] must equal the released row count {n_rows}, "
                f"got {version_rows[-1]} (the final version IS the released matrix)"
            )
        if version_rows[0] < 2:
            raise AttackError("the first release must have at least 2 rows")
        return list(version_rows)
