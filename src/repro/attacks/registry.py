"""Name → factory registry for the attack simulations.

Mirrors :mod:`repro.experiments.registry`: a threat model, an experiment
grid or the ``repro audit`` CLI names attacks as strings plus keyword
parameters, and this module resolves them against the implementations —
with the same misspelling protection (unknown parameter names are rejected
instead of silently ignored) and the same extension hook
(:func:`register_attack`).

Seeding convention: every factory receives one ``random_state`` which it
threads into the built attack, so a suite seeded once builds attacks whose
randomness (the brute-force pairing sampling, the known-sample record
draw) is reproducible bit-for-bit across runs and processes.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..exceptions import AttackError
from .brute_force import BruteForceAngleAttack
from .known_sample import KnownSampleAttack
from .renormalization import RenormalizationAttack
from .sequential import SequentialReleaseAttack
from .variance_fingerprint import VarianceFingerprintAttack

__all__ = [
    "available_attacks",
    "build_attack",
    "register_attack",
]


def _take(params: dict, allowed: tuple[str, ...], *, context: str) -> dict:
    """Copy ``params``, rejecting keys the target constructor would not see."""
    unknown = set(params) - set(allowed)
    if unknown:
        raise AttackError(
            f"{context}: unknown params {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    return dict(params)


def _build_renormalization(params: dict, random_state):
    params = _take(
        params, ("ddof", "success_tolerance"), context="attack 'renormalization'"
    )
    return RenormalizationAttack(random_state=random_state, **params)


def _build_brute_force(params: dict, random_state):
    params = _take(
        params,
        (
            "angle_resolution",
            "max_pairings",
            "success_tolerance",
            "sample_pairings",
            "memory_budget_bytes",
            "known_correlation",
        ),
        context="attack 'brute_force_angle'",
    )
    if params.get("known_correlation") is not None:
        params["known_correlation"] = np.asarray(params["known_correlation"], dtype=float)
    return BruteForceAngleAttack(random_state=random_state, **params)


def _build_variance_fingerprint(params: dict, random_state):
    params = _take(
        params,
        (
            "known_variances",
            "angle_resolution",
            "success_tolerance",
            "scoring",
            "memory_budget_bytes",
        ),
        context="attack 'variance_fingerprint'",
    )
    return VarianceFingerprintAttack(random_state=random_state, **params)


def _build_sequential_release(params: dict, random_state):
    params = _take(
        params,
        (
            "version_rows",
            "angle_resolution",
            "success_tolerance",
            "variance_tolerance",
        ),
        context="attack 'sequential_release'",
    )
    return SequentialReleaseAttack(random_state=random_state, **params)


def _build_known_sample(params: dict, random_state):
    params = _take(
        params,
        (
            "known_indices",
            "n_known",
            "index_ranges",
            "project_to_orthogonal",
            "success_tolerance",
            "check_distances",
        ),
        context="attack 'known_sample'",
    )
    if params.get("index_ranges") is not None:
        params["index_ranges"] = [
            (int(start), int(stop)) for start, stop in params["index_ranges"]
        ]
    if not any(key in params for key in ("known_indices", "n_known", "index_ranges")):
        params["n_known"] = 8
    return KnownSampleAttack(random_state=random_state, **params)


_ATTACKS: dict[str, Callable] = {
    "renormalization": _build_renormalization,
    "brute_force_angle": _build_brute_force,
    "variance_fingerprint": _build_variance_fingerprint,
    "known_sample": _build_known_sample,
    "sequential_release": _build_sequential_release,
}


def build_attack(name: str, params: dict | None = None, *, random_state=None):
    """Build attack ``name`` with ``params`` and the given seed."""
    try:
        factory = _ATTACKS[name]
    except KeyError:
        known = ", ".join(sorted(_ATTACKS))
        raise AttackError(f"unknown attack {name!r}; known: {known}") from None
    try:
        return factory(dict(params or {}), random_state)
    except TypeError as exc:
        raise AttackError(f"attack {name!r}: bad params {params}: {exc}") from exc


def register_attack(name: str, factory: Callable) -> None:
    """Register ``factory(params, random_state) -> Attack`` under ``name``."""
    _ATTACKS[name] = factory


def available_attacks() -> tuple[str, ...]:
    """Sorted names of the registered attacks."""
    return tuple(sorted(_ATTACKS))
