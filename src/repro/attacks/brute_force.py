"""Brute-force search over pairings and rotation angles (Section 5.2).

The paper bases RBT's security on the computational work an attacker must
spend: the pairing of attributes, the order within each pair, and the
real-valued angle of every pair are all unknown.  This attack makes that
work measurable.  The attacker

1. enumerates candidate attribute pairings (optionally capped, and
   optionally *sampled* from the factorial space with a seeded rng),
2. for each pairing, grid-searches the rotation angle of every pair,
3. scores each candidate inversion against reference statistics assumed to
   be public — by default the fact that the original normalized data has
   unit variance and zero mean per attribute, optionally a known correlation
   matrix —
4. and returns the best-scoring reconstruction.

The returned ``work`` field counts the number of candidate hypotheses that
were scored, which grows as ``O(pairings x resolution^k)``; the benchmark
``bench_security_audit`` uses it to show how the attack cost explodes with
the number of attributes while the attack error stays high.

The angle grid is evaluated through
:func:`~repro.perf.kernels.batched_inverse_rotations` in blocks sized by
``memory_budget_bytes``, so peak memory is bounded by the budget instead of
``O(resolution × m)``.  Each angle's restoration and score depend only on
that angle's rows, and the running minimum keeps the first-occurrence
tie-break of a sequential scan, so the blocked search is **bitwise equal**
to scoring the whole grid at once (tests assert this down to 1-angle
blocks).
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..data import DataMatrix
from ..exceptions import AttackError
from ..perf.kernels import best_inverse_rotation
from .base import AttackResult, per_attribute_reconstruction_error, reconstruction_error

__all__ = ["BruteForceAngleAttack"]


class BruteForceAngleAttack:
    """Grid search over pairings and per-pair angles, scored on public statistics.

    Parameters
    ----------
    angle_resolution:
        Number of candidate angles per pair (uniform grid over [0°, 360°)).
    max_pairings:
        Cap on the number of candidate pairings enumerated (the factorial
        blow-up is the point of the security argument; the cap keeps the
        simulation tractable).
    known_correlation:
        Attribute correlation matrix of the original data, if the attacker
        has it (a stronger adversary).  When ``None`` only unit variance /
        zero mean is used for scoring.
    success_tolerance:
        RMSE below which the best reconstruction counts as a breach.
    sample_pairings:
        By default the pairing cap keeps the *first* ``max_pairings``
        candidates in permutation order (the seed behaviour).  With
        ``True``, candidate orders are drawn from the full permutation
        space with the seeded ``random_state`` instead — a fairer model of
        an attacker probing a space too large to enumerate.  Identical
        seeds draw identical pairings across runs and processes.
    random_state:
        Seed for the pairing sampling (unused when ``sample_pairings`` is
        ``False``; accepted always so the registry can thread one seed
        through every attack).
    memory_budget_bytes:
        Cap on the temporaries of one angle-grid evaluation; the grid is
        processed in blocks of angles, bitwise equal to the unblocked scan.
    backend:
        Execution backend spec for the angle-grid blocks (see
        :mod:`repro.perf.backends`); serial and process-pool return the
        same bits, exact score ties included.
    """

    name = "brute_force_angle"

    def __init__(
        self,
        *,
        angle_resolution: int = 72,
        max_pairings: int = 24,
        known_correlation: np.ndarray | None = None,
        success_tolerance: float = 0.1,
        sample_pairings: bool = False,
        random_state=None,
        memory_budget_bytes: int | None = None,
        backend=None,
    ) -> None:
        self.angle_resolution = check_integer_in_range(
            angle_resolution, name="angle_resolution", minimum=4
        )
        self.max_pairings = check_integer_in_range(max_pairings, name="max_pairings", minimum=1)
        self.known_correlation = (
            None if known_correlation is None else np.asarray(known_correlation, dtype=float)
        )
        self.success_tolerance = float(success_tolerance)
        self.sample_pairings = bool(sample_pairings)
        self.random_state = random_state
        self.memory_budget_bytes = memory_budget_bytes
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Attack
    # ------------------------------------------------------------------ #
    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``; ``original`` is used only for scoring."""
        if not isinstance(released, DataMatrix):
            raise AttackError("BruteForceAngleAttack expects the released DataMatrix")
        values = released.values
        n_attributes = values.shape[1]
        if n_attributes < 2:
            raise AttackError("brute-force attack needs at least two attributes")

        angles = np.linspace(0.0, 360.0, self.angle_resolution, endpoint=False)
        best_score = np.inf
        best_values = values.copy()
        best_hypothesis: dict = {}
        work = 0

        for pairing in self._candidate_pairings(n_attributes):
            candidate = values.copy()
            hypothesis_angles: list[float] = []
            # Greedily undo one pair at a time: for the candidate inversion of each
            # pair pick the angle whose result looks most like normalized data.
            # The angle grid is evaluated as batched rotations in budget-sized
            # blocks; per-angle restorations and scores only depend on that
            # angle's rows, and the block-wise running minimum keeps the
            # first-occurrence tie-break of the sequential seed scan, so exact
            # score ties resolve to the same angle regardless of the budget.
            for index_i, index_j in reversed(pairing):
                angle_index, restored_i, restored_j = self._best_angle(
                    candidate[:, index_i], candidate[:, index_j], angles
                )
                work += angles.size
                candidate[:, index_i] = restored_i
                candidate[:, index_j] = restored_j
                hypothesis_angles.append(float(angles[angle_index]))
            total_score = self._score_matrix(candidate)
            if total_score < best_score:
                best_score = total_score
                best_values = candidate
                best_hypothesis = {
                    "pairing": [(int(i), int(j)) for i, j in pairing],
                    "angles_degrees": hypothesis_angles[::-1],
                    "score": float(total_score),
                }

        reconstruction = released.with_values(best_values)
        error = float("nan")
        succeeded = False
        per_attribute = None
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            per_attribute = per_attribute_reconstruction_error(
                original.values, reconstruction.values
            )
            succeeded = error <= self.success_tolerance
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=work,
            per_attribute_errors=per_attribute,
            details=best_hypothesis,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _best_angle(
        self, column_i: np.ndarray, column_j: np.ndarray, angles: np.ndarray
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """First angle minimising the per-pair score, evaluated in blocks.

        Delegates to :func:`repro.perf.kernels.best_inverse_rotation`, whose
        blocked running minimum keeps the first-occurrence tie-break of the
        sequential seed scan on every backend and block size.
        """
        best_index, _score, restored_i, restored_j = best_inverse_rotation(
            column_i,
            column_j,
            angles,
            scorer="unit_moments",
            memory_budget_bytes=self.memory_budget_bytes,
            backend=self.backend,
        )
        return best_index, restored_i, restored_j

    def _candidate_pairings(self, n_attributes: int) -> list[list[tuple[int, int]]]:
        """Enumerate (or sample) candidate ordered pairings of the attribute indices."""
        pairings: list[list[tuple[int, int]]] = []
        for order in self._candidate_orders(n_attributes):
            pairing = [
                (order[index], order[index + 1]) for index in range(0, n_attributes - 1, 2)
            ]
            if n_attributes % 2 == 1:
                pairing.append((order[-1], order[0]))
            if pairing not in pairings:
                pairings.append(pairing)
            if len(pairings) >= self.max_pairings:
                break
        return pairings

    def _candidate_orders(self, n_attributes: int):
        """Attribute orders to derive pairings from: exhaustive prefix or sampled."""
        if not self.sample_pairings:
            yield from permutations(range(n_attributes))
            return
        # Seeded draws from the full n! space: every draw is a function of
        # random_state alone, so identical seeds explore identical pairings
        # in any process.  Distinct orders can collapse to the same pairing;
        # cap the draws so degenerate spaces (tiny n) terminate.
        rng = ensure_rng(self.random_state)
        for _ in range(max(16, 8 * self.max_pairings)):
            yield tuple(int(index) for index in rng.permutation(n_attributes))

    def _score_matrix(self, candidate: np.ndarray) -> float:
        """Score a full candidate reconstruction against the attacker's knowledge."""
        variances = candidate.var(axis=0, ddof=1)
        means = candidate.mean(axis=0)
        score = float(np.sum((variances - 1.0) ** 2) + np.sum(means**2))
        if self.known_correlation is not None:
            with np.errstate(invalid="ignore"):
                correlation = np.corrcoef(candidate, rowvar=False)
            correlation = np.nan_to_num(correlation, nan=0.0)
            score += float(np.sum((correlation - self.known_correlation) ** 2))
        return score
