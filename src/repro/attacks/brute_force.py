"""Brute-force search over pairings and rotation angles (Section 5.2).

The paper bases RBT's security on the computational work an attacker must
spend: the pairing of attributes, the order within each pair, and the
real-valued angle of every pair are all unknown.  This attack makes that
work measurable.  The attacker

1. enumerates candidate attribute pairings (optionally capped),
2. for each pairing, grid-searches the rotation angle of every pair,
3. scores each candidate inversion against reference statistics assumed to
   be public — by default the fact that the original normalized data has
   unit variance and zero mean per attribute, optionally a known correlation
   matrix —
4. and returns the best-scoring reconstruction.

The returned ``work`` field counts the number of candidate hypotheses that
were scored, which grows as ``O(pairings x resolution^k)``; the benchmark
``bench_security_analysis`` uses it to show how the attack cost explodes
with the number of attributes while the attack error stays high.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from .._validation import check_integer_in_range
from ..data import DataMatrix
from ..perf.kernels import batched_inverse_rotations
from ..exceptions import AttackError
from .base import AttackResult, reconstruction_error

__all__ = ["BruteForceAngleAttack"]


class BruteForceAngleAttack:
    """Grid search over pairings and per-pair angles, scored on public statistics.

    Parameters
    ----------
    angle_resolution:
        Number of candidate angles per pair (uniform grid over [0°, 360°)).
    max_pairings:
        Cap on the number of candidate pairings enumerated (the factorial
        blow-up is the point of the security argument; the cap keeps the
        simulation tractable).
    known_correlation:
        Attribute correlation matrix of the original data, if the attacker
        has it (a stronger adversary).  When ``None`` only unit variance /
        zero mean is used for scoring.
    success_tolerance:
        RMSE below which the best reconstruction counts as a breach.
    """

    name = "brute_force_angle"

    def __init__(
        self,
        *,
        angle_resolution: int = 72,
        max_pairings: int = 24,
        known_correlation: np.ndarray | None = None,
        success_tolerance: float = 0.1,
    ) -> None:
        self.angle_resolution = check_integer_in_range(
            angle_resolution, name="angle_resolution", minimum=4
        )
        self.max_pairings = check_integer_in_range(max_pairings, name="max_pairings", minimum=1)
        self.known_correlation = (
            None if known_correlation is None else np.asarray(known_correlation, dtype=float)
        )
        self.success_tolerance = float(success_tolerance)

    # ------------------------------------------------------------------ #
    # Attack
    # ------------------------------------------------------------------ #
    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``; ``original`` is used only for scoring."""
        if not isinstance(released, DataMatrix):
            raise AttackError("BruteForceAngleAttack expects the released DataMatrix")
        values = released.values
        n_attributes = values.shape[1]
        if n_attributes < 2:
            raise AttackError("brute-force attack needs at least two attributes")

        angles = np.linspace(0.0, 360.0, self.angle_resolution, endpoint=False)
        best_score = np.inf
        best_values = values.copy()
        best_hypothesis: dict = {}
        work = 0

        for pairing in self._candidate_pairings(n_attributes):
            candidate = values.copy()
            hypothesis_angles: list[float] = []
            # Greedily undo one pair at a time: for the candidate inversion of each
            # pair pick the angle whose result looks most like normalized data.
            # The whole angle grid is evaluated as one batched rotation, and
            # all candidate scores are reduced at once.  The summation order
            # mirrors the seed per-θ scorer (variance terms first, then mean
            # terms) and argmin keeps the first minimum, so exact score ties
            # resolve to the same angle the seed scan chose.
            for index_i, index_j in reversed(pairing):
                restored_i, restored_j = batched_inverse_rotations(
                    candidate[:, index_i], candidate[:, index_j], angles
                )
                work += angles.size
                scores = (
                    (restored_i.var(axis=1, ddof=1) - 1.0) ** 2
                    + (restored_j.var(axis=1, ddof=1) - 1.0) ** 2
                ) + (restored_i.mean(axis=1) ** 2 + restored_j.mean(axis=1) ** 2)
                best_index = int(scores.argmin())
                candidate[:, index_i] = restored_i[best_index]
                candidate[:, index_j] = restored_j[best_index]
                hypothesis_angles.append(float(angles[best_index]))
            total_score = self._score_matrix(candidate)
            if total_score < best_score:
                best_score = total_score
                best_values = candidate
                best_hypothesis = {
                    "pairing": [(int(i), int(j)) for i, j in pairing],
                    "angles_degrees": hypothesis_angles[::-1],
                    "score": float(total_score),
                }

        reconstruction = released.with_values(best_values)
        error = float("nan")
        succeeded = False
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            succeeded = error <= self.success_tolerance
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=work,
            details=best_hypothesis,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _candidate_pairings(self, n_attributes: int) -> list[list[tuple[int, int]]]:
        """Enumerate candidate (ordered) pairings of the attribute indices."""
        pairings: list[list[tuple[int, int]]] = []
        for order in permutations(range(n_attributes)):
            pairing = [
                (order[index], order[index + 1]) for index in range(0, n_attributes - 1, 2)
            ]
            if n_attributes % 2 == 1:
                pairing.append((order[-1], order[0]))
            if pairing not in pairings:
                pairings.append(pairing)
            if len(pairings) >= self.max_pairings:
                break
        return pairings

    def _score_matrix(self, candidate: np.ndarray) -> float:
        """Score a full candidate reconstruction against the attacker's knowledge."""
        variances = candidate.var(axis=0, ddof=1)
        means = candidate.mean(axis=0)
        score = float(np.sum((variances - 1.0) ** 2) + np.sum(means**2))
        if self.known_correlation is not None:
            with np.errstate(invalid="ignore"):
                correlation = np.corrcoef(candidate, rowvar=False)
            correlation = np.nan_to_num(correlation, nan=0.0)
            score += float(np.sum((correlation - self.known_correlation) ** 2))
        return score
