"""The re-normalization attack analysed in Section 5.2 (Table 5).

The attacker knows that the released data was produced by normalizing and
then rotating the original attributes, and also knows that normalized data
has unit variance per attribute.  A naive inversion attempt is therefore to
z-score-normalize the released data, hoping to land back on the original
normalized values.  The paper shows this fails: normalization is not the
inverse of a rotation, the resulting dissimilarity matrix (Table 5) differs
from the true one (Table 4), and the re-normalized data is useless both as a
reconstruction and for clustering.
"""

from __future__ import annotations

import numpy as np

from ..data import DataMatrix
from ..exceptions import AttackError
from ..metrics.distance import dissimilarity_matrix
from ..preprocessing import ZScoreNormalizer
from .base import AttackResult, reconstruction_error

__all__ = ["RenormalizationAttack"]


class RenormalizationAttack:
    """Re-normalize the released data and treat the result as the reconstruction.

    Parameters
    ----------
    ddof:
        Estimator used by the attacker's normalization (1 matches the paper).
    success_tolerance:
        RMSE below which the reconstruction would be considered a successful
        privacy breach.
    """

    name = "renormalization"

    def __init__(self, *, ddof: int = 1, success_tolerance: float = 0.1) -> None:
        self.ddof = ddof
        self.success_tolerance = float(success_tolerance)

    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``.

        ``original`` (the true normalized data) is only used to *score* the
        attack; the attacker never sees it.  When omitted, the error is
        reported as ``nan`` and success as ``False``.
        """
        if not isinstance(released, DataMatrix):
            raise AttackError("RenormalizationAttack expects the released DataMatrix")
        reconstruction = ZScoreNormalizer(ddof=self.ddof).fit_transform(released)
        error = float("nan")
        succeeded = False
        details: dict = {}
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            succeeded = error <= self.success_tolerance
            # The paper's diagnostic: the dissimilarity matrix changes, so the
            # re-normalized data is not even useful for clustering.
            original_distances = dissimilarity_matrix(original.values)
            attacked_distances = dissimilarity_matrix(reconstruction.values)
            details["max_distance_change"] = float(
                np.max(np.abs(original_distances - attacked_distances))
            )
            details["distances_preserved"] = bool(
                np.allclose(original_distances, attacked_distances, atol=1e-6)
            )
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=1,
            details=details,
        )
