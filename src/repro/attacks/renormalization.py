"""The re-normalization attack analysed in Section 5.2 (Table 5).

The attacker knows that the released data was produced by normalizing and
then rotating the original attributes, and also knows that normalized data
has unit variance per attribute.  A naive inversion attempt is therefore to
z-score-normalize the released data, hoping to land back on the original
normalized values.  The paper shows this fails: normalization is not the
inverse of a rotation, the resulting dissimilarity matrix (Table 5) differs
from the true one (Table 4), and the re-normalized data is useless both as a
reconstruction and for clustering.
"""

from __future__ import annotations

from ..data import DataMatrix
from ..exceptions import AttackError
from ..preprocessing import ZScoreNormalizer
from .base import (
    AttackResult,
    distance_change_diagnostics,
    per_attribute_reconstruction_error,
    reconstruction_error,
)

__all__ = ["RenormalizationAttack"]


class RenormalizationAttack:
    """Re-normalize the released data and treat the result as the reconstruction.

    Parameters
    ----------
    ddof:
        Estimator used by the attacker's normalization (1 matches the paper).
    success_tolerance:
        RMSE below which the reconstruction would be considered a successful
        privacy breach.
    distance_cache:
        Optional :class:`~repro.perf.cache.DistanceCache` the Table 5
        diagnostic fetches the original's dissimilarity matrix through, so
        an attack suite running several attacks computes it once; the
        recorded numbers are byte-identical either way.
    random_state:
        Accepted for registry uniformity; the attack is deterministic and
        never draws from it.
    """

    name = "renormalization"

    def __init__(
        self,
        *,
        ddof: int = 1,
        success_tolerance: float = 0.1,
        distance_cache=None,
        random_state=None,
    ) -> None:
        self.ddof = ddof
        self.success_tolerance = float(success_tolerance)
        self.distance_cache = distance_cache
        self.random_state = random_state

    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``.

        ``original`` (the true normalized data) is only used to *score* the
        attack; the attacker never sees it.  When omitted, the error is
        reported as ``nan`` and success as ``False``.
        """
        if not isinstance(released, DataMatrix):
            raise AttackError("RenormalizationAttack expects the released DataMatrix")
        reconstruction = ZScoreNormalizer(ddof=self.ddof).fit_transform(released)
        error = float("nan")
        succeeded = False
        per_attribute = None
        details: dict = {}
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            per_attribute = per_attribute_reconstruction_error(
                original.values, reconstruction.values
            )
            succeeded = error <= self.success_tolerance
            # The paper's diagnostic: the dissimilarity matrix changes, so the
            # re-normalized data is not even useful for clustering.
            details.update(
                distance_change_diagnostics(
                    original.values,
                    reconstruction.values,
                    distance_cache=self.distance_cache,
                )
            )
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=1,
            per_attribute_errors=per_attribute,
            details=details,
        )
