"""Moment-space attack planning for streamed (out-of-core) releases.

The dense attacks materialize the released matrix and mutate candidate
copies of it.  On a streamed release that is exactly what the auditor must
*not* do — the acceptance bar is auditing a 500k-row release under the same
memory budget that produced it.  The key observation making that possible:
every attack in this library reconstructs via a **global affine map**
(``recon = released @ W + b``), and every score the attacks consult —
column variances, means, correlations — is a closed-form function of the
released data's first two moments.  So the engine splits each attack into

1. a **planning** stage that needs only a :class:`MomentSketch` (means +
   covariance, accumulated chunk-invariantly by
   :class:`~repro.perf.streaming.StreamingMoments`) or, for the
   known-sample adversary, the handful of known rows, and
2. a **scoring** stage (owned by the attack suite) that streams the
   released and original CSVs once, applying the planned
   :class:`LinearReconstruction` chunk-by-chunk.

Applying an inverse rotation to a column pair updates the sketch
analytically (``mean' = mean·M``, ``Σ' = Mᵀ·Σ·M``), so the brute-force and
variance-fingerprint searches run entirely in moment space — their cost no
longer depends on the number of rows at all.

Determinism: the sketch is chunk-invariant, the greedy searches are
first-minimum tie-broken like their dense counterparts, and
:meth:`LinearReconstruction.apply` accumulates the affine map column-by-
column in a fixed order — so a streamed audit's numbers are identical bits
for any ``chunk_rows``, which is what lets the audit cache ignore the
chunking entirely.  (The *scores* consulted during planning are analytic
rather than empirical, so the hypothesis a streamed search selects can in
principle differ from the dense search's on near-tied candidates; the
audit records which engine produced each number.)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..exceptions import AttackError
from ..perf.streaming import StreamingMoments
from .brute_force import BruteForceAngleAttack
from .known_sample import KnownSampleAttack
from .renormalization import RenormalizationAttack
from .variance_fingerprint import VarianceFingerprintAttack

__all__ = [
    "MomentSketch",
    "LinearReconstruction",
    "plan_attack",
]

#: Matches the improvement margin of the dense variance-fingerprint search.
_IMPROVEMENT_MARGIN = 1e-9


@dataclass(frozen=True)
class MomentSketch:
    """First two moments of a released matrix (the attacker's whole view).

    ``covariance`` uses the sample estimator (``ddof=1``) — the estimator
    every dense attack scores with.
    """

    means: np.ndarray
    covariance: np.ndarray
    count: int

    def __post_init__(self) -> None:
        # Read-only *copies*, never in-place freezes: a caller's own array
        # must stay writable (same policy as AttackResult).
        means = np.array(self.means, dtype=float)
        covariance = np.array(self.covariance, dtype=float)
        means.setflags(write=False)
        covariance.setflags(write=False)
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "covariance", covariance)

    @property
    def n_attributes(self) -> int:
        """Number of attributes the sketch describes."""
        return self.means.shape[0]

    @property
    def variances(self) -> np.ndarray:
        """Per-attribute variances (the covariance diagonal)."""
        return np.diag(self.covariance)

    @classmethod
    def from_accumulator(cls, accumulator: StreamingMoments, *, ddof: int = 1) -> MomentSketch:
        """Build a sketch from a ``StreamingMoments(n, cross=True)`` accumulator."""
        n = accumulator.n_columns
        covariance = np.empty((n, n), dtype=float)
        variances = accumulator.variances(ddof=ddof)
        for i in range(n):
            covariance[i, i] = variances[i]
            for j in range(i + 1, n):
                covariance[i, j] = covariance[j, i] = accumulator.covariance(i, j, ddof=ddof)
        return cls(means=accumulator.means(), covariance=covariance, count=accumulator.count)

    def transformed(self, matrix: np.ndarray) -> MomentSketch:
        """The sketch of ``released @ matrix`` (mean and covariance pushforward)."""
        return MomentSketch(
            # repro-lint: disable=RPR007 -- (n,) @ (n, n) pushforward, fixed by sketch width
            means=self.means @ matrix,
            # repro-lint: disable=RPR007 -- (n, n) congruence, fixed by sketch width
            covariance=matrix.T @ self.covariance @ matrix,
            count=self.count,
        )

    def correlation(self) -> np.ndarray:
        """Correlation matrix with the dense scorer's NaN policy (NaN → 0)."""
        std = np.sqrt(self.variances)
        with np.errstate(invalid="ignore", divide="ignore"):
            correlation = self.covariance / np.outer(std, std)
        return np.nan_to_num(correlation, nan=0.0)


@dataclass(frozen=True)
class LinearReconstruction:
    """A planned reconstruction ``recon = released @ matrix + offset``."""

    matrix: np.ndarray
    offset: np.ndarray

    def __post_init__(self) -> None:
        # Read-only *copies*, never in-place freezes of caller arrays.
        matrix = np.array(self.matrix, dtype=float)
        offset = np.array(self.offset, dtype=float)
        matrix.setflags(write=False)
        offset.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "offset", offset)

    @classmethod
    def identity(cls, n_attributes: int) -> LinearReconstruction:
        """The do-nothing reconstruction (released data taken at face value)."""
        return cls(matrix=np.eye(n_attributes), offset=np.zeros(n_attributes))

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        """Apply the affine map to a row chunk, invariantly to row chunking.

        The accumulation runs column-by-column in a fixed order (offset
        first, then every input attribute), so each output element is the
        same sequential sum for any split of the rows — BLAS matmuls do not
        guarantee that, which is why this does not call ``@``.
        """
        chunk = np.asarray(chunk, dtype=float)
        out = np.tile(self.offset, (chunk.shape[0], 1))
        for k in range(self.matrix.shape[0]):
            out += chunk[:, k, None] * self.matrix[k]
        return out


def _inverse_rotation_map(n: int, index_i: int, index_j: int, theta_degrees: float) -> np.ndarray:
    """Right-multiplication matrix applying ``R(θ)ᵀ`` to columns ``(i, j)``.

    The dense attacks compute ``restored_i = c·x_i − s·x_j`` and
    ``restored_j = s·x_i + c·x_j``; as a map on row vectors that is
    ``x @ M`` with the 2×2 block ``[[c, s], [−s, c]]`` embedded at
    ``(i, j)``.
    """
    theta = np.deg2rad(theta_degrees)
    cos, sin = np.cos(theta), np.sin(theta)
    matrix = np.eye(n)
    matrix[index_i, index_i] = cos
    matrix[index_i, index_j] = sin
    matrix[index_j, index_i] = -sin
    matrix[index_j, index_j] = cos
    return matrix


def _pair_statistics(
    sketch: MomentSketch, index_i: int, index_j: int, angles_degrees: np.ndarray
):
    """Analytic per-angle variances and means of an inverse-rotated pair."""
    theta = np.deg2rad(angles_degrees)
    cos, sin = np.cos(theta), np.sin(theta)
    variance_i = sketch.covariance[index_i, index_i]
    variance_j = sketch.covariance[index_j, index_j]
    covariance = sketch.covariance[index_i, index_j]
    mean_i, mean_j = sketch.means[index_i], sketch.means[index_j]
    restored_var_i = cos**2 * variance_i + sin**2 * variance_j - 2.0 * cos * sin * covariance
    restored_var_j = sin**2 * variance_i + cos**2 * variance_j + 2.0 * cos * sin * covariance
    restored_mean_i = cos * mean_i - sin * mean_j
    restored_mean_j = sin * mean_i + cos * mean_j
    return restored_var_i, restored_var_j, restored_mean_i, restored_mean_j


# --------------------------------------------------------------------------- #
# Per-attack planners
# --------------------------------------------------------------------------- #
def _plan_renormalization(attack: RenormalizationAttack, sketch: MomentSketch):
    accumulator_stds = np.sqrt(
        sketch.variances * (sketch.count - 1) / max(sketch.count - attack.ddof, 1)
    )
    if np.any(np.isclose(accumulator_stds, 0.0)):
        raise AttackError("re-normalization attack needs non-constant released attributes")
    matrix = np.diag(1.0 / accumulator_stds)
    offset = -sketch.means / accumulator_stds
    reconstruction = LinearReconstruction(matrix=matrix, offset=offset)
    return reconstruction, 1, {}


def _plan_brute_force(attack: BruteForceAngleAttack, sketch: MomentSketch):
    n = sketch.n_attributes
    if n < 2:
        raise AttackError("brute-force attack needs at least two attributes")
    angles = np.linspace(0.0, 360.0, attack.angle_resolution, endpoint=False)
    best_score = np.inf
    best_map = LinearReconstruction.identity(n)
    best_hypothesis: dict = {}
    work = 0
    for pairing in attack._candidate_pairings(n):
        current = sketch
        composed = np.eye(n)
        hypothesis_angles: list[float] = []
        for index_i, index_j in reversed(pairing):
            restored_var_i, restored_var_j, restored_mean_i, restored_mean_j = _pair_statistics(
                current, index_i, index_j, angles
            )
            work += angles.size
            scores = (
                (restored_var_i - 1.0) ** 2 + (restored_var_j - 1.0) ** 2
            ) + (restored_mean_i**2 + restored_mean_j**2)
            best_index = int(scores.argmin())
            theta = float(angles[best_index])
            rotation = _inverse_rotation_map(n, index_i, index_j, theta)
            composed = composed @ rotation  # repro-lint: disable=RPR007 -- fixed (n, n) composition
            current = current.transformed(rotation)
            hypothesis_angles.append(theta)
        score = float(
            np.sum((current.variances - 1.0) ** 2) + np.sum(current.means**2)
        )
        if attack.known_correlation is not None:
            score += float(np.sum((current.correlation() - attack.known_correlation) ** 2))
        if score < best_score:
            best_score = score
            best_map = LinearReconstruction(matrix=composed, offset=np.zeros(n))
            best_hypothesis = {
                "pairing": [(int(i), int(j)) for i, j in pairing],
                "angles_degrees": hypothesis_angles[::-1],
                "score": score,
            }
    return best_map, work, best_hypothesis


def _plan_variance_fingerprint(attack: VarianceFingerprintAttack, sketch: MomentSketch):
    n = sketch.n_attributes
    targets = np.ones(n) if attack.known_variances is None else attack.known_variances
    if targets.size != n:
        raise AttackError(f"known_variances must have {n} entries, got {targets.size}")
    angles = np.linspace(0.0, 360.0, attack.angle_resolution, endpoint=False)
    work = 0
    applied: list[dict] = []
    current = sketch
    composed = np.eye(n)
    improved = True
    while improved:
        improved = False
        current_score = float(np.sum((current.variances - targets) ** 2))
        base = (current.variances - targets) ** 2
        best = None
        for index_i, index_j in combinations(range(n), 2):
            restored_var_i, restored_var_j, _, _ = _pair_statistics(
                current, index_i, index_j, angles
            )
            work += angles.size
            rest = float(np.sum(base) - base[index_i] - base[index_j])
            scores = (
                rest
                + (restored_var_i - targets[index_i]) ** 2
                + (restored_var_j - targets[index_j]) ** 2
            )
            local = int(scores.argmin())
            score = float(scores[local])
            if score < current_score - _IMPROVEMENT_MARGIN and (best is None or score < best[0]):
                best = (score, (index_i, index_j), float(angles[local]))
        if best is not None:
            score, pair, theta = best
            rotation = _inverse_rotation_map(n, pair[0], pair[1], theta)
            composed = composed @ rotation  # repro-lint: disable=RPR007 -- fixed (n, n) composition
            current = current.transformed(rotation)
            applied.append({"pair": pair, "theta_degrees": theta, "score": score})
            improved = True
        if len(applied) >= n:
            break
    details = {
        "applied_rotations": applied,
        "final_profile_error": float(np.sum((current.variances - targets) ** 2)),
    }
    return LinearReconstruction(matrix=composed, offset=np.zeros(n)), work, details


def plan_known_sample(
    attack: KnownSampleAttack, released_rows: np.ndarray, original_rows: np.ndarray
):
    """Plan the known-sample regression from the gathered record pairs."""
    estimate = attack.estimate_map(
        np.asarray(released_rows, dtype=float), np.asarray(original_rows, dtype=float)
    )
    reconstruction = LinearReconstruction(
        matrix=estimate, offset=np.zeros(estimate.shape[0])
    )
    details = {
        "n_known_records": int(released_rows.shape[0]),
        "projected_to_orthogonal": attack.project_to_orthogonal,
        "estimated_map": estimate,
    }
    return reconstruction, int(released_rows.shape[0]), details


def plan_attack(attack, sketch: MomentSketch):
    """Plan a moment-space attack; returns ``(reconstruction, work, details)``.

    The known-sample adversary needs actual rows, not moments — route it
    through :func:`plan_known_sample` instead.
    """
    if isinstance(attack, RenormalizationAttack):
        return _plan_renormalization(attack, sketch)
    if isinstance(attack, BruteForceAngleAttack):
        return _plan_brute_force(attack, sketch)
    if isinstance(attack, VarianceFingerprintAttack):
        return _plan_variance_fingerprint(attack, sketch)
    raise AttackError(
        f"attack {getattr(attack, 'name', type(attack).__name__)!r} has no streamed planner; "
        "register one or run it in memory"
    )
