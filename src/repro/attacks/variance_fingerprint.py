"""Variance-fingerprint attack (Section 5.2's "attacker who knows the variances").

The paper considers an attacker who has access to the released data *and* to
the per-attribute variances of the original normalized data (which are all 1
after z-score normalization).  Because the variances of the released
attributes differ from 1 (e.g. [1.9039, 0.7840, 0.3122] in the worked
example), the attacker cannot simply match columns; this attack tries the
next-best thing: for every unordered pair of released columns it searches the
single rotation angle that brings both column variances closest to the known
original variances, and applies the best such un-rotation pair by pair.

It is a cheaper, more targeted cousin of the brute-force attack; on data
rotated once per pair it can sometimes recover the *variance profile* but —
because many angles reproduce the same variance pair and the pairing itself
is unknown — the value-level reconstruction error stays large, which is the
point the benchmark makes.

Two scoring paths are provided.  ``scoring="batched"`` (default) evaluates a
whole angle grid per pair through
:func:`~repro.perf.kernels.batched_inverse_rotations` and a single stacked
variance reduction, in blocks sized by ``memory_budget_bytes``; it is
**bitwise equal** to ``scoring="naive"``, the seed's per-θ Python loop (kept
as the equivalence oracle), because

* the batched 2×2 products restore the same bits as the per-θ products,
* ``var(axis=1)`` of the ``(block, m, 2)`` restored stack equals the
  ``(m, 2)``-column variances the naive path reads out of its trial matrix
  (numpy's strided axis reduction is per-column and independent of the
  other columns), and
* the block-wise running minimum keeps the first-occurrence tie-break of
  the sequential scan.

Tests assert the equivalence down to 1-angle blocks.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_integer_in_range
from ..core.rotation import rotation_matrix
from ..data import DataMatrix
from ..exceptions import AttackError, ValidationError
from ..perf.kernels import best_inverse_rotation
from .base import AttackResult, per_attribute_reconstruction_error, reconstruction_error

__all__ = ["VarianceFingerprintAttack"]

#: A candidate rotation must beat the current profile error by at least this
#: margin to be applied (stops the greedy pass cycling on round-off).
_IMPROVEMENT_MARGIN = 1e-9


class VarianceFingerprintAttack:
    """Undo rotations pair-by-pair so column variances match known originals.

    Parameters
    ----------
    known_variances:
        The attacker's knowledge of the original per-attribute variances.
        Defaults to all-ones (normalized data).
    angle_resolution:
        Number of candidate angles per pair.
    success_tolerance:
        RMSE below which the reconstruction counts as a breach.
    scoring:
        ``"batched"`` (default) for the blocked vectorized search,
        ``"naive"`` for the seed's per-θ loop (the equivalence oracle).
    memory_budget_bytes:
        Cap on the temporaries of one batched angle-grid evaluation.
    backend:
        Execution backend spec for the batched angle-grid blocks (see
        :mod:`repro.perf.backends`); serial and process-pool return the
        same bits, exact score ties included.  Ignored by the naive oracle.
    random_state:
        Accepted for registry uniformity; this attack is fully
        deterministic and never draws from it.
    """

    name = "variance_fingerprint"

    def __init__(
        self,
        known_variances=None,
        *,
        angle_resolution: int = 360,
        success_tolerance: float = 0.1,
        scoring: str = "batched",
        memory_budget_bytes: int | None = None,
        backend=None,
        random_state=None,
    ) -> None:
        self.known_variances = (
            None if known_variances is None else np.asarray(known_variances, dtype=float).ravel()
        )
        self.angle_resolution = check_integer_in_range(
            angle_resolution, name="angle_resolution", minimum=4
        )
        self.success_tolerance = float(success_tolerance)
        if scoring not in ("batched", "naive"):
            raise ValidationError(f"scoring must be 'batched' or 'naive', got {scoring!r}")
        self.scoring = scoring
        self.memory_budget_bytes = memory_budget_bytes
        self.backend = backend
        self.random_state = random_state

    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``; ``original`` is used only for scoring."""
        if not isinstance(released, DataMatrix):
            raise AttackError("VarianceFingerprintAttack expects the released DataMatrix")
        values = released.values.copy()
        n_attributes = values.shape[1]
        targets = (
            np.ones(n_attributes) if self.known_variances is None else self.known_variances
        )
        if targets.size != n_attributes:
            raise AttackError(
                f"known_variances must have {n_attributes} entries, got {targets.size}"
            )

        angles = np.linspace(0.0, 360.0, self.angle_resolution, endpoint=False)
        search = self._search_naive if self.scoring == "naive" else self._search_batched
        work = 0
        applied: list[dict] = []
        # Greedy pass: repeatedly pick the column pair + angle whose un-rotation
        # brings both column variances closest to the target profile.
        improved = True
        candidate = values
        while improved:
            improved = False
            current_score = self._profile_error(candidate, targets)
            step_work, best = search(candidate, targets, angles, current_score)
            work += step_work
            if best is not None:
                current_score, candidate, pair, theta = best
                applied.append({"pair": pair, "theta_degrees": theta, "score": current_score})
                improved = True
            if len(applied) >= n_attributes:
                break

        reconstruction = released.with_values(candidate)
        error = float("nan")
        succeeded = False
        per_attribute = None
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            per_attribute = per_attribute_reconstruction_error(
                original.values, reconstruction.values
            )
            succeeded = error <= self.success_tolerance
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=work,
            per_attribute_errors=per_attribute,
            details={
                "applied_rotations": applied,
                "final_profile_error": self._profile_error(candidate, targets),
            },
        )

    # ------------------------------------------------------------------ #
    # Search backends (one greedy round each)
    # ------------------------------------------------------------------ #
    def _search_batched(
        self,
        candidate: np.ndarray,
        targets: np.ndarray,
        angles: np.ndarray,
        current_score: float,
    ):
        """Blocked vectorized scan over (pair, θ); bitwise equal to the naive scan."""
        n_attributes = candidate.shape[1]
        # The seed scores a trial matrix's full variance vector; unchanged
        # columns keep the candidate's variances bit-for-bit, so they are
        # computed once per round and only the rotated pair is re-measured.
        candidate_vars = candidate.var(axis=0, ddof=1)
        work = 0
        best = None
        best_restored = None
        for index_i, index_j in combinations(range(n_attributes), 2):
            # The kernel's blocked running minimum keeps the first-occurrence
            # tie-break within the pair's grid, so taking the pair-level
            # minimum first and comparing pairs afterwards selects exactly
            # the candidate the seed's block-by-block comparison selected.
            angle_index, score, restored_i, restored_j = best_inverse_rotation(
                candidate[:, index_i],
                candidate[:, index_j],
                angles,
                scorer="variance_profile",
                candidate_variances=candidate_vars,
                targets=targets,
                pair_indices=(index_i, index_j),
                memory_budget_bytes=self.memory_budget_bytes,
                backend=self.backend,
            )
            work += angles.size
            if score < current_score - _IMPROVEMENT_MARGIN and (best is None or score < best[0]):
                best = (score, None, (index_i, index_j), float(angles[angle_index]))
                best_restored = (restored_i, restored_j)
        if best is None:
            return work, None
        score, _, pair, theta = best
        trial = candidate.copy()
        trial[:, pair[0]] = best_restored[0]
        trial[:, pair[1]] = best_restored[1]
        return work, (score, trial, pair, theta)

    def _search_naive(
        self,
        candidate: np.ndarray,
        targets: np.ndarray,
        angles: np.ndarray,
        current_score: float,
    ):
        """The seed's per-θ loop, kept verbatim as the equivalence oracle."""
        n_attributes = candidate.shape[1]
        work = 0
        best = None
        for index_i, index_j in combinations(range(n_attributes), 2):
            for theta in angles:
                work += 1
                inverse = rotation_matrix(theta).T
                stacked = np.vstack([candidate[:, index_i], candidate[:, index_j]])
                restored = inverse @ stacked
                trial = candidate.copy()
                trial[:, index_i] = restored[0]
                trial[:, index_j] = restored[1]
                score = self._profile_error(trial, targets)
                if score < current_score - _IMPROVEMENT_MARGIN and (
                    best is None or score < best[0]
                ):
                    best = (score, trial, (index_i, index_j), float(theta))
        return work, best

    @staticmethod
    def _profile_error(candidate: np.ndarray, targets: np.ndarray) -> float:
        variances = candidate.var(axis=0, ddof=1)
        return float(np.sum((variances - targets) ** 2))
