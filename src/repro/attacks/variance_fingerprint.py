"""Variance-fingerprint attack (Section 5.2's "attacker who knows the variances").

The paper considers an attacker who has access to the released data *and* to
the per-attribute variances of the original normalized data (which are all 1
after z-score normalization).  Because the variances of the released
attributes differ from 1 (e.g. [1.9039, 0.7840, 0.3122] in the worked
example), the attacker cannot simply match columns; this attack tries the
next-best thing: for every unordered pair of released columns it searches the
single rotation angle that brings both column variances closest to the known
original variances, and applies the best such un-rotation pair by pair.

It is a cheaper, more targeted cousin of the brute-force attack; on data
rotated once per pair it can sometimes recover the *variance profile* but —
because many angles reproduce the same variance pair and the pairing itself
is unknown — the value-level reconstruction error stays large, which is the
point the benchmark makes.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_integer_in_range
from ..core.rotation import rotation_matrix
from ..data import DataMatrix
from ..exceptions import AttackError
from .base import AttackResult, reconstruction_error

__all__ = ["VarianceFingerprintAttack"]


class VarianceFingerprintAttack:
    """Undo rotations pair-by-pair so column variances match known originals.

    Parameters
    ----------
    known_variances:
        The attacker's knowledge of the original per-attribute variances.
        Defaults to all-ones (normalized data).
    angle_resolution:
        Number of candidate angles per pair.
    success_tolerance:
        RMSE below which the reconstruction counts as a breach.
    """

    name = "variance_fingerprint"

    def __init__(
        self,
        known_variances=None,
        *,
        angle_resolution: int = 360,
        success_tolerance: float = 0.1,
    ) -> None:
        self.known_variances = (
            None if known_variances is None else np.asarray(known_variances, dtype=float).ravel()
        )
        self.angle_resolution = check_integer_in_range(
            angle_resolution, name="angle_resolution", minimum=4
        )
        self.success_tolerance = float(success_tolerance)

    def run(self, released: DataMatrix, original: DataMatrix | None = None) -> AttackResult:
        """Execute the attack on ``released``; ``original`` is used only for scoring."""
        if not isinstance(released, DataMatrix):
            raise AttackError("VarianceFingerprintAttack expects the released DataMatrix")
        values = released.values.copy()
        n_attributes = values.shape[1]
        targets = (
            np.ones(n_attributes) if self.known_variances is None else self.known_variances
        )
        if targets.size != n_attributes:
            raise AttackError(
                f"known_variances must have {n_attributes} entries, got {targets.size}"
            )

        angles = np.linspace(0.0, 360.0, self.angle_resolution, endpoint=False)
        work = 0
        applied: list[dict] = []
        # Greedy pass: repeatedly pick the column pair + angle whose un-rotation
        # brings both column variances closest to the target profile.
        improved = True
        candidate = values
        while improved:
            improved = False
            best = None
            current_score = self._profile_error(candidate, targets)
            for index_i, index_j in combinations(range(n_attributes), 2):
                for theta in angles:
                    work += 1
                    inverse = rotation_matrix(theta).T
                    stacked = np.vstack([candidate[:, index_i], candidate[:, index_j]])
                    restored = inverse @ stacked
                    trial = candidate.copy()
                    trial[:, index_i] = restored[0]
                    trial[:, index_j] = restored[1]
                    score = self._profile_error(trial, targets)
                    if score < current_score - 1e-9 and (best is None or score < best[0]):
                        best = (score, trial, (index_i, index_j), float(theta))
            if best is not None:
                current_score, candidate, pair, theta = best
                applied.append({"pair": pair, "theta_degrees": theta, "score": current_score})
                improved = True
            if len(applied) >= n_attributes:
                break

        reconstruction = released.with_values(candidate)
        error = float("nan")
        succeeded = False
        if original is not None:
            error = reconstruction_error(original.values, reconstruction.values)
            succeeded = error <= self.success_tolerance
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=succeeded,
            work=work,
            details={
                "applied_rotations": applied,
                "final_profile_error": self._profile_error(candidate, targets),
            },
        )

    @staticmethod
    def _profile_error(candidate: np.ndarray, targets: np.ndarray) -> float:
        variances = candidate.var(axis=0, ddof=1)
        return float(np.sum((variances - targets) ** 2))
