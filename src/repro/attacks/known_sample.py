"""Known-sample (regression) attack on rotation perturbation.

The paper's security argument is purely about the work needed to *guess* the
pairing and angles.  Follow-up literature on rotation-based perturbation
showed that a stronger adversary — one who knows the original values of even
a handful of records (an insider, a public figure whose vitals are known,
linked auxiliary data) — can estimate the whole orthogonal transformation by
solving a least-squares problem, because RBT applies the *same* linear map to
every record.

This attack implements that adversary:

1. the attacker holds ``k`` (released, original) record pairs — either an
   explicit list of row indices, or ``n_known`` rows drawn with a seeded
   rng (identical seeds pick identical records in any process),
2. estimates the linear map ``W`` minimising ``‖ released·W − original ‖``
   (optionally projecting ``W`` onto the nearest orthogonal matrix, since the
   attacker knows the transformation is a composition of rotations),
3. applies ``W`` to every released record.

With as few known samples as the number of attributes the reconstruction is
essentially exact — an honest demonstration of RBT's main weakness, included
so the library does not overstate the paper's security claims (the
reproduction bands already note the scheme was later shown vulnerable).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..data import DataMatrix
from ..exceptions import AttackError
from .base import (
    AttackResult,
    distance_change_diagnostics,
    per_attribute_reconstruction_error,
    reconstruction_error,
)

__all__ = ["KnownSampleAttack"]


class KnownSampleAttack:
    """Estimate the rotation from known (original, released) record pairs.

    Parameters
    ----------
    known_indices:
        Row indices of the records the attacker knows in the original data.
        Mutually exclusive with ``n_known`` and ``index_ranges``.
    n_known:
        Number of known records, drawn without replacement from the rows of
        the attacked release with the seeded ``random_state`` (sorted, so
        the regression sees them in a deterministic order).
    index_ranges:
        Half-open ``(start, stop)`` row ranges the attacker knows — the
        colluding-parties threat model for a horizontally-federated release,
        where each release shard occupies a contiguous row block and a
        colluding party knows its *own* block in full.  Mutually exclusive
        with ``known_indices`` and ``n_known``.
    random_state:
        Seed for the ``n_known`` draw; identical seeds give identical
        :class:`AttackResult` objects across runs and processes.
    project_to_orthogonal:
        Project the least-squares estimate onto the nearest orthogonal matrix
        (via SVD) — uses the attacker's knowledge that RBT is an isometry.
    success_tolerance:
        RMSE below which the reconstruction counts as a breach.
    check_distances:
        Also record the Table-5-style diagnostic (does the reconstruction
        preserve the dissimilarity matrix?).  Costs ``O(m²)``; off by
        default.
    distance_cache:
        Optional :class:`~repro.perf.cache.DistanceCache` the diagnostic
        fetches the original's matrix through, so a suite running several
        attacks computes it once.
    """

    name = "known_sample"

    def __init__(
        self,
        known_indices=None,
        *,
        n_known: int | None = None,
        index_ranges=None,
        random_state=None,
        project_to_orthogonal: bool = True,
        success_tolerance: float = 0.1,
        check_distances: bool = False,
        distance_cache=None,
    ) -> None:
        provided = sum(value is not None for value in (known_indices, n_known, index_ranges))
        if provided != 1:
            raise AttackError("pass exactly one of known_indices, n_known or index_ranges")
        self.known_indices = (
            None
            if known_indices is None
            else [
                check_integer_in_range(int(i), name="known index", minimum=0)
                for i in known_indices
            ]
        )
        if self.known_indices is not None and not self.known_indices:
            raise AttackError("KnownSampleAttack needs at least one known record")
        self.index_ranges = None
        if index_ranges is not None:
            ranges = []
            for entry in index_ranges:
                start, stop = entry
                start = check_integer_in_range(int(start), name="range start", minimum=0)
                stop = check_integer_in_range(int(stop), name="range stop", minimum=start)
                ranges.append((start, stop))
            if not any(stop > start for start, stop in ranges):
                raise AttackError("index_ranges must cover at least one record")
            self.index_ranges = ranges
        self.n_known = (
            None if n_known is None else check_integer_in_range(n_known, name="n_known", minimum=1)
        )
        self.random_state = random_state
        self.project_to_orthogonal = bool(project_to_orthogonal)
        self.success_tolerance = float(success_tolerance)
        self.check_distances = bool(check_distances)
        self.distance_cache = distance_cache

    def resolve_indices(self, n_objects: int) -> list[int]:
        """The known-record rows for an ``n_objects``-row release.

        Explicit indices are validated against the row count; an ``n_known``
        configuration draws them without replacement from a generator seeded
        with ``random_state`` alone, so the draw is reproducible anywhere.
        """
        if self.known_indices is not None:
            for index in self.known_indices:
                if index >= n_objects:
                    raise AttackError(
                        f"known index {index} out of range for {n_objects} object(s)"
                    )
            return list(self.known_indices)
        if self.index_ranges is not None:
            covered: set[int] = set()
            for start, stop in self.index_ranges:
                if stop > n_objects:
                    raise AttackError(
                        f"index range ({start}, {stop}) out of range for {n_objects} object(s)"
                    )
                covered.update(range(start, stop))
            if not covered:
                raise AttackError("index_ranges must cover at least one record")
            return sorted(covered)
        if self.n_known > n_objects:
            raise AttackError(
                f"n_known={self.n_known} exceeds the {n_objects} released object(s)"
            )
        rng = ensure_rng(self.random_state)
        drawn = rng.choice(n_objects, size=self.n_known, replace=False)
        return sorted(int(index) for index in drawn)

    def run(self, released: DataMatrix, original: DataMatrix) -> AttackResult:
        """Execute the attack.

        Unlike the other attacks, ``original`` is required: the attacker's
        side information is the subset of its rows given by
        ``known_indices`` / the ``n_known`` draw; the rest of ``original``
        is used only to score the reconstruction.
        """
        if not isinstance(released, DataMatrix) or not isinstance(original, DataMatrix):
            raise AttackError("KnownSampleAttack expects released and original DataMatrix objects")
        if released.shape != original.shape:
            raise AttackError(
                f"released and original must have the same shape, got {released.shape} and {original.shape}"
            )
        indices = self.resolve_indices(released.n_objects)

        released_known = released.values[indices, :]
        original_known = original.values[indices, :]
        estimate = self.estimate_map(released_known, original_known)

        reconstruction_values = released.values @ estimate
        reconstruction = released.with_values(reconstruction_values)
        error = reconstruction_error(original.values, reconstruction.values)
        details = {
            "n_known_records": len(indices),
            "known_indices": [int(index) for index in indices],
            "projected_to_orthogonal": self.project_to_orthogonal,
            "estimated_map": estimate,
        }
        if self.index_ranges is not None:
            details["index_ranges"] = [[int(start), int(stop)] for start, stop in self.index_ranges]
        if self.check_distances:
            details.update(
                distance_change_diagnostics(
                    original.values,
                    reconstruction.values,
                    distance_cache=self.distance_cache,
                )
            )
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=error <= self.success_tolerance,
            work=len(indices),
            per_attribute_errors=per_attribute_reconstruction_error(
                original.values, reconstruction.values
            ),
            details=details,
        )

    def estimate_map(
        self, released_known: np.ndarray, original_known: np.ndarray
    ) -> np.ndarray:
        """Least-squares ``W`` with ``released_known @ W ≈ original_known``."""
        estimate, *_ = np.linalg.lstsq(released_known, original_known, rcond=None)
        if self.project_to_orthogonal:
            u, _, vt = np.linalg.svd(estimate)
            estimate = u @ vt
        return estimate
