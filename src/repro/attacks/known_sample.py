"""Known-sample (regression) attack on rotation perturbation.

The paper's security argument is purely about the work needed to *guess* the
pairing and angles.  Follow-up literature on rotation-based perturbation
showed that a stronger adversary — one who knows the original values of even
a handful of records (an insider, a public figure whose vitals are known,
linked auxiliary data) — can estimate the whole orthogonal transformation by
solving a least-squares problem, because RBT applies the *same* linear map to
every record.

This attack implements that adversary:

1. the attacker holds ``k`` (released, original) record pairs,
2. estimates the linear map ``W`` minimising ``‖ released·W − original ‖``
   (optionally projecting ``W`` onto the nearest orthogonal matrix, since the
   attacker knows the transformation is a composition of rotations),
3. applies ``W`` to every released record.

With as few known samples as the number of attributes the reconstruction is
essentially exact — an honest demonstration of RBT's main weakness, included
so the library does not overstate the paper's security claims (the
reproduction bands already note the scheme was later shown vulnerable).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range
from ..data import DataMatrix
from ..exceptions import AttackError
from .base import AttackResult, reconstruction_error

__all__ = ["KnownSampleAttack"]


class KnownSampleAttack:
    """Estimate the rotation from known (original, released) record pairs.

    Parameters
    ----------
    known_indices:
        Row indices of the records the attacker knows in the original data.
    project_to_orthogonal:
        Project the least-squares estimate onto the nearest orthogonal matrix
        (via SVD) — uses the attacker's knowledge that RBT is an isometry.
    success_tolerance:
        RMSE below which the reconstruction counts as a breach.
    """

    name = "known_sample"

    def __init__(
        self,
        known_indices,
        *,
        project_to_orthogonal: bool = True,
        success_tolerance: float = 0.1,
    ) -> None:
        self.known_indices = [
            check_integer_in_range(int(i), name="known index", minimum=0) for i in known_indices
        ]
        if not self.known_indices:
            raise AttackError("KnownSampleAttack needs at least one known record")
        self.project_to_orthogonal = bool(project_to_orthogonal)
        self.success_tolerance = float(success_tolerance)

    def run(self, released: DataMatrix, original: DataMatrix) -> AttackResult:
        """Execute the attack.

        Unlike the other attacks, ``original`` is required: the attacker's
        side information is the subset of its rows given by
        ``known_indices``; the rest of ``original`` is used only to score the
        reconstruction.
        """
        if not isinstance(released, DataMatrix) or not isinstance(original, DataMatrix):
            raise AttackError("KnownSampleAttack expects released and original DataMatrix objects")
        if released.shape != original.shape:
            raise AttackError(
                f"released and original must have the same shape, got {released.shape} and {original.shape}"
            )
        n_objects = released.n_objects
        for index in self.known_indices:
            if index >= n_objects:
                raise AttackError(f"known index {index} out of range for {n_objects} object(s)")

        released_known = released.values[self.known_indices, :]
        original_known = original.values[self.known_indices, :]

        # Least-squares estimate of W such that released @ W ≈ original.
        estimate, *_ = np.linalg.lstsq(released_known, original_known, rcond=None)
        if self.project_to_orthogonal:
            u, _, vt = np.linalg.svd(estimate)
            estimate = u @ vt

        reconstruction_values = released.values @ estimate
        reconstruction = released.with_values(reconstruction_values)
        error = reconstruction_error(original.values, reconstruction.values)
        return AttackResult(
            name=self.name,
            reconstruction=reconstruction,
            error=error,
            succeeded=error <= self.success_tolerance,
            work=len(self.known_indices),
            details={
                "n_known_records": len(self.known_indices),
                "projected_to_orthogonal": self.project_to_orthogonal,
                "estimated_map": estimate,
            },
        )
