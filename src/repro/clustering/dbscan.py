"""DBSCAN density-based clustering.

DBSCAN's core/border/noise decisions depend only on which pairwise distances
fall below ``eps`` — another purely distance-based criterion, so an isometric
transformation such as RBT leaves the clustering unchanged (core points stay
core points, noise stays noise).  Included to demonstrate Corollary 1 beyond
centroid-based algorithms.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .._validation import check_integer_in_range, check_positive
from ..exceptions import ClusteringError
from ..metrics.distance import pairwise_distances
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["DBSCAN"]

#: Label assigned to noise points.
NOISE_LABEL = -1


class DBSCAN(ClusteringAlgorithm):
    """Density-Based Spatial Clustering of Applications with Noise.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum number of neighbours (including the point itself) for a point
        to be a core point.
    metric:
        Distance metric for the neighbourhood computation.
    precomputed:
        When ``True`` the input to :meth:`fit` is a precomputed dissimilarity
        matrix.
    """

    name = "dbscan"

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        *,
        metric: str = "euclidean",
        precomputed: bool = False,
    ) -> None:
        self.eps = check_positive(eps, name="eps")
        self.min_samples = check_integer_in_range(min_samples, name="min_samples", minimum=1)
        self.metric = metric
        self.precomputed = bool(precomputed)

    def fit(self, data) -> ClusteringResult:
        """Cluster ``data``; noise points receive the label ``-1``."""
        if self.precomputed:
            distances = self._as_array(data)
            if distances.shape[0] != distances.shape[1]:
                raise ClusteringError(
                    f"a precomputed dissimilarity matrix must be square, got {distances.shape}"
                )
        else:
            distances = pairwise_distances(self._as_array(data), metric=self.metric)
        n_objects = distances.shape[0]
        # One boolean adjacency matrix replaces the per-index list
        # comprehensions; row sums give the neighbour counts directly.
        adjacency = distances <= self.eps
        is_core = adjacency.sum(axis=1) >= self.min_samples

        labels = np.full(n_objects, NOISE_LABEL, dtype=int)
        cluster_id = 0
        for index in range(n_objects):
            if labels[index] != NOISE_LABEL or not is_core[index]:
                continue
            # Breadth-first expansion of a new cluster from this core point.
            labels[index] = cluster_id
            queue = deque(np.flatnonzero(adjacency[index]).tolist())
            while queue:
                neighbour = queue.popleft()
                if labels[neighbour] == NOISE_LABEL:
                    labels[neighbour] = cluster_id
                    if is_core[neighbour]:
                        queue.extend(np.flatnonzero(adjacency[neighbour]).tolist())
            cluster_id += 1

        n_clusters = int(cluster_id)
        return ClusteringResult(
            labels=labels,
            n_clusters=n_clusters,
            n_iterations=0,
            inertia=float("nan"),
            converged=True,
            metadata={
                "n_noise": int(np.sum(labels == NOISE_LABEL)),
                "core_mask": is_core,
            },
        )
