"""DBSCAN density-based clustering.

DBSCAN's core/border/noise decisions depend only on which pairwise distances
fall below ``eps`` — another purely distance-based criterion, so an isometric
transformation such as RBT leaves the clustering unchanged (core points stay
core points, noise stays noise).  Included to demonstrate Corollary 1 beyond
centroid-based algorithms.

Neighborhoods come from the chunked kernels in :mod:`repro.perf.kernels` as
compressed (CSR) index lists: distances are computed block-row-wise under
``memory_budget_bytes`` and thresholded on the fly, so neither the full
``(m, m)`` distance matrix nor a dense boolean adjacency is materialized.
That bounds peak memory by the budget plus the neighbor lists and makes
``m`` in the tens of thousands practical; the cluster expansion itself walks
the index lists and is identical to a dense-adjacency breadth-first search.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .._validation import check_integer_in_range, check_positive
from ..exceptions import ClusteringError
from ..perf.kernels import radius_neighbors_blocked, radius_neighbors_from_distances
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["DBSCAN"]

#: Label assigned to noise points.
NOISE_LABEL = -1


class DBSCAN(ClusteringAlgorithm):
    """Density-Based Spatial Clustering of Applications with Noise.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum number of neighbours (including the point itself) for a point
        to be a core point.
    metric:
        Distance metric for the neighbourhood computation.
    precomputed:
        When ``True`` the input to :meth:`fit` is a precomputed dissimilarity
        matrix.
    memory_budget_bytes:
        Cap on the largest temporary the chunked neighborhood kernel may
        materialize (default 64 MiB; see :mod:`repro.perf.kernels`).
    distance_cache:
        Optional :class:`~repro.perf.cache.DistanceCache`.  DBSCAN only
        *reads* the cache: if another consumer (k-medoids, hierarchical)
        already paid for the full matrix of this (data, metric), it is
        reused and thresholded block-wise; otherwise neighborhoods are built
        directly from the coordinates and the O(m²) matrix is never
        materialized — attaching a cache can never break the
        ``memory_budget_bytes`` bound.
    """

    name = "dbscan"

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        *,
        metric: str = "euclidean",
        precomputed: bool = False,
        memory_budget_bytes: int | None = None,
        distance_cache=None,
    ) -> None:
        self.eps = check_positive(eps, name="eps")
        self.min_samples = check_integer_in_range(min_samples, name="min_samples", minimum=1)
        self.metric = metric
        self.precomputed = bool(precomputed)
        self.memory_budget_bytes = memory_budget_bytes
        self.distance_cache = distance_cache

    def fit(self, data) -> ClusteringResult:
        """Cluster ``data``; noise points receive the label ``-1``."""
        if self.precomputed:
            distances = self._as_array(data)
            if distances.shape[0] != distances.shape[1]:
                raise ClusteringError(
                    f"a precomputed dissimilarity matrix must be square, got {distances.shape}"
                )
            n_objects = distances.shape[0]
            indptr, indices = radius_neighbors_from_distances(
                distances, self.eps, memory_budget_bytes=self.memory_budget_bytes
            )
        else:
            array = self._as_array(data)
            n_objects = array.shape[0]
            cached = (
                self.distance_cache.peek(array, metric=self.metric)
                if self.distance_cache is not None
                else None
            )
            if cached is not None:
                indptr, indices = radius_neighbors_from_distances(
                    cached, self.eps, memory_budget_bytes=self.memory_budget_bytes
                )
            else:
                indptr, indices = radius_neighbors_blocked(
                    array,
                    self.eps,
                    metric=self.metric,
                    memory_budget_bytes=self.memory_budget_bytes,
                )
        is_core = np.diff(indptr) >= self.min_samples

        labels = np.full(n_objects, NOISE_LABEL, dtype=int)
        cluster_id = 0
        for index in range(n_objects):
            if labels[index] != NOISE_LABEL or not is_core[index]:
                continue
            # Breadth-first expansion of a new cluster from this core point.
            labels[index] = cluster_id
            queue = deque(indices[indptr[index] : indptr[index + 1]].tolist())
            while queue:
                neighbour = queue.popleft()
                if labels[neighbour] == NOISE_LABEL:
                    labels[neighbour] = cluster_id
                    if is_core[neighbour]:
                        queue.extend(indices[indptr[neighbour] : indptr[neighbour + 1]].tolist())
            cluster_id += 1

        n_clusters = int(cluster_id)
        return ClusteringResult(
            labels=labels,
            n_clusters=n_clusters,
            n_iterations=0,
            inertia=float("nan"),
            converged=True,
            metadata={
                "n_noise": int(np.sum(labels == NOISE_LABEL)),
                # A copy: the mask must stay valid even if the caller mutates it.
                "core_mask": is_core.copy(),
            },
        )
