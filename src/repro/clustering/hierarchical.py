"""Agglomerative hierarchical clustering (single / complete / average / Ward).

Hierarchical clustering consumes only pairwise distances, so — like
k-medoids — it exercises Corollary 1 directly: an identical dissimilarity
matrix forces an identical dendrogram and therefore identical flat clusters
at any cut.

Two strategies implement the same Lance–Williams agglomeration:

* ``strategy="nn-chain"`` (default) — the nearest-neighbor-chain algorithm.
  All four supported linkages are *reducible*, so reciprocal nearest
  neighbors can be merged as soon as they are found and the resulting
  dendrogram is the one the greedy closest-pair algorithm builds.  The chain
  walk performs O(n) nearest-neighbor lookups of O(n) each and every merge
  updates one row of the working matrix in place, for O(n²) total time and
  no per-merge submatrix copies.
* ``strategy="naive"`` — the seed implementation: re-scan the active
  O(a²) submatrix for the globally closest pair before every merge (O(n³)
  total).  Kept as the reference the fast path is cross-checked against.

Merge histories are reported identically by both strategies (same pairs in
the same order; see ``_sorted_history`` for how the chain's discovery order
is canonicalized).  For single/complete linkage the merge distances are
bitwise equal; for average/ward they agree to floating-point round-off
because the two strategies associate the same weighted sums in a different
order.  One caveat: when merge distances tie *exactly*, the greedy strategy
resolves the tie globally (lexicographically smallest cluster pair) while
the chain resolves it locally, and the two can return different — equally
valid — dendrograms.  The simple tie patterns pinned by tests (duplicate
points, a 1-D unit lattice, well-separated equidistant pairs) agree;
richer tie structure — e.g. multi-dimensional integer grids — can
legitimately diverge, so pin ``strategy="naive"`` if exact seed
reproduction on heavily tied data matters.  Continuous data is tie-free
almost surely.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ClusteringError
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["AgglomerativeClustering"]

_LINKAGES = ("single", "complete", "average", "ward")
_STRATEGIES = ("nn-chain", "naive")


class AgglomerativeClustering(ClusteringAlgorithm):
    """Bottom-up hierarchical clustering cut at ``n_clusters``.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to return (the dendrogram is cut when this
        many clusters remain).
    linkage:
        ``single``, ``complete``, ``average`` or ``ward``.
    metric:
        Distance metric for the initial dissimilarity matrix.  Ward linkage
        requires ``euclidean``.
    precomputed:
        When ``True`` the input to :meth:`fit` is a precomputed dissimilarity
        matrix.
    strategy:
        ``nn-chain`` (default, O(n²)) or ``naive`` (the seed's O(n³)
        closest-pair rescan).  Both produce the same merge history and
        labels; see the module docstring for the exact guarantees.
    distance_cache:
        Optional :class:`~repro.perf.cache.DistanceCache` consulted for the
        initial dissimilarity matrix when ``precomputed`` is ``False``.
    """

    name = "hierarchical"

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        linkage: str = "average",
        metric: str = "euclidean",
        precomputed: bool = False,
        strategy: str = "nn-chain",
        distance_cache=None,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        if linkage not in _LINKAGES:
            raise ClusteringError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        if linkage == "ward" and metric != "euclidean":
            raise ClusteringError("ward linkage requires the euclidean metric")
        if strategy not in _STRATEGIES:
            raise ClusteringError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        self.linkage = linkage
        self.metric = metric
        self.precomputed = bool(precomputed)
        self.strategy = strategy
        self.distance_cache = distance_cache

    def fit(self, data) -> ClusteringResult:
        """Agglomerate ``data`` until ``n_clusters`` clusters remain."""
        if self.precomputed:
            distances = self._as_array(data).copy()
            if distances.shape[0] != distances.shape[1]:
                raise ClusteringError(
                    f"a precomputed dissimilarity matrix must be square, got {distances.shape}"
                )
        else:
            distances = self._pairwise(self._as_array(data))
        n_objects = distances.shape[0]
        if n_objects < self.n_clusters:
            raise ClusteringError(
                f"cannot form {self.n_clusters} cluster(s) from {n_objects} object(s)"
            )
        if self.strategy == "naive":
            return self._fit_naive(distances)
        return self._fit_nn_chain(distances)

    # ------------------------------------------------------------------ #
    # Fast path: nearest-neighbor chain
    # ------------------------------------------------------------------ #
    def _fit_nn_chain(self, distances: np.ndarray) -> ClusteringResult:
        n_objects = distances.shape[0]
        raw = self._nn_chain_merges(distances) if n_objects > self.n_clusters else []
        history = self._sorted_history(raw, n_objects)

        # Flat cut: replay the (sorted) merges through a union-find whose
        # representative is the minimum member — exactly the cluster id the
        # naive strategy carries, so the label numbering matches it.
        parent = np.arange(n_objects)

        def find(index: int) -> int:
            root = index
            while parent[root] != root:
                root = parent[root]
            while parent[index] != root:
                parent[index], index = root, int(parent[index])
            return root

        for cluster_a, cluster_b, _ in history:
            root_a, root_b = find(cluster_a), find(cluster_b)
            keep, drop = (root_a, root_b) if root_a < root_b else (root_b, root_a)
            parent[drop] = keep

        roots = np.fromiter((find(index) for index in range(n_objects)), dtype=int)
        labels = np.searchsorted(np.unique(roots), roots)
        return ClusteringResult(
            labels=labels,
            n_clusters=int(np.unique(roots).size),
            n_iterations=len(history),
            inertia=float("nan"),
            converged=True,
            metadata={"merge_history": history, "linkage": self.linkage},
        )

    def _nn_chain_merges(self, distances: np.ndarray) -> list[tuple[int, int, float]]:
        """Full dendrogram via the NN-chain walk; merges in discovery order.

        The working matrix is updated strictly in place: one merge rewrites
        the kept representative's row/column over the active columns and
        retires the dropped representative's row/column to ``inf``.  Inactive
        rows and columns therefore always read ``inf``, which lets the
        nearest-neighbor lookup be a plain ``argmin`` over the full row.
        """
        n_objects = distances.shape[0]
        working = distances.astype(float, copy=True)
        np.fill_diagonal(working, np.inf)
        sizes = np.ones(n_objects)
        min_member = np.arange(n_objects)
        active = np.ones(n_objects, dtype=bool)

        merges: list[tuple[int, int, float]] = []
        chain: list[int] = []
        while len(merges) < n_objects - 1:
            if not chain:
                chain.append(int(np.argmax(active)))  # smallest active representative
            current = chain[-1]
            row = working[current]
            neighbor = int(np.argmin(row))
            closest = row[neighbor]
            if len(chain) >= 2 and row[chain[-2]] == closest:
                neighbor = chain[-2]  # prefer the predecessor on exact ties
            if len(chain) >= 2 and neighbor == chain[-2]:
                chain.pop()
                chain.pop()
                merges.append(
                    self._merge_fast(working, sizes, min_member, active, current, neighbor)
                )
            else:
                chain.append(neighbor)
        return merges

    def _merge_fast(
        self,
        working: np.ndarray,
        sizes: np.ndarray,
        min_member: np.ndarray,
        active: np.ndarray,
        first: int,
        second: int,
    ) -> tuple[int, int, float]:
        """Merge two representatives in place; return the history entry."""
        merge_distance = float(working[first, second])
        size_a, size_b = sizes[first], sizes[second]
        active[first] = False
        active[second] = False
        columns = np.flatnonzero(active)
        d_a = working[first, columns]
        d_b = working[second, columns]
        if self.linkage == "single":
            updated = np.minimum(d_a, d_b)
        elif self.linkage == "complete":
            updated = np.maximum(d_a, d_b)
        elif self.linkage == "average":
            updated = (size_a * d_a + size_b * d_b) / (size_a + size_b)
        else:  # ward — same expression, elementwise, as the naive scalar loop
            size_o = sizes[columns]
            total = size_a + size_b + size_o
            d_ab = working[first, second]
            updated = np.sqrt(
                ((size_a + size_o) * d_a**2 + (size_b + size_o) * d_b**2 - size_o * d_ab**2)
                / total
            )
        working[first, columns] = updated
        working[columns, first] = updated
        working[second, :] = np.inf
        working[:, second] = np.inf
        active[first] = True
        sizes[first] = size_a + size_b
        id_a, id_b = int(min_member[first]), int(min_member[second])
        if id_a > id_b:
            id_a, id_b = id_b, id_a
        min_member[first] = id_a
        return (id_a, id_b, merge_distance)

    def _sorted_history(
        self, raw: list[tuple[int, int, float]], n_objects: int
    ) -> list[tuple[int, int, float]]:
        """Canonicalize the chain's discovery order into the naive merge order.

        Reducible linkages admit no inversions, so the greedy strategy merges
        in non-decreasing distance; sorting by ``(distance, id_a, id_b)``
        recovers that order (the id tie-break matches the naive ``argmin``'s
        row-major scan over the sorted active submatrix).  Inputs are
        validated finite, but ward on a non-metric precomputed matrix can
        still produce NaN merge distances in either strategy; dropping them
        mirrors the naive strategy's stop at the first non-finite closest
        pair.  The cut keeps only the first ``n − n_clusters`` merges.
        """
        finite = [entry for entry in raw if np.isfinite(entry[2])]
        finite.sort(key=lambda entry: (entry[2], entry[0], entry[1]))
        return finite[: max(0, n_objects - self.n_clusters)]

    # ------------------------------------------------------------------ #
    # Seed path: closest-pair rescan (the cross-check reference)
    # ------------------------------------------------------------------ #
    def _fit_naive(self, distances: np.ndarray) -> ClusteringResult:
        n_objects = distances.shape[0]
        # Active cluster bookkeeping: each active cluster keeps its member list and size.
        members: dict[int, list[int]] = {index: [index] for index in range(n_objects)}
        sizes: dict[int, int] = {index: 1 for index in range(n_objects)}
        working = distances.astype(float).copy()
        np.fill_diagonal(working, np.inf)
        active = set(range(n_objects))
        merges: list[tuple[int, int, float]] = []

        while len(active) > self.n_clusters:
            pair = self._closest_pair(working, active)
            if pair is None:
                break
            cluster_a, cluster_b, merge_distance = pair
            merges.append((cluster_a, cluster_b, merge_distance))
            self._merge(working, members, sizes, active, cluster_a, cluster_b)

        labels = np.empty(n_objects, dtype=int)
        for label, cluster in enumerate(sorted(active)):
            labels[members[cluster]] = label
        return ClusteringResult(
            labels=labels,
            n_clusters=len(active),
            n_iterations=len(merges),
            inertia=float("nan"),
            converged=True,
            metadata={"merge_history": merges, "linkage": self.linkage},
        )

    @staticmethod
    def _closest_pair(working: np.ndarray, active: set[int]) -> tuple[int, int, float] | None:
        active_list = sorted(active)
        sub = working[np.ix_(active_list, active_list)]
        flat_index = int(np.argmin(sub))
        row, col = divmod(flat_index, sub.shape[1])
        distance = float(sub[row, col])
        if not np.isfinite(distance):
            return None
        cluster_a, cluster_b = active_list[row], active_list[col]
        if cluster_a > cluster_b:
            cluster_a, cluster_b = cluster_b, cluster_a
        return cluster_a, cluster_b, distance

    def _merge(
        self,
        working: np.ndarray,
        members: dict[int, list[int]],
        sizes: dict[int, int],
        active: set[int],
        cluster_a: int,
        cluster_b: int,
    ) -> None:
        """Merge ``cluster_b`` into ``cluster_a`` using the Lance–Williams update."""
        size_a, size_b = sizes[cluster_a], sizes[cluster_b]
        for other in list(active):
            if other in (cluster_a, cluster_b):
                continue
            d_a = working[cluster_a, other]
            d_b = working[cluster_b, other]
            if self.linkage == "single":
                updated = min(d_a, d_b)
            elif self.linkage == "complete":
                updated = max(d_a, d_b)
            elif self.linkage == "average":
                updated = (size_a * d_a + size_b * d_b) / (size_a + size_b)
            else:  # ward
                size_o = sizes[other]
                total = size_a + size_b + size_o
                d_ab = working[cluster_a, cluster_b]
                updated = np.sqrt(
                    ((size_a + size_o) * d_a**2 + (size_b + size_o) * d_b**2 - size_o * d_ab**2)
                    / total
                )
            working[cluster_a, other] = updated
            working[other, cluster_a] = updated
        members[cluster_a] = members[cluster_a] + members[cluster_b]
        sizes[cluster_a] = size_a + size_b
        del members[cluster_b]
        del sizes[cluster_b]
        active.discard(cluster_b)
        working[cluster_b, :] = np.inf
        working[:, cluster_b] = np.inf
        working[cluster_a, cluster_a] = np.inf
