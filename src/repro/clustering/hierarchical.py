"""Agglomerative hierarchical clustering (single / complete / average / Ward).

Hierarchical clustering consumes only pairwise distances, so — like
k-medoids — it exercises Corollary 1 directly: an identical dissimilarity
matrix forces an identical dendrogram and therefore identical flat clusters
at any cut.  The implementation is a straightforward Lance–Williams update
over the dissimilarity matrix.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ClusteringError
from ..metrics.distance import pairwise_distances
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["AgglomerativeClustering"]

_LINKAGES = ("single", "complete", "average", "ward")


class AgglomerativeClustering(ClusteringAlgorithm):
    """Bottom-up hierarchical clustering cut at ``n_clusters``.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to return (the dendrogram is cut when this
        many clusters remain).
    linkage:
        ``single``, ``complete``, ``average`` or ``ward``.
    metric:
        Distance metric for the initial dissimilarity matrix.  Ward linkage
        requires ``euclidean``.
    precomputed:
        When ``True`` the input to :meth:`fit` is a precomputed dissimilarity
        matrix.
    """

    name = "hierarchical"

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        linkage: str = "average",
        metric: str = "euclidean",
        precomputed: bool = False,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        if linkage not in _LINKAGES:
            raise ClusteringError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        if linkage == "ward" and metric != "euclidean":
            raise ClusteringError("ward linkage requires the euclidean metric")
        self.linkage = linkage
        self.metric = metric
        self.precomputed = bool(precomputed)

    def fit(self, data) -> ClusteringResult:
        """Agglomerate ``data`` until ``n_clusters`` clusters remain."""
        if self.precomputed:
            distances = self._as_array(data).copy()
            if distances.shape[0] != distances.shape[1]:
                raise ClusteringError(
                    f"a precomputed dissimilarity matrix must be square, got {distances.shape}"
                )
        else:
            distances = pairwise_distances(self._as_array(data), metric=self.metric)
        n_objects = distances.shape[0]
        if n_objects < self.n_clusters:
            raise ClusteringError(
                f"cannot form {self.n_clusters} cluster(s) from {n_objects} object(s)"
            )

        # Active cluster bookkeeping: each active cluster keeps its member list and size.
        members: dict[int, list[int]] = {index: [index] for index in range(n_objects)}
        sizes: dict[int, int] = {index: 1 for index in range(n_objects)}
        working = distances.astype(float).copy()
        np.fill_diagonal(working, np.inf)
        active = set(range(n_objects))
        merges: list[tuple[int, int, float]] = []

        while len(active) > self.n_clusters:
            pair = self._closest_pair(working, active)
            if pair is None:
                break
            cluster_a, cluster_b, merge_distance = pair
            merges.append((cluster_a, cluster_b, merge_distance))
            self._merge(working, members, sizes, active, cluster_a, cluster_b)

        labels = np.empty(n_objects, dtype=int)
        for label, cluster in enumerate(sorted(active)):
            labels[members[cluster]] = label
        return ClusteringResult(
            labels=labels,
            n_clusters=len(active),
            n_iterations=len(merges),
            inertia=float("nan"),
            converged=True,
            metadata={"merge_history": merges, "linkage": self.linkage},
        )

    @staticmethod
    def _closest_pair(working: np.ndarray, active: set[int]) -> tuple[int, int, float] | None:
        active_list = sorted(active)
        sub = working[np.ix_(active_list, active_list)]
        flat_index = int(np.argmin(sub))
        row, col = divmod(flat_index, sub.shape[1])
        distance = float(sub[row, col])
        if not np.isfinite(distance):
            return None
        cluster_a, cluster_b = active_list[row], active_list[col]
        if cluster_a > cluster_b:
            cluster_a, cluster_b = cluster_b, cluster_a
        return cluster_a, cluster_b, distance

    def _merge(
        self,
        working: np.ndarray,
        members: dict[int, list[int]],
        sizes: dict[int, int],
        active: set[int],
        cluster_a: int,
        cluster_b: int,
    ) -> None:
        """Merge ``cluster_b`` into ``cluster_a`` using the Lance–Williams update."""
        size_a, size_b = sizes[cluster_a], sizes[cluster_b]
        for other in list(active):
            if other in (cluster_a, cluster_b):
                continue
            d_a = working[cluster_a, other]
            d_b = working[cluster_b, other]
            if self.linkage == "single":
                updated = min(d_a, d_b)
            elif self.linkage == "complete":
                updated = max(d_a, d_b)
            elif self.linkage == "average":
                updated = (size_a * d_a + size_b * d_b) / (size_a + size_b)
            else:  # ward
                size_o = sizes[other]
                total = size_a + size_b + size_o
                d_ab = working[cluster_a, cluster_b]
                updated = np.sqrt(
                    ((size_a + size_o) * d_a**2 + (size_b + size_o) * d_b**2 - size_o * d_ab**2)
                    / total
                )
            working[cluster_a, other] = updated
            working[other, cluster_a] = updated
        members[cluster_a] = members[cluster_a] + members[cluster_b]
        sizes[cluster_a] = size_a + size_b
        del members[cluster_b]
        del sizes[cluster_b]
        active.discard(cluster_b)
        working[cluster_b, :] = np.inf
        working[:, cluster_b] = np.inf
        working[cluster_a, cluster_a] = np.inf
