"""Distance-based clustering algorithms implemented from scratch.

Corollary 1 of the paper states that RBT is *independent of the clustering
algorithm*: any distance-based algorithm produces identical clusters on the
original and on the transformed data.  To exercise that claim this package
provides four classic algorithms, all built on the same distance substrate
(:mod:`repro.metrics.distance`) and all exposing the same
``fit`` / ``fit_predict`` interface:

* :class:`KMeans` — Lloyd's algorithm with random or k-means++ initialization.
* :class:`KMedoids` — PAM-style alternation working purely on the
  dissimilarity matrix.
* :class:`AgglomerativeClustering` — bottom-up hierarchical clustering with
  single / complete / average / Ward linkage (O(n²) nearest-neighbor-chain
  by default, the seed's closest-pair rescan as ``strategy="naive"``).
* :class:`DBSCAN` — density-based clustering (labels noise as ``-1``),
  built on chunked CSR neighborhoods so large ``m`` never materializes a
  dense adjacency.

The three dissimilarity-matrix consumers accept a shared
:class:`~repro.perf.cache.DistanceCache` (``distance_cache=``) so one
(dataset, metric) matrix serves every algorithm in a pipeline run.
"""

from .base import ClusteringAlgorithm, ClusteringResult
from .dbscan import DBSCAN
from .hierarchical import AgglomerativeClustering
from .kmeans import KMeans
from .kmedoids import KMedoids

__all__ = [
    "ClusteringAlgorithm",
    "ClusteringResult",
    "KMeans",
    "KMedoids",
    "AgglomerativeClustering",
    "DBSCAN",
]
