"""Common interface for the clustering algorithms.

Every algorithm consumes an ``(m, n)`` data matrix (raw array or
:class:`~repro.data.DataMatrix`), produces integer labels, and records its
run in a :class:`ClusteringResult`.  Keeping a single entry point makes the
Corollary 1 experiments a simple loop over algorithm instances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_matrix
from ..data import DataMatrix
from ..metrics.distance import pairwise_distances

__all__ = ["ClusteringAlgorithm", "ClusteringResult"]


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of a clustering run.

    Attributes
    ----------
    labels:
        Integer cluster label per object.  DBSCAN uses ``-1`` for noise.
    n_clusters:
        Number of distinct (non-noise) clusters found.
    n_iterations:
        Iterations performed by iterative algorithms (0 otherwise).
    inertia:
        Within-cluster sum of squared distances where meaningful, else ``nan``.
    converged:
        Whether the algorithm reached its convergence criterion (always
        ``True`` for non-iterative algorithms).
    metadata:
        Algorithm-specific extras (centroids, medoid indices, merge history).
    """

    labels: np.ndarray
    n_clusters: int
    n_iterations: int = 0
    inertia: float = float("nan")
    converged: bool = True
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", np.asarray(self.labels, dtype=int))


class ClusteringAlgorithm(ABC):
    """Abstract base class for the distance-based clustering algorithms."""

    #: Human-readable algorithm name used in reports and benchmark output.
    name: str = "clustering"

    #: Optional :class:`~repro.perf.cache.DistanceCache` shared across
    #: algorithms; when set, :meth:`_pairwise` serves the dissimilarity
    #: matrix from it instead of recomputing.  ``PPCPipeline`` and the
    #: experiment runner inject a per-run cache here so every algorithm
    #: clustering the same (dataset, metric) shares one matrix.
    distance_cache = None

    @abstractmethod
    def fit(self, data) -> ClusteringResult:
        """Cluster ``data`` and return a :class:`ClusteringResult`."""

    def fit_predict(self, data) -> np.ndarray:
        """Cluster ``data`` and return only the label vector."""
        return self.fit(data).labels

    @staticmethod
    def _as_array(data) -> np.ndarray:
        """Convert supported inputs to a validated float array."""
        if isinstance(data, DataMatrix):
            return data.values.copy()
        return as_float_matrix(data, name="data")

    def _pairwise(self, array: np.ndarray) -> np.ndarray:
        """Dissimilarity matrix of ``array`` under ``self.metric``.

        Served from :attr:`distance_cache` when one is attached (the cached
        matrix is read-only — copy before mutating), computed fresh
        otherwise.  Cached and uncached paths produce byte-identical values.
        """
        metric = getattr(self, "metric", "euclidean")
        if self.distance_cache is not None:
            return self.distance_cache.pairwise(array, metric=metric)
        return pairwise_distances(array, metric=metric)
