"""K-medoids clustering (PAM-style alternation on the dissimilarity matrix).

Unlike k-means, k-medoids works purely from the dissimilarity matrix
(Equation 5) — it never averages raw coordinates — which makes it the
sharpest possible test of Corollary 1: if the dissimilarity matrices of the
original and the transformed data are identical, k-medoids *must* produce the
same clusters, including the same medoid objects.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..exceptions import ClusteringError
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["KMedoids"]


class KMedoids(ClusteringAlgorithm):
    """Partitioning Around Medoids (alternating assignment / medoid update).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    metric:
        Distance used to build the dissimilarity matrix (``euclidean`` or
        ``manhattan``, Section 3.3).
    max_iterations:
        Cap on assignment/update alternations.
    n_init:
        Number of random restarts; the lowest-cost run wins.
    random_state:
        Seed / generator for reproducible medoid initialization.
    precomputed:
        When ``True`` the input to :meth:`fit` is interpreted as a
        precomputed dissimilarity matrix rather than raw coordinates.
    distance_cache:
        Optional :class:`~repro.perf.cache.DistanceCache` consulted for the
        dissimilarity matrix when ``precomputed`` is ``False``.
    """

    name = "kmedoids"

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        metric: str = "euclidean",
        max_iterations: int = 300,
        n_init: int = 5,
        random_state=None,
        precomputed: bool = False,
        distance_cache=None,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        self.metric = metric
        self.max_iterations = check_integer_in_range(
            max_iterations, name="max_iterations", minimum=1
        )
        self.n_init = check_integer_in_range(n_init, name="n_init", minimum=1)
        self.random_state = random_state
        self.precomputed = bool(precomputed)
        self.distance_cache = distance_cache

    def fit(self, data) -> ClusteringResult:
        """Run PAM on ``data`` (coordinates or a precomputed dissimilarity matrix)."""
        if self.precomputed:
            distances = self._as_array(data)
            if distances.shape[0] != distances.shape[1]:
                raise ClusteringError(
                    f"a precomputed dissimilarity matrix must be square, got {distances.shape}"
                )
        else:
            array = self._as_array(data)
            distances = self._pairwise(array)
        n_objects = distances.shape[0]
        if n_objects < self.n_clusters:
            raise ClusteringError(
                f"cannot find {self.n_clusters} cluster(s) among {n_objects} object(s)"
            )
        rng = ensure_rng(self.random_state)

        best: ClusteringResult | None = None
        for _ in range(self.n_init):
            result = self._single_run(distances, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def _single_run(self, distances: np.ndarray, rng: np.random.Generator) -> ClusteringResult:
        n_objects = distances.shape[0]
        medoids = np.sort(rng.choice(n_objects, size=self.n_clusters, replace=False))
        labels = distances[:, medoids].argmin(axis=1)
        converged = False
        iteration = 0
        # `iteration` is read after the loop (n_iterations in the result).
        for iteration in range(1, self.max_iterations + 1):  # noqa: B007
            new_medoids = medoids.copy()
            # The update stays a per-cluster loop on purpose: a single
            # `distances @ membership` product computes all cluster costs at
            # once but sums each row in a different order than the member
            # subset reduction below, and the last-ulp differences flip
            # exact cost ties (e.g. duplicated points) to a different
            # medoid — breaking run-for-run reproducibility with the seed.
            # The loop body itself is fully vectorized per cluster.
            empty_clusters = []
            for cluster in range(self.n_clusters):
                members = np.flatnonzero(labels == cluster)
                if members.size == 0:
                    empty_clusters.append(cluster)
                    continue
                within = distances[np.ix_(members, members)]
                new_medoids[cluster] = members[int(within.sum(axis=1).argmin())]
            # Re-seed empty clusters only after every member-based update, at
            # the object farthest from its current medoid.  Objects already
            # serving as a medoid — carried over, freshly chosen above, or
            # re-seeded earlier in this pass — are excluded: when distances
            # tie (duplicate points) a bare argmax lands on another cluster's
            # medoid and the duplicated medoid permanently collapses the two
            # clusters.
            if empty_clusters:
                costs_to_medoid = distances[np.arange(n_objects), medoids[labels]]
                for cluster in empty_clusters:
                    candidates = costs_to_medoid.copy()
                    candidates[medoids] = -np.inf
                    candidates[new_medoids] = -np.inf
                    choice = int(candidates.argmax())
                    if np.isfinite(candidates[choice]):
                        new_medoids[cluster] = choice
            new_labels = distances[:, new_medoids].argmin(axis=1)
            if np.array_equal(new_medoids, medoids) and np.array_equal(new_labels, labels):
                converged = True
                break
            medoids, labels = new_medoids, new_labels
        cost = float(distances[np.arange(n_objects), medoids[labels]].sum())
        return ClusteringResult(
            labels=labels,
            n_clusters=int(np.unique(labels).size),
            n_iterations=iteration,
            inertia=cost,
            converged=converged,
            metadata={"medoid_indices": medoids.copy()},
        )
