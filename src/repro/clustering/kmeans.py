"""K-means clustering (Lloyd's algorithm) with k-means++ initialization.

K-means is the canonical distance-based clustering algorithm and the one the
related work ([13]) privacy-preserves directly, so it is the primary
algorithm used by the Corollary 1 experiments.  The implementation is
deterministic given a ``random_state`` and supports multiple restarts
(``n_init``) keeping the lowest-inertia solution.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer_in_range, check_positive, ensure_rng
from ..exceptions import ClusteringError, ConvergenceError
from ..perf.kernels import assign_nearest_center
from .base import ClusteringAlgorithm, ClusteringResult

__all__ = ["KMeans"]


class KMeans(ClusteringAlgorithm):
    """Lloyd's k-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    init:
        ``"k-means++"`` (default) or ``"random"`` centroid initialization.
    n_init:
        Number of independent restarts; the run with the lowest inertia wins.
    max_iterations:
        Iteration cap per restart.
    tolerance:
        Convergence threshold on the total centroid movement between
        iterations.
    random_state:
        Seed / generator for reproducible initialization.
    raise_on_no_convergence:
        When ``True`` a :class:`~repro.exceptions.ConvergenceError` is raised
        if no restart converges within ``max_iterations``; when ``False``
        (default) the best non-converged solution is returned with
        ``converged=False``.

    Examples
    --------
    >>> from repro.data.datasets import make_blobs
    >>> data, _ = make_blobs(n_objects=90, n_clusters=3, random_state=0)
    >>> result = KMeans(n_clusters=3, random_state=0).fit(data)
    >>> result.n_clusters
    3
    """

    name = "kmeans"

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        init: str = "k-means++",
        n_init: int = 10,
        max_iterations: int = 300,
        tolerance: float = 1e-6,
        random_state=None,
        raise_on_no_convergence: bool = False,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        if init not in ("k-means++", "random"):
            raise ClusteringError(f"init must be 'k-means++' or 'random', got {init!r}")
        self.init = init
        self.n_init = check_integer_in_range(n_init, name="n_init", minimum=1)
        self.max_iterations = check_integer_in_range(
            max_iterations, name="max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, name="tolerance")
        self.random_state = random_state
        self.raise_on_no_convergence = bool(raise_on_no_convergence)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, data) -> ClusteringResult:
        """Run k-means on ``data`` and return the best restart."""
        array = self._as_array(data)
        if array.shape[0] < self.n_clusters:
            raise ClusteringError(
                f"cannot find {self.n_clusters} cluster(s) among {array.shape[0]} object(s)"
            )
        rng = ensure_rng(self.random_state)

        best: ClusteringResult | None = None
        for _ in range(self.n_init):
            result = self._single_run(array, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        if self.raise_on_no_convergence and not best.converged:
            raise ConvergenceError(
                f"k-means did not converge within {self.max_iterations} iteration(s)"
            )
        return best

    def _single_run(self, array: np.ndarray, rng: np.random.Generator) -> ClusteringResult:
        centroids = self._initialize(array, rng)
        labels = np.zeros(array.shape[0], dtype=int)
        converged = False
        iteration = 0
        # `iteration` is read after the loop (n_iterations in the result).
        for iteration in range(1, self.max_iterations + 1):  # noqa: B007
            labels = self._assign(array, centroids)
            new_centroids = self._update(array, labels, centroids, rng)
            movement = float(np.sqrt(((new_centroids - centroids) ** 2).sum()))
            centroids = new_centroids
            if movement <= self.tolerance:
                converged = True
                break
        labels = self._assign(array, centroids)
        inertia = self._inertia(array, labels, centroids)
        return ClusteringResult(
            labels=labels,
            n_clusters=int(np.unique(labels).size),
            n_iterations=iteration,
            inertia=inertia,
            converged=converged,
            metadata={"centroids": centroids.copy()},
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _initialize(self, array: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.init == "random":
            indices = rng.choice(array.shape[0], size=self.n_clusters, replace=False)
            return array[indices].copy()
        return self._kmeans_plus_plus(array, rng)

    def _kmeans_plus_plus(self, array: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n_objects = array.shape[0]
        centroids = np.empty((self.n_clusters, array.shape[1]), dtype=float)
        first = int(rng.integers(n_objects))
        centroids[0] = array[first]
        closest_sq = ((array - centroids[0]) ** 2).sum(axis=1)
        for index in range(1, self.n_clusters):
            total = float(closest_sq.sum())
            if total <= 0:
                # All remaining points coincide with an existing centroid; fall back to uniform.
                choice = int(rng.integers(n_objects))
            else:
                probabilities = closest_sq / total
                choice = int(rng.choice(n_objects, p=probabilities))
            centroids[index] = array[choice]
            distance_sq = ((array - centroids[index]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, distance_sq)
        return centroids

    @staticmethod
    def _assign(array: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        # ‖x‖² + ‖c‖² − 2x·c via one matrix product instead of the (m, k, n)
        # difference broadcast.  The kernel centers the data first so the
        # cancellation error stays on the order of the distances themselves;
        # assignments can still differ from the seed broadcast in the last
        # ulp for genuinely near-equidistant centroids (the standard k-means
        # fast-path trade-off — k-means is a restarted heuristic, unlike the
        # k-medoids update where medoid identity is paper-facing output and
        # the seed reduction order is kept exactly).
        return assign_nearest_center(array, centroids)

    def _update(
        self,
        array: np.ndarray,
        labels: np.ndarray,
        centroids: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        new_centroids = centroids.copy()
        for cluster in range(self.n_clusters):
            members = array[labels == cluster]
            if members.shape[0] == 0:
                # Re-seed an empty cluster at the point farthest from its centroid assignment.
                distances = ((array - centroids[labels]) ** 2).sum(axis=1)
                new_centroids[cluster] = array[int(distances.argmax())]
            else:
                new_centroids[cluster] = members.mean(axis=0)
        return new_centroids

    @staticmethod
    def _inertia(array: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
        return float(((array - centroids[labels]) ** 2).sum())
