"""On-disk format of the versioned release bundle.

A bundle is a directory holding everything needed to *extend* a streamed RBT
release without re-reading its history:

* ``manifest.json`` — the authoritative, monotonically-versioned index:
  format tag, column schema, the frozen release policy (fitted normalizer
  state and the decided rotation plan), content hashes of every consumed
  input file, and the names + SHA-256 of the current release artifacts.
* ``released-v<K>.csv`` — the current released matrix (version ``K``).
* ``sketches-v<K>.json`` — the exact :class:`~repro.perf.streaming.StreamingMoments`
  states behind the privacy report and the per-rotation achieved variances,
  serialized through the lossless hex-float codec.

Every float that participates in the byte-identity contract (normalizer
parameters, rotation angles, security-range endpoints, sketch bucket sums)
is stored as a C99 hex string — ``float.hex()`` / ``float.fromhex()`` round
trip each double bit-for-bit, negative zero and subnormals included.

Crash safety: artifacts are written to temporary files in the bundle
directory and published with ``os.replace``; the manifest is replaced
**last**, and release/sketch files carry their version in the file name.
A crash mid-append therefore leaves the manifest pointing at the previous
version's complete, hash-consistent artifact set — never at a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path

from ..core.security_range import SecurityRange
from ..core.thresholds import PairwiseSecurityThreshold
from ..exceptions import BundleError
from ..preprocessing import (
    DecimalScalingNormalizer,
    MinMaxNormalizer,
    Normalizer,
    ZScoreNormalizer,
)

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "file_sha256",
    "load_manifest",
    "normalizer_from_payload",
    "normalizer_to_payload",
    "plan_from_payload",
    "plan_to_payload",
    "write_json_atomic",
]

#: Format tag every manifest carries; guards against pointing the tooling at
#: an unrelated directory full of JSON.
BUNDLE_FORMAT = "repro.release-bundle"
#: On-disk schema version; bump on incompatible manifest changes.
BUNDLE_FORMAT_VERSION = 1
#: The manifest file name inside a bundle directory.
MANIFEST_NAME = "manifest.json"


# --------------------------------------------------------------------------- #
# Primitive codecs
# --------------------------------------------------------------------------- #
def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(text) -> float:
    try:
        return float.fromhex(text)
    except (TypeError, ValueError) as exc:
        raise BundleError(f"invalid hex-float value {text!r} in bundle manifest") from exc


def file_sha256(path: str | Path) -> str:
    """SHA-256 of a file's bytes, read in bounded blocks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_json_atomic(path: str | Path, payload: dict) -> None:
    """Write ``payload`` as indented JSON via a same-directory temp + ``os.replace``."""
    path = Path(path)
    temporary = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    temporary.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    os.replace(temporary, path)


# --------------------------------------------------------------------------- #
# Normalizer state
# --------------------------------------------------------------------------- #
def normalizer_to_payload(normalizer: Normalizer) -> dict:
    """Freeze a *fitted* normalizer's parameters into a JSON payload."""
    if isinstance(normalizer, ZScoreNormalizer):
        if normalizer.mean_ is None or normalizer.std_ is None:
            raise BundleError("the z-score normalizer must be fitted before bundling")
        return {
            "name": "zscore",
            "ddof": int(normalizer.ddof),
            "mean": [_hex(value) for value in normalizer.mean_],
            "std": [_hex(value) for value in normalizer.std_],
        }
    if isinstance(normalizer, MinMaxNormalizer):
        if normalizer.data_min_ is None or normalizer.data_max_ is None:
            raise BundleError("the min-max normalizer must be fitted before bundling")
        return {
            "name": "minmax",
            "feature_range": [_hex(value) for value in normalizer.feature_range],
            "data_min": [_hex(value) for value in normalizer.data_min_],
            "data_max": [_hex(value) for value in normalizer.data_max_],
        }
    if isinstance(normalizer, DecimalScalingNormalizer):
        if normalizer.scale_ is None:
            raise BundleError("the decimal-scaling normalizer must be fitted before bundling")
        return {"name": "decimal", "scale": [_hex(value) for value in normalizer.scale_]}
    raise BundleError(
        f"normalizer {type(normalizer).__name__} cannot be frozen into a bundle; "
        "supported: ZScoreNormalizer, MinMaxNormalizer, DecimalScalingNormalizer"
    )


def normalizer_from_payload(payload: dict) -> Normalizer:
    """Rebuild the frozen normalizer exactly (inverse of :func:`normalizer_to_payload`)."""
    import numpy as np

    name = payload.get("name")
    if name == "zscore":
        normalizer = ZScoreNormalizer(ddof=int(payload["ddof"]))
        normalizer.mean_ = np.asarray([_unhex(v) for v in payload["mean"]], dtype=float)
        normalizer.std_ = np.asarray([_unhex(v) for v in payload["std"]], dtype=float)
        normalizer._n_attributes = len(normalizer.mean_)
        return normalizer
    if name == "minmax":
        feature_range = tuple(_unhex(v) for v in payload["feature_range"])
        normalizer = MinMaxNormalizer(feature_range)
        normalizer.data_min_ = np.asarray(
            [_unhex(v) for v in payload["data_min"]], dtype=float
        )
        normalizer.data_max_ = np.asarray(
            [_unhex(v) for v in payload["data_max"]], dtype=float
        )
        normalizer._n_attributes = len(normalizer.data_min_)
        return normalizer
    if name == "decimal":
        normalizer = DecimalScalingNormalizer()
        normalizer.scale_ = np.asarray([_unhex(v) for v in payload["scale"]], dtype=float)
        normalizer._n_attributes = len(normalizer.scale_)
        return normalizer
    raise BundleError(f"bundle manifest names unknown normalizer {name!r}")


# --------------------------------------------------------------------------- #
# Rotation plan
# --------------------------------------------------------------------------- #
def plan_to_payload(decided: Sequence) -> list[dict]:
    """Serialize the decided rotations (the frozen plan) losslessly."""
    return [
        {
            "pair": [str(pair[0]), str(pair[1])],
            "threshold": [_hex(threshold.rho1), _hex(threshold.rho2)],
            "security_range": [
                [_hex(start), _hex(end)] for start, end in security_range.intervals
            ],
            "theta_degrees": _hex(theta),
        }
        for pair, threshold, security_range, theta in decided
    ]


def plan_from_payload(payload: Sequence[dict]) -> list:
    """Rebuild the decided rotations (inverse of :func:`plan_to_payload`)."""
    decided = []
    for entry in payload:
        try:
            threshold = PairwiseSecurityThreshold(
                _unhex(entry["threshold"][0]), _unhex(entry["threshold"][1])
            )
            security_range = SecurityRange(
                intervals=tuple(
                    (_unhex(start), _unhex(end)) for start, end in entry["security_range"]
                ),
                threshold=threshold,
            )
            decided.append(
                (
                    (str(entry["pair"][0]), str(entry["pair"][1])),
                    threshold,
                    security_range,
                    _unhex(entry["theta_degrees"]),
                )
            )
        except (KeyError, IndexError, TypeError) as exc:
            raise BundleError(f"malformed rotation-plan entry in bundle manifest: {exc}") from exc
    return decided


# --------------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------------- #
def load_manifest(bundle_dir: str | Path) -> dict:
    """Read and format-check a bundle manifest, with actionable failure modes."""
    bundle_dir = Path(bundle_dir)
    manifest_path = bundle_dir / MANIFEST_NAME
    if not bundle_dir.is_dir():
        raise BundleError(
            f"{bundle_dir} is not a release-bundle directory; create one with "
            "'repro release <dir> --init <input.csv>'"
        )
    if not manifest_path.is_file():
        raise BundleError(
            f"{bundle_dir} has no {MANIFEST_NAME}; it is not a release bundle "
            "(or its creation was interrupted before the manifest was committed)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BundleError(f"{manifest_path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != BUNDLE_FORMAT:
        raise BundleError(
            f"{manifest_path} is not a {BUNDLE_FORMAT} manifest; refusing to touch it"
        )
    version = manifest.get("format_version")
    if version != BUNDLE_FORMAT_VERSION:
        raise BundleError(
            f"bundle format version mismatch: {bundle_dir} is format_version "
            f"{version!r} but this build reads {BUNDLE_FORMAT_VERSION}; upgrade "
            "the library (or re-create the bundle) before appending"
        )
    return manifest
