"""End-to-end privacy-preserving clustering pipeline (Figure 1).

:class:`PPCPipeline` chains the steps the paper prescribes — suppress
identifiers, normalize, distort with RBT — and produces a
:class:`ReleaseBundle` containing the released matrix, the privacy report and
(optionally) the clustering-equivalence evidence for Corollary 1.

:class:`StreamingReleasePipeline` is the out-of-core sibling: the same
workflow expressed as constant-memory passes over a CSV on disk, writing a
release that is byte-identical to the in-memory path for any chunk size.

:class:`AttackSuite` closes the loop: it runs a declarative
:class:`ThreatModel` against either kind of evidence — a
:class:`ReleaseBundle` or the streamed CSVs — and emits the paper-style
:class:`AuditReport` (attack error vs. work factor, Table 5 diagnostic,
privacy-threshold verdicts).
"""

from .ppc import EquivalenceReport, PPCPipeline, ReleaseBundle
from .streaming import (
    StreamingReleasePipeline,
    StreamingReleaseReport,
    resolve_chunk_rows,
    stream_invert,
)
from .versioned import (
    VersionedReleaseBundle,
    append_release,
    create_release,
    open_release,
    sequential_attack_params,
)

# isort: split
# audit must come after ppc/streaming: it participates in an import cycle
# with repro.experiments, which needs the names above to already be bound.
from .audit import (
    BUILTIN_THREAT_MODELS,
    AttackOutcome,
    AttackSuite,
    AuditReport,
    ThreatModel,
    builtin_threat_model,
    federated_threat_model,
)

__all__ = [
    "AttackOutcome",
    "AttackSuite",
    "AuditReport",
    "BUILTIN_THREAT_MODELS",
    "EquivalenceReport",
    "PPCPipeline",
    "ReleaseBundle",
    "StreamingReleasePipeline",
    "StreamingReleaseReport",
    "ThreatModel",
    "VersionedReleaseBundle",
    "append_release",
    "builtin_threat_model",
    "create_release",
    "federated_threat_model",
    "open_release",
    "resolve_chunk_rows",
    "sequential_attack_params",
    "stream_invert",
]
