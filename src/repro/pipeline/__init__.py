"""End-to-end privacy-preserving clustering pipeline (Figure 1).

:class:`PPCPipeline` chains the steps the paper prescribes — suppress
identifiers, normalize, distort with RBT — and produces a
:class:`ReleaseBundle` containing the released matrix, the privacy report and
(optionally) the clustering-equivalence evidence for Corollary 1.

:class:`StreamingReleasePipeline` is the out-of-core sibling: the same
workflow expressed as constant-memory passes over a CSV on disk, writing a
release that is byte-identical to the in-memory path for any chunk size.
"""

from .ppc import PPCPipeline, ReleaseBundle, EquivalenceReport
from .streaming import (
    StreamingReleasePipeline,
    StreamingReleaseReport,
    resolve_chunk_rows,
    stream_invert,
)

__all__ = [
    "PPCPipeline",
    "ReleaseBundle",
    "EquivalenceReport",
    "StreamingReleasePipeline",
    "StreamingReleaseReport",
    "resolve_chunk_rows",
    "stream_invert",
]
