"""End-to-end privacy-preserving clustering pipeline (Figure 1).

:class:`PPCPipeline` chains the steps the paper prescribes — suppress
identifiers, normalize, distort with RBT — and produces a
:class:`ReleaseBundle` containing the released matrix, the privacy report and
(optionally) the clustering-equivalence evidence for Corollary 1.
"""

from .ppc import PPCPipeline, ReleaseBundle, EquivalenceReport

__all__ = ["PPCPipeline", "ReleaseBundle", "EquivalenceReport"]
