"""Streaming out-of-core release pipeline (the owner workflow at scale).

The in-memory owner workflow — ``matrix_from_csv`` → normalize →
``RBT.transform`` → ``matrix_to_csv`` — materializes the whole database
three times over.  This module re-expresses the same workflow as a small
number of constant-memory passes over a CSV on disk:

1. **Stats pass** — identifier suppression plus a single streaming pass fits
   the normalizer (chunk-invariant moments via :mod:`repro.perf.streaming`).
2. **Moment pass(es)** — pair selection and the security-range solve need
   only the three moments ``(σ_i², σ_j², σ_ij)`` of each pair *as the
   rotation reaches it*.  One pass accumulates them for every pair whose
   columns no earlier still-undecided pair touches; angles are then drawn in
   pair order.  A pair that reuses an already-rotated column (the paper's
   odd-``n`` rule) triggers one extra pass per chain link, with the
   already-decided rotations applied on the fly.
3. **Transform pass** — each chunk is normalized, rotated and appended to
   the released CSV; the privacy evidence (per-attribute ``Var(X − X')``,
   per-rotation achieved variances) accumulates on the way through.

Byte-identity contract
----------------------
Every kernel on the path is invariant to row chunking: the tiled,
fsum-combined moments, the elementwise normalization and rotation, and the
shortest-repr CSV formatter.  The released file is therefore **byte
identical** to the in-memory path's output for any ``chunk_rows`` ≥ 1 —
``python -m repro transform --chunk-rows 1`` and a plain ``transform`` write
the same bits (tests assert this down to single-row chunks).

Peak memory is ``O(chunk_rows × n_attributes)`` regardless of the number of
rows; ``chunk_rows`` can be given directly or derived from a
``memory_budget_bytes`` knob via :func:`repro.perf.kernels.resolve_block_size`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..core import RBT, RBTSecret
from ..core.pair_selection import PairSelectionStrategy
from ..core.rbt import RotationRecord
from ..core.rotation import rotate_block
from ..core.thresholds import PairwiseSecurityThreshold
from ..data.io import (
    DEFAULT_CHUNK_ROWS,
    MatrixCsvWriter,
    iter_matrix_csv,
    read_matrix_csv_header,
)
from ..exceptions import ValidationError
from ..metrics.privacy import AttributePrivacy, PrivacyReport
from ..perf.backends import get_backend
from ..perf.kernels import resolve_block_size
from ..perf.streaming import StreamingMoments, correlation_from_moments
from ..preprocessing import IdentifierSuppressor, Normalizer, ZScoreNormalizer

__all__ = [
    "StreamingReleasePipeline",
    "StreamingReleaseReport",
    "stream_invert",
    "resolve_chunk_rows",
    "plan_rotations",
    "apply_decided_rotations",
    "build_rotation_records",
    "privacy_report_from_moments",
]

#: Rough Python-level footprint of one parsed CSV cell (str object + float +
#: list slot), used to turn a memory budget into a chunk-row count.
_BYTES_PER_CSV_VALUE: int = 240


def resolve_chunk_rows(
    n_columns: int,
    *,
    chunk_rows: int | None = None,
    memory_budget_bytes: int | None = None,
) -> int:
    """Rows per streamed block: explicit, derived from a budget, or the default.

    The budget conversion reuses :func:`repro.perf.kernels.resolve_block_size`
    with a per-row cost model of the CSV parse (the dominant allocation),
    so the same ``memory_budget_bytes`` vocabulary as the distance kernels
    applies to the release pipeline.
    """
    if chunk_rows is not None:
        return check_integer_in_range(chunk_rows, name="chunk_rows", minimum=1)
    if memory_budget_bytes is None:
        return DEFAULT_CHUNK_ROWS
    bytes_per_row = (int(n_columns) + 1) * _BYTES_PER_CSV_VALUE
    return resolve_block_size(
        2**40, bytes_per_row=bytes_per_row, memory_budget_bytes=memory_budget_bytes
    )


@dataclass(frozen=True)
class StreamingReleaseReport:
    """Everything the data owner gets back from one streamed release.

    The streamed sibling of :class:`~repro.pipeline.ReleaseBundle`: the
    matrices themselves stay on disk, so the report carries the rotation
    bookkeeping and the accumulated privacy evidence instead.  (The
    quadratic Theorem 2 distance check is not part of the streamed report;
    run ``python -m repro evaluate`` on a sample for that evidence.)
    """

    #: Number of objects released.
    n_objects: int
    #: Attribute names of the released matrix.
    columns: tuple[str, ...]
    #: Per-rotation bookkeeping (pairs, security ranges, angles) — the secret.
    records: tuple[RotationRecord, ...]
    #: Per-attribute privacy measurements (streamed ``Var(X − X')``).
    privacy: PrivacyReport
    #: Rows per streamed block actually used.
    chunk_rows: int
    #: Total passes over the input file (stats + moments + transform).
    n_passes: int

    @property
    def n_attributes(self) -> int:
        """Number of released attributes."""
        return len(self.columns)

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        """The rotated attribute pairs, in application order."""
        return tuple(record.pair for record in self.records)

    @property
    def angles_degrees(self) -> tuple[float, ...]:
        """The rotation angles, in application order."""
        return tuple(record.theta_degrees for record in self.records)

    def secret(self) -> RBTSecret:
        """The owner-side inversion secret for this release."""
        return RBTSecret.from_records(self.records)

    def summary(self) -> dict:
        """A JSON-friendly summary of the release (for logging / examples)."""
        return {
            "n_objects": self.n_objects,
            "n_attributes": self.n_attributes,
            "pairs": [list(pair) for pair in self.pairs],
            "angles_degrees": list(self.angles_degrees),
            "min_variance_difference": self.privacy.minimum_variance_difference,
            "mean_variance_difference": self.privacy.mean_variance_difference,
            "chunk_rows": self.chunk_rows,
            "n_passes": self.n_passes,
        }


def _prefix_independent_positions(pairs: Sequence[tuple[str, str]]) -> list[int]:
    """Positions whose pair shares no column with any *earlier* pair.

    The moments of those pairs, measured on the current data state, equal
    the moments the sequential in-memory rotation would see — so they can
    all be accumulated in one pass.
    """
    touched: set[str] = set()
    independent: list[int] = []
    for position, pair in enumerate(pairs):
        if not (set(pair) & touched):
            independent.append(position)
        touched.update(pair)
    return independent


#: One decided rotation: (pair, threshold, security range, theta degrees).
DecidedRotation = tuple[tuple[str, str], PairwiseSecurityThreshold, object, float]


def plan_rotations(
    rbt: RBT, columns: Sequence[str], moment_source
) -> tuple[list[DecidedRotation], int]:
    """Choose pairs and angles from streamed moment summaries.

    ``moment_source`` abstracts *where* the moments come from — a single
    CSV streamed chunk-by-chunk (:class:`StreamingReleasePipeline`) or
    per-party shard accumulators merged by secure sum
    (:class:`repro.distributed.DistributedReleasePipeline`).  It must
    provide:

    ``correlation_moments() -> StreamingMoments``
        A width-``n`` ``cross=True`` accumulator over the *normalized*
        data (one pass), used by the max-variance pairing and to prefill
        first-round pair moments for free.

    ``pair_moments(decided, positions, *, ddof) -> dict``
        The ``(σ_i², σ_j², σ_ij)`` of each requested pair measured on the
        normalized data with the already-``decided`` rotations applied on
        the fly (one pass).  ``positions`` maps plan position → pair names.

    Because the accumulated moments are exact (grouping-invariant), every
    source yields bitwise-identical plans — this is what pins the
    distributed release to the single-party bytes.

    Returns the decided rotations (in application order) and the number of
    moment passes taken.  Mirrors :meth:`RBT.transform` exactly: pair
    selection first (consuming the RNG for the random strategy), then one
    security-range solve and angle draw per pair, in pair order.
    """
    passes = 0
    moments_cache: dict[int, tuple[float, float, float]] = {}

    needs_correlation = (
        rbt.pairs is None and rbt.strategy is PairSelectionStrategy.MAX_VARIANCE
    )
    if needs_correlation:
        # One pass accumulates every pairwise moment of the normalized
        # data: it yields both the correlation matrix for the greedy
        # pairing and the first-round per-pair moments for free.
        accumulator = moment_source.correlation_moments()
        passes += 1
        correlation = correlation_from_moments(accumulator, ddof=1)
        pairs = rbt.resolve_pairs_for_columns(columns, correlation=correlation)
        prefill = _prefix_independent_positions(pairs)
        index_of = {name: position for position, name in enumerate(columns)}
        for position in prefill:
            i = index_of[pairs[position][0]]
            j = index_of[pairs[position][1]]
            moments_cache[position] = accumulator.pair_moments(i, j, ddof=rbt.ddof)
    else:
        pairs = rbt.resolve_pairs_for_columns(columns)

    thresholds = PairwiseSecurityThreshold.broadcast(rbt.thresholds, len(pairs))
    if rbt.angles is not None and len(rbt.angles) != len(pairs):
        raise ValidationError(
            f"expected {len(pairs)} fixed angle(s) (one per pair), got {len(rbt.angles)}"
        )
    rng = ensure_rng(rbt.random_state)

    decided: list[DecidedRotation] = []
    pending = list(range(len(pairs)))
    while pending:
        need = _prefix_independent_positions([pairs[p] for p in pending])
        to_accumulate = [
            pending[offset] for offset in need if pending[offset] not in moments_cache
        ]
        if to_accumulate:
            fresh = moment_source.pair_moments(
                decided,
                {position: pairs[position] for position in to_accumulate},
                ddof=rbt.ddof,
            )
            passes += 1
            moments_cache.update(fresh)

        progressed = False
        while pending and pending[0] in moments_cache:
            position = pending.pop(0)
            pair = pairs[position]
            moments = moments_cache.pop(position)
            security_range = rbt.solve_range_from_moments(moments, thresholds[position])
            theta = rbt.choose_theta(position, pair, security_range, rng)
            decided.append((pair, thresholds[position], security_range, theta))
            progressed = True
            # Cached moments describing a column this rotation just
            # distorted are stale now; drop them so the next round
            # re-accumulates on the rotated state.
            touched = set(pair)
            for other in list(moments_cache):
                if set(pairs[other]) & touched:
                    del moments_cache[other]
        if not progressed:  # pragma: no cover - the head of pending is always computable
            raise ValidationError("streaming rotation planner failed to make progress")
    return decided, passes


def apply_decided_rotations(
    current: np.ndarray,
    decided: Sequence[DecidedRotation],
    column_index: dict[str, int],
    achieved_moments: Sequence[StreamingMoments] | None = None,
) -> np.ndarray:
    """Apply the planned rotations to one normalized chunk, in plan order.

    Mutates and returns ``current``.  When ``achieved_moments`` is given
    (one width-2 accumulator per rotation), the per-rotation perturbation
    deltas are accumulated on the way through — the evidence behind each
    :class:`~repro.core.rbt.RotationRecord`'s achieved variances.
    """
    for step_index, (pair, _, _, theta) in enumerate(decided):
        index_i = column_index[pair[0]]
        index_j = column_index[pair[1]]
        column_i = current[:, index_i].copy()
        column_j = current[:, index_j].copy()
        rotated_i, rotated_j = rotate_block(column_i, column_j, theta)
        if achieved_moments is not None:
            achieved_moments[step_index].update(
                np.column_stack((column_i - rotated_i, column_j - rotated_j))
            )
        current[:, index_i] = rotated_i
        current[:, index_j] = rotated_j
    return current


def build_rotation_records(
    decided: Sequence[DecidedRotation],
    achieved_moments: Sequence[StreamingMoments],
    *,
    ddof: int,
) -> tuple[RotationRecord, ...]:
    """Assemble the owner-side rotation bookkeeping from the streamed evidence."""
    return tuple(
        RotationRecord(
            pair=(pair[0], pair[1]),
            threshold=threshold,
            security_range=security_range,
            theta_degrees=theta,
            achieved_variances=tuple(
                float(v) for v in achieved_moments[index].variances(ddof=ddof)
            ),
        )
        for index, (pair, threshold, security_range, theta) in enumerate(decided)
    )


def privacy_report_from_moments(
    columns: Sequence[str], moments: StreamingMoments, *, ddof: int
) -> PrivacyReport:
    """Assemble the per-attribute report from the width-3n transform-pass stats.

    ``moments`` accumulates ``hstack((normalized, released, normalized −
    released))`` rows; the three variance slabs become the original,
    released and ``Var(X − X')`` columns of the report.
    """
    n = len(columns)
    variances = moments.variances(ddof=ddof)
    measurements = []
    for index, name in enumerate(columns):
        original_variance = float(variances[index])
        released_variance = float(variances[n + index])
        difference_variance = float(variances[2 * n + index])
        measurements.append(
            AttributePrivacy(
                name=name,
                variance_difference=difference_variance,
                scale_invariant=(
                    difference_variance / original_variance
                    if not np.isclose(original_variance, 0.0)
                    else float("nan")
                ),
                original_variance=original_variance,
                released_variance=released_variance,
            )
        )
    return PrivacyReport(tuple(measurements))


class _FileMomentSource:
    """Moment source streaming one CSV through the pipeline's chunk iterator."""

    def __init__(
        self,
        pipeline: StreamingReleasePipeline,
        input_path: Path,
        id_column: str | None,
        chunk_rows: int,
        kept_indices: list[int] | None,
        columns: Sequence[str],
        *,
        cache=None,
        profiler=None,
    ) -> None:
        self._pipeline = pipeline
        self._input_path = input_path
        self._id_column = id_column
        self._chunk_rows = chunk_rows
        self._kept_indices = kept_indices
        self._columns = tuple(columns)
        self._cache = cache
        self._profiler = profiler

    def _chunks(self):
        return self._pipeline._pass_chunks(
            self._input_path,
            self._id_column,
            self._chunk_rows,
            self._kept_indices,
            cache=self._cache,
            profiler=self._profiler,
        )

    def correlation_moments(self) -> StreamingMoments:
        pipeline = self._pipeline
        accumulator = StreamingMoments(
            len(self._columns), cross=True, backend=pipeline.backend
        )
        for chunk, _ in self._chunks():
            accumulator.update(pipeline.normalizer.transform(chunk))
        return accumulator

    def pair_moments(
        self,
        decided: Sequence[DecidedRotation],
        positions: dict[int, tuple[str, str]],
        *,
        ddof: int,
    ) -> dict[int, tuple[float, float, float]]:
        pipeline = self._pipeline
        column_index = {name: offset for offset, name in enumerate(self._columns)}
        accumulators = {
            position: StreamingMoments(2, cross=True) for position in positions
        }
        for chunk, _ in self._chunks():
            current = pipeline.normalizer.transform(chunk)
            apply_decided_rotations(current, decided, column_index)
            for position, accumulator in accumulators.items():
                index_i = column_index[positions[position][0]]
                index_j = column_index[positions[position][1]]
                accumulator.update(
                    np.column_stack((current[:, index_i], current[:, index_j]))
                )
        return {
            position: accumulator.pair_moments(0, 1, ddof=ddof)
            for position, accumulator in accumulators.items()
        }


class StreamingReleasePipeline:
    """Suppress → normalize → rotate → write, without materializing the data.

    Parameters
    ----------
    rbt:
        A configured :class:`~repro.core.RBT` transformer (thresholds,
        strategy, solver, seed) — the same object the in-memory path uses.
    normalizer:
        Normalizer fitted on the streamed data (defaults to z-score).  Must
        support :meth:`~repro.preprocessing.Normalizer.fit_stream`.
    suppressor:
        Optional :class:`~repro.preprocessing.IdentifierSuppressor`; its
        ``extra_columns`` are dropped from every chunk and
        ``drop_object_ids`` strips the id column from the release.
    chunk_rows:
        Rows per streamed block.  Mutually exclusive with
        ``memory_budget_bytes``; defaults to
        :data:`repro.data.io.DEFAULT_CHUNK_ROWS`.
    memory_budget_bytes:
        Peak-memory knob; converted to ``chunk_rows`` with the CSV cost
        model of :func:`resolve_chunk_rows`.
    ddof:
        Estimator for the privacy report (1 matches the paper's numbers).
    backend:
        Execution backend spec for the wide streamed accumulators — the
        normalizer fit, the correlation pass, and the transform pass's
        privacy moments (see :mod:`repro.perf.backends`).  Serial and
        process-pool releases are byte identical; the tiny width-2
        per-pair accumulators always run serially (fan-out overhead would
        dwarf them).
    refit:
        ``True`` (default) fits the normalizer on the streamed input
        (pass 1).  ``False`` skips that pass and transforms with the
        normalizer *as given*, which must already be fitted — this is how a
        versioned release bundle replays its frozen release policy over a
        grown feed to reproduce the appended release byte for byte.
    codec:
        CSV codec for every streamed pass and the released output —
        ``"fast"`` (default) for the vectorized lane in
        :mod:`repro.perf.csv_codec`, ``"python"`` for the seed
        ``csv.reader``/``csv.writer`` oracle.  The released bytes and the
        report are identical either way; with the fast codec the first
        full pass additionally spills its decoded chunks to a binary
        scratch file so later passes skip the CSV parse entirely.
    pipelined:
        When true, chunk decode runs up to two chunks ahead on a prefetch
        thread and encoded output blocks are written by a background
        thread.  Purely an I/O-overlap knob for multi-core hosts; chunk
        order, released bytes and error semantics are unchanged.

    Examples
    --------
    >>> from repro.core import RBT
    >>> pipeline = StreamingReleasePipeline(RBT(random_state=0), chunk_rows=4096)
    >>> # report = pipeline.run("confidential.csv", "released.csv")
    """

    def __init__(
        self,
        rbt: RBT | None = None,
        *,
        normalizer: Normalizer | None = None,
        suppressor: IdentifierSuppressor | None = None,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        ddof: int = 1,
        backend=None,
        refit: bool = True,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> None:
        from ..perf.csv_codec import resolve_codec

        if chunk_rows is not None and memory_budget_bytes is not None:
            raise ValidationError("pass either chunk_rows or memory_budget_bytes, not both")
        self.rbt = rbt if rbt is not None else RBT()
        self.codec = resolve_codec(codec)
        self.pipelined = bool(pipelined)
        self.normalizer = normalizer if normalizer is not None else ZScoreNormalizer()
        self.suppressor = suppressor
        self.chunk_rows = (
            check_integer_in_range(chunk_rows, name="chunk_rows", minimum=1)
            if chunk_rows is not None
            else None
        )
        self.memory_budget_bytes = memory_budget_bytes
        self.ddof = check_integer_in_range(ddof, name="ddof", minimum=0, maximum=1)
        self.backend = backend
        self.refit = bool(refit)

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        input_path: str | Path,
        output_path: str | Path,
        *,
        id_column: str | None = "id",
        float_format: str | None = None,
        profiler=None,
    ) -> StreamingReleaseReport:
        """Stream ``input_path`` through the release workflow into ``output_path``.

        ``profiler`` optionally receives the per-stage read/compute/write
        timings (see :class:`repro.perf.profiling.StageProfiler`); profiling
        never changes the released bytes.
        """
        from ..perf.csv_codec import DecodedChunkCache

        input_path = Path(input_path)
        all_columns, has_ids = read_matrix_csv_header(input_path, id_column=id_column)
        kept_indices, columns = self._kept_columns(all_columns)
        chunk_rows = resolve_chunk_rows(
            len(columns),
            chunk_rows=self.chunk_rows,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        carry_ids = has_ids and not (
            self.suppressor is not None and self.suppressor.drop_object_ids
        )
        passes = 0
        # With the fast codec the multi-pass workflow parses the CSV once:
        # the first complete pass tees its decoded (values, ids) blocks into
        # a binary scratch file, later passes replay the identical doubles.
        cache = DecodedChunkCache() if self.codec == "fast" else None
        try:
            # ---- Pass 1: fit the normalizer (chunk-invariant streamed
            # stats).  A frozen-policy replay (refit=False) keeps the
            # normalizer exactly as given, so the per-row transform matches
            # the release that first fitted it, bit for bit.
            if self.refit:
                self.normalizer.fit_stream(
                    (
                        chunk
                        for chunk, _ in self._pass_chunks(
                            input_path, id_column, chunk_rows, kept_indices,
                            cache=cache, profiler=profiler,
                        )
                    ),
                    backend=self.backend,
                )
                passes += 1

            # ---- Pair selection (Step 1) on names and, when needed,
            # streamed correlation; then per-pair security ranges and angles
            # (Step 2b/2c) from streamed moments, in as few extra passes as
            # the pair dependency structure allows.
            moment_source = _FileMomentSource(
                self, input_path, id_column, chunk_rows, kept_indices, columns,
                cache=cache, profiler=profiler,
            )
            decided, moment_passes = plan_rotations(self.rbt, columns, moment_source)
            passes += moment_passes

            # ---- Final pass: normalize + rotate every chunk and write it out.
            n_columns = len(columns)
            privacy_moments = StreamingMoments(3 * n_columns, backend=self.backend)
            achieved_moments = [StreamingMoments(2) for _ in decided]
            column_index = {name: position for position, name in enumerate(columns)}
            n_objects = 0
            with MatrixCsvWriter(
                output_path,
                columns,
                include_ids=carry_ids,
                float_format=float_format,
                codec=self.codec,
                pipelined=self.pipelined,
            ) as writer:
                for chunk, ids in self._pass_chunks(
                    input_path, id_column, chunk_rows, kept_indices,
                    cache=cache, profiler=profiler,
                ):
                    if profiler is None:
                        normalized = self.normalizer.transform(chunk)
                        current = apply_decided_rotations(
                            normalized.copy(), decided, column_index, achieved_moments
                        )
                        privacy_moments.update(
                            np.hstack((normalized, current, normalized - current))
                        )
                        writer.write_rows(current, ids=ids if carry_ids else None)
                    else:
                        with profiler.section("compute"):
                            normalized = self.normalizer.transform(chunk)
                            current = apply_decided_rotations(
                                normalized.copy(), decided, column_index, achieved_moments
                            )
                            privacy_moments.update(
                                np.hstack((normalized, current, normalized - current))
                            )
                        with profiler.section("write"):
                            writer.write_rows(current, ids=ids if carry_ids else None)
                    n_objects += chunk.shape[0]
            passes += 1
        finally:
            if cache is not None:
                cache.close()

        records = build_rotation_records(decided, achieved_moments, ddof=self.rbt.ddof)
        privacy = privacy_report_from_moments(columns, privacy_moments, ddof=self.ddof)
        return StreamingReleaseReport(
            n_objects=n_objects,
            columns=tuple(columns),
            records=records,
            privacy=privacy,
            chunk_rows=chunk_rows,
            n_passes=passes,
        )

    # ------------------------------------------------------------------ #
    # I/O plumbing
    # ------------------------------------------------------------------ #
    def _kept_columns(
        self, all_columns: Sequence[str]
    ) -> tuple[list[int] | None, tuple[str, ...]]:
        """Indices and names of the columns surviving identifier suppression."""
        if self.suppressor is None or not self.suppressor.extra_columns:
            return None, tuple(all_columns)
        to_drop = set(self.suppressor.extra_columns)
        kept = [(index, name) for index, name in enumerate(all_columns) if name not in to_drop]
        if not kept:
            raise ValidationError("identifier suppression removed every column")
        return [index for index, _ in kept], tuple(name for _, name in kept)

    @staticmethod
    def _select(values: np.ndarray, kept_indices: list[int] | None) -> np.ndarray:
        return values if kept_indices is None else values[:, kept_indices]

    def _chunks(
        self,
        input_path: Path,
        id_column: str | None,
        chunk_rows: int,
        kept_indices: list[int] | None,
    ) -> Iterator[tuple[np.ndarray, tuple | None]]:
        """One full pass over the input as ``(values, ids)`` blocks."""
        for chunk in iter_matrix_csv(
            input_path,
            chunk_rows=chunk_rows,
            id_column=id_column,
            codec=self.codec,
            prefetch=2 if self.pipelined else None,
        ):
            yield self._select(chunk.values, kept_indices), chunk.ids

    def _pass_chunks(
        self,
        input_path: Path,
        id_column: str | None,
        chunk_rows: int,
        kept_indices: list[int] | None,
        *,
        cache=None,
        profiler=None,
    ) -> Iterator[tuple[np.ndarray, tuple | None]]:
        """One full pass, replaying the spill cache once a pass completed it."""
        if cache is not None and cache.complete:
            iterator = cache.replay()
        else:
            iterator = self._chunks(input_path, id_column, chunk_rows, kept_indices)
            if cache is not None:
                iterator = cache.tee(iterator)
        if profiler is not None:
            iterator = profiler.wrap_iter("read", iterator)
        yield from iterator


def _invert_rows_worker(arrays, start, stop, *, secret, columns):
    """Restore rows ``start:stop`` of one streamed chunk.

    The inverse rotations are elementwise per row, so any row split restores
    the same bits as inverting the whole chunk at once.
    """
    return secret.apply_to_block(
        arrays["values"][start:stop], columns, inverse=True, copy=True, validate=False
    )


def stream_invert(
    input_path: str | Path,
    output_path: str | Path,
    secret: RBTSecret,
    *,
    chunk_rows: int | None = None,
    memory_budget_bytes: int | None = None,
    id_column: str | None = "id",
    float_format: str | None = None,
    backend=None,
    codec: str | None = None,
    pipelined: bool = False,
) -> int:
    """Undo a release chunk-by-chunk using the owner's secret.

    The streamed dual of ``RBTSecret.invert`` + ``matrix_to_csv``: applies
    the inverse rotations blockwise (bitwise identical to inverting the
    materialized matrix) and returns the number of restored rows.  With a
    parallel ``backend`` each chunk's rows are restored in worker-sized
    blocks — still the same bits, because every rotation touches one row at
    a time.  ``codec`` / ``pipelined`` select the CSV lane exactly as in
    :class:`StreamingReleasePipeline` — the restored bytes are identical.
    """
    input_path = Path(input_path)
    columns, has_ids = read_matrix_csv_header(input_path, id_column=id_column)
    secret.check_columns(columns)
    chunk_rows = resolve_chunk_rows(
        len(columns), chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes
    )
    backend = get_backend(backend)
    n_rows = 0
    with MatrixCsvWriter(
        output_path,
        columns,
        include_ids=has_ids,
        float_format=float_format,
        codec=codec,
        pipelined=pipelined,
    ) as writer:
        for chunk in iter_matrix_csv(
            input_path,
            chunk_rows=chunk_rows,
            id_column=id_column,
            codec=codec,
            prefetch=2 if pipelined else None,
        ):
            if backend.workers > 1 and chunk.values.shape[0] > 1:
                values = chunk.values
                # Input block + worker copy + shipped result + parent copy.
                block = backend.resolve_block_size(
                    values.shape[0],
                    4 * values.shape[1] * values.itemsize,
                    memory_budget_bytes=memory_budget_bytes,
                )
                restored = np.empty_like(values)
                for start, stop, rows in backend.imap_blocks(
                    _invert_rows_worker,
                    values.shape[0],
                    block,
                    arrays={"values": values},
                    kwargs={"secret": secret, "columns": tuple(columns)},
                ):
                    restored[start:stop] = rows
            else:
                # The chunk's array is freshly parsed and ours to mutate, and
                # the columns were validated once above — skip both per-chunk
                # costs.
                restored = secret.apply_to_block(
                    chunk.values, columns, inverse=True, copy=False, validate=False
                )
            writer.write_rows(restored, ids=chunk.ids)
            n_rows += restored.shape[0]
    return n_rows
