"""Versioned release bundles: delta-cost re-release for append-only feeds.

The paper's release model is one-shot: normalize, rotate, publish.  Real
deployments re-release as the feed grows, and a naive re-release re-reads the
full history — cost scales with total rows, not new rows.  This module makes
the re-release *incremental* while keeping the repository's byte-identity
discipline:

* :meth:`VersionedReleaseBundle.create` runs the usual streamed release once
  and **freezes the release policy**: the fitted normalizer parameters and
  the decided rotation plan (pairs, thresholds, security ranges, angles) are
  persisted in the bundle manifest alongside the exact
  :class:`~repro.perf.streaming.StreamingMoments` states behind the privacy
  evidence.
* :func:`append_release` streams *only the new rows* through the frozen
  normalize → rotate policy, extends the released CSV, and folds the new
  rows' moment contributions into the persisted sketches — exact bucket
  sums make the merged evidence bit-equal to a from-scratch accumulation.

**Determinism contract.**  Because the policy is frozen at version 1, the
released file after any sequence of appends is byte-identical to one
:class:`~repro.pipeline.StreamingReleasePipeline` run over the concatenated
feed *configured with the bundle's frozen policy* (``refit=False`` plus the
recorded pairs and angles — :meth:`VersionedReleaseBundle.reference_pipeline`
builds exactly that pipeline).  This holds for any append schedule, chunk
size and execution backend, and is gated in CI.  The security ranges in the
rotation records are the ones solved when the plan was frozen; a from-scratch
replay re-solves them on the grown feed and may report (slightly) different
ranges for the *same* released bytes — re-plan (create a fresh bundle) when
the feed distribution drifts enough to matter.

The sequential-release attack surface this opens — releases v1..vk give an
observer per-version prefixes of the same frozen rotation — is measured by
the registered ``sequential_release`` attack (see
:mod:`repro.attacks.sequential`); :func:`sequential_attack_params` derives
its parameters from a bundle's manifest.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..core import RBT
from ..core.secrets import RBTSecret
from ..data.io import MatrixCsvWriter, read_matrix_csv_header
from ..exceptions import BundleError
from ..perf.streaming import StreamingMoments, state_from_jsonable, state_to_jsonable
from ..preprocessing import ZScoreNormalizer
from .bundle_format import (
    BUNDLE_FORMAT,
    BUNDLE_FORMAT_VERSION,
    MANIFEST_NAME,
    file_sha256,
    load_manifest,
    normalizer_from_payload,
    normalizer_to_payload,
    plan_from_payload,
    plan_to_payload,
    write_json_atomic,
)
from .streaming import (
    StreamingReleasePipeline,
    StreamingReleaseReport,
    _FileMomentSource,
    apply_decided_rotations,
    build_rotation_records,
    plan_rotations,
    privacy_report_from_moments,
    resolve_chunk_rows,
)

__all__ = [
    "VersionedReleaseBundle",
    "append_release",
    "create_release",
    "open_release",
    "sequential_attack_params",
]


def _released_name(version: int) -> str:
    return f"released-v{version:04d}.csv"


def _sketches_name(version: int) -> str:
    return f"sketches-v{version:04d}.json"


class VersionedReleaseBundle:
    """A release-bundle directory: frozen policy + sketches + released CSV.

    Instances are lightweight views over the on-disk manifest; use
    :meth:`create` / :meth:`open` instead of the constructor.
    """

    def __init__(self, path: str | Path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    # ------------------------------------------------------------------ #
    # Manifest accessors
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """The current (monotonically increasing) release version."""
        return int(self.manifest["current"]["version"])

    @property
    def total_rows(self) -> int:
        """Rows in the current released matrix."""
        return int(self.manifest["current"]["total_rows"])

    @property
    def columns(self) -> tuple[str, ...]:
        """Attribute names the bundle was created with (appends must match)."""
        return tuple(self.manifest["columns"])

    @property
    def id_column(self) -> str | None:
        return self.manifest["id_column"]

    @property
    def carry_ids(self) -> bool:
        return bool(self.manifest["carry_ids"])

    @property
    def released_path(self) -> Path:
        """The current released CSV."""
        return self.path / self.manifest["current"]["released_file"]

    @property
    def sketches_path(self) -> Path:
        return self.path / self.manifest["current"]["sketches_file"]

    def version_rows(self) -> tuple[int, ...]:
        """Cumulative released row counts, one entry per version (v1..vK)."""
        return tuple(int(entry["total_rows"]) for entry in self.manifest["versions"])

    # ------------------------------------------------------------------ #
    # Creation / opening
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        input_path: str | Path,
        bundle_dir: str | Path,
        *,
        rbt: RBT | None = None,
        normalizer=None,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        ddof: int = 1,
        backend=None,
        id_column: str | None = "id",
        float_format: str | None = None,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> tuple["VersionedReleaseBundle", StreamingReleaseReport]:
        """Release ``input_path`` from scratch and freeze the policy as version 1."""
        from ..perf.csv_codec import DecodedChunkCache

        bundle_dir = Path(bundle_dir)
        if (bundle_dir / MANIFEST_NAME).exists():
            existing = cls.open(bundle_dir)
            raise BundleError(
                f"{bundle_dir} is already a release bundle (version {existing.version}); "
                "append new rows with --append instead of re-initializing"
            )
        bundle_dir.mkdir(parents=True, exist_ok=True)
        input_path = Path(input_path)
        pipeline = StreamingReleasePipeline(
            rbt if rbt is not None else RBT(),
            normalizer=normalizer if normalizer is not None else ZScoreNormalizer(),
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
            ddof=ddof,
            backend=backend,
            codec=codec,
            pipelined=pipelined,
        )
        columns_all, has_ids = read_matrix_csv_header(input_path, id_column=id_column)
        columns = tuple(columns_all)
        resolved_chunk_rows = resolve_chunk_rows(
            len(columns), chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes
        )
        passes = 0
        cache = DecodedChunkCache() if pipeline.codec == "fast" else None
        try:
            # Fit + plan exactly like the streamed pipeline (same helpers,
            # same bits), but keep hold of the intermediate state so it can
            # be frozen.
            pipeline.normalizer.fit_stream(
                (
                    chunk
                    for chunk, _ in pipeline._pass_chunks(
                        input_path, id_column, resolved_chunk_rows, None, cache=cache
                    )
                ),
                backend=backend,
            )
            passes += 1
            moment_source = _FileMomentSource(
                pipeline, input_path, id_column, resolved_chunk_rows, None, columns,
                cache=cache,
            )
            decided, moment_passes = plan_rotations(pipeline.rbt, columns, moment_source)
            passes += moment_passes

            version = 1
            n_objects, privacy_state, achieved_states, records, privacy = _transform_pass(
                pipeline,
                input_path,
                bundle_dir / _released_name(version),
                columns,
                decided,
                id_column=id_column,
                chunk_rows=resolved_chunk_rows,
                carry_ids=has_ids,
                float_format=float_format,
                backend=backend,
                prior_sketches=None,
                cache=cache,
            )
            passes += 1
        finally:
            if cache is not None:
                cache.close()

        sketches = {
            "format": "repro.release-sketches",
            "version": version,
            "n_objects": n_objects,
            "privacy": state_to_jsonable(privacy_state),
            "achieved": [state_to_jsonable(state) for state in achieved_states],
        }
        write_json_atomic(bundle_dir / _sketches_name(version), sketches)
        manifest = {
            "format": BUNDLE_FORMAT,
            "format_version": BUNDLE_FORMAT_VERSION,
            "columns": list(columns),
            "id_column": id_column,
            "carry_ids": bool(has_ids),
            "float_format": float_format,
            "ddof": int(ddof),
            "rbt": {
                "solver": pipeline.rbt.solver,
                "resolution": int(pipeline.rbt.resolution),
                "ddof": int(pipeline.rbt.ddof),
            },
            "normalizer": normalizer_to_payload(pipeline.normalizer),
            "plan": plan_to_payload(decided),
            "current": {
                "version": version,
                "total_rows": n_objects,
                "released_file": _released_name(version),
                "released_sha256": file_sha256(bundle_dir / _released_name(version)),
                "sketches_file": _sketches_name(version),
                "sketches_sha256": file_sha256(bundle_dir / _sketches_name(version)),
            },
            "versions": [
                {
                    "version": version,
                    "rows": n_objects,
                    "total_rows": n_objects,
                    "input_sha256": file_sha256(input_path),
                    "released_sha256": file_sha256(bundle_dir / _released_name(version)),
                }
            ],
        }
        write_json_atomic(bundle_dir / MANIFEST_NAME, manifest)
        report = StreamingReleaseReport(
            n_objects=n_objects,
            columns=columns,
            records=records,
            privacy=privacy,
            chunk_rows=resolved_chunk_rows,
            n_passes=passes,
        )
        return cls(bundle_dir, manifest), report

    @classmethod
    def open(cls, bundle_dir: str | Path) -> VersionedReleaseBundle:
        """Open an existing bundle (manifest format-checked; artifacts lazy-checked)."""
        return cls(Path(bundle_dir), load_manifest(bundle_dir))

    def verify(self) -> None:
        """Check the current artifacts against their manifest content hashes."""
        current = self.manifest["current"]
        for role, file_name, expected in (
            ("released matrix", current["released_file"], current["released_sha256"]),
            ("sketch state", current["sketches_file"], current["sketches_sha256"]),
        ):
            path = self.path / file_name
            if not path.is_file():
                raise BundleError(
                    f"bundle {self.path} is missing its {role} {file_name}; the "
                    "bundle is torn (or another writer advanced it — re-open and retry)"
                )
            actual = file_sha256(path)
            if actual != expected:
                raise BundleError(
                    f"bundle {self.path}: content hash of {file_name} does not match "
                    f"the manifest (expected {expected[:12]}…, got {actual[:12]}…); "
                    "the bundle is torn or was modified outside the release tooling"
                )

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(
        self,
        new_rows: str | Path,
        *,
        expected_version: int | None = None,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        backend=None,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> StreamingReleaseReport:
        """Stream ``new_rows`` through the frozen policy into version K+1.

        Only the new rows are read; the released CSV grows by exactly their
        transformed bytes and the persisted sketches absorb their moment
        contributions.  The result is byte-identical to the frozen-policy
        from-scratch replay of the concatenated feed
        (:meth:`reference_pipeline`), for any append schedule, chunk size
        and backend.
        """
        if expected_version is not None and self.version != expected_version:
            raise BundleError(
                f"bundle version mismatch: {self.path} is at version {self.version}, "
                f"expected {expected_version}; re-open the bundle (another writer may "
                "have appended) and retry"
            )
        self.verify()
        new_rows = Path(new_rows)
        new_columns, new_has_ids = read_matrix_csv_header(new_rows, id_column=self.id_column)
        if tuple(new_columns) != self.columns:
            raise BundleError(
                f"schema drift: bundle {self.path} was created with columns "
                f"{list(self.columns)} but {new_rows} has columns {list(new_columns)}; "
                "appended files must ship the exact same header, in the same order"
            )
        if bool(new_has_ids) != self.carry_ids:
            expected_header = "an id column" if self.carry_ids else "no id column"
            raise BundleError(
                f"schema drift: bundle {self.path} carries {expected_header} but "
                f"{new_rows} does not match; appended files must keep the id layout "
                "of the original feed"
            )

        columns = self.columns
        resolved_chunk_rows = resolve_chunk_rows(
            len(columns), chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes
        )
        normalizer = normalizer_from_payload(self.manifest["normalizer"])
        decided = plan_from_payload(self.manifest["plan"])
        pipeline = StreamingReleasePipeline(
            self._frozen_rbt(decided),
            normalizer=normalizer,
            chunk_rows=resolved_chunk_rows,
            ddof=int(self.manifest["ddof"]),
            backend=backend,
            refit=False,
            codec=codec,
            pipelined=pipelined,
        )
        sketches = self._load_sketches()
        version = self.version + 1
        delta_rows, privacy_state, achieved_states, records, privacy = _transform_pass(
            pipeline,
            new_rows,
            self.path / _released_name(version),
            columns,
            decided,
            id_column=self.id_column,
            chunk_rows=resolved_chunk_rows,
            carry_ids=self.carry_ids,
            float_format=self.manifest["float_format"],
            backend=backend,
            prior_sketches=sketches,
            append_from=self.released_path,
        )
        total_rows = self.total_rows + delta_rows

        new_sketches = {
            "format": "repro.release-sketches",
            "version": version,
            "n_objects": total_rows,
            "privacy": state_to_jsonable(privacy_state),
            "achieved": [state_to_jsonable(state) for state in achieved_states],
        }
        write_json_atomic(self.path / _sketches_name(version), new_sketches)
        previous = dict(self.manifest["current"])
        manifest = dict(self.manifest)
        manifest["current"] = {
            "version": version,
            "total_rows": total_rows,
            "released_file": _released_name(version),
            "released_sha256": file_sha256(self.path / _released_name(version)),
            "sketches_file": _sketches_name(version),
            "sketches_sha256": file_sha256(self.path / _sketches_name(version)),
        }
        manifest["versions"] = list(self.manifest["versions"]) + [
            {
                "version": version,
                "rows": delta_rows,
                "total_rows": total_rows,
                "input_sha256": file_sha256(new_rows),
                "released_sha256": manifest["current"]["released_sha256"],
            }
        ]
        # The manifest flip is the commit point; a crash before it leaves the
        # previous version's artifact set referenced and intact.
        write_json_atomic(self.path / MANIFEST_NAME, manifest)
        self.manifest = manifest
        for stale in (previous["released_file"], previous["sketches_file"]):
            (self.path / stale).unlink(missing_ok=True)
        return StreamingReleaseReport(
            n_objects=total_rows,
            columns=columns,
            records=records,
            privacy=privacy,
            chunk_rows=resolved_chunk_rows,
            n_passes=1,
        )

    # ------------------------------------------------------------------ #
    # Frozen-policy replay and reporting
    # ------------------------------------------------------------------ #
    def _frozen_rbt(self, decided=None) -> RBT:
        """An RBT configured with the bundle's frozen pairs, thresholds and angles."""
        if decided is None:
            decided = plan_from_payload(self.manifest["plan"])
        rbt_config = self.manifest["rbt"]
        return RBT(
            thresholds=[threshold.as_tuple() for _, threshold, _, _ in decided],
            pairs=[pair for pair, _, _, _ in decided],
            angles=[theta for _, _, _, theta in decided],
            solver=rbt_config["solver"],
            resolution=int(rbt_config["resolution"]),
            ddof=int(rbt_config["ddof"]),
        )

    def reference_pipeline(
        self,
        *,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        backend=None,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> StreamingReleasePipeline:
        """The from-scratch replay of the frozen policy (the byte-identity oracle).

        Running the returned pipeline over the concatenated feed produces a
        released CSV byte-identical to this bundle's — that replay re-reads
        the whole history, which is exactly the cost :meth:`append` avoids.
        """
        return StreamingReleasePipeline(
            self._frozen_rbt(),
            normalizer=normalizer_from_payload(self.manifest["normalizer"]),
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
            ddof=int(self.manifest["ddof"]),
            backend=backend,
            refit=False,
            codec=codec,
            pipelined=pipelined,
        )

    def _load_sketches(self) -> dict:
        import json

        try:
            sketches = json.loads(self.sketches_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BundleError(f"cannot read bundle sketches {self.sketches_path}: {exc}") from exc
        if sketches.get("format") != "repro.release-sketches":
            raise BundleError(f"{self.sketches_path} is not a release-sketches file")
        return sketches

    def report(self) -> StreamingReleaseReport:
        """Rebuild the owner's report (records + privacy) from the persisted sketches."""
        sketches = self._load_sketches()
        decided = plan_from_payload(self.manifest["plan"])
        achieved = [
            StreamingMoments.from_state(state_from_jsonable(state))
            for state in sketches["achieved"]
        ]
        records = build_rotation_records(
            decided, achieved, ddof=int(self.manifest["rbt"]["ddof"])
        )
        privacy = privacy_report_from_moments(
            self.columns,
            StreamingMoments.from_state(state_from_jsonable(sketches["privacy"])),
            ddof=int(self.manifest["ddof"]),
        )
        return StreamingReleaseReport(
            n_objects=int(sketches["n_objects"]),
            columns=self.columns,
            records=records,
            privacy=privacy,
            chunk_rows=0,
            n_passes=0,
        )

    def secret(self) -> RBTSecret:
        """The owner's invertible secret (pairs + angles) from the frozen plan."""
        return self.report().secret()


def _transform_pass(
    pipeline: StreamingReleasePipeline,
    input_path: Path,
    output_path: Path,
    columns: Sequence[str],
    decided,
    *,
    id_column: str | None,
    chunk_rows: int,
    carry_ids: bool,
    float_format: str | None,
    backend,
    prior_sketches: dict | None,
    append_from: Path | None = None,
    cache=None,
):
    """Normalize + rotate one file into ``output_path``; fold + report evidence.

    With ``prior_sketches`` the fresh accumulators absorb the persisted
    states first, so the drained evidence covers the whole feed — the merge
    is exact, hence identical to accumulating the concatenated rows.
    """
    n_columns = len(columns)
    privacy_moments = StreamingMoments(3 * n_columns, backend=backend)
    achieved_moments = [StreamingMoments(2) for _ in decided]
    if prior_sketches is not None:
        privacy_moments._merge_state(state_from_jsonable(prior_sketches["privacy"]))
        prior_achieved = prior_sketches["achieved"]
        if len(prior_achieved) != len(decided):
            raise BundleError(
                "bundle sketches do not match the rotation plan "
                f"({len(prior_achieved)} achieved states for {len(decided)} rotations)"
            )
        for accumulator, state in zip(achieved_moments, prior_achieved):
            accumulator._merge_state(state_from_jsonable(state))
    column_index = {name: position for position, name in enumerate(columns)}
    n_rows = 0
    with MatrixCsvWriter(
        output_path,
        columns,
        include_ids=carry_ids,
        float_format=float_format,
        append_from=append_from,
        codec=pipeline.codec,
        pipelined=pipeline.pipelined,
    ) as writer:
        for chunk, ids in pipeline._pass_chunks(input_path, id_column, chunk_rows, None, cache=cache):
            normalized = pipeline.normalizer.transform(chunk)
            current = apply_decided_rotations(
                normalized.copy(), decided, column_index, achieved_moments
            )
            privacy_moments.update(np.hstack((normalized, current, normalized - current)))
            writer.write_rows(current, ids=ids if carry_ids else None)
            n_rows += chunk.shape[0]
    # Export the sketch states *before* draining statistics: a drained
    # accumulator refuses to export (its exactness guarantee has been spent).
    privacy_state = privacy_moments.state()
    achieved_states = [accumulator.state() for accumulator in achieved_moments]
    records = build_rotation_records(decided, achieved_moments, ddof=pipeline.rbt.ddof)
    privacy = privacy_report_from_moments(columns, privacy_moments, ddof=pipeline.ddof)
    return n_rows, privacy_state, achieved_states, records, privacy


# --------------------------------------------------------------------------- #
# Module-level conveniences (the names the issue tracker uses)
# --------------------------------------------------------------------------- #
def create_release(input_path, bundle_dir, **options):
    """Create a bundle from ``input_path``; returns ``(bundle, report)``."""
    return VersionedReleaseBundle.create(input_path, bundle_dir, **options)


def open_release(bundle_dir) -> VersionedReleaseBundle:
    """Open an existing bundle directory."""
    return VersionedReleaseBundle.open(bundle_dir)


def append_release(bundle, new_rows, **options) -> StreamingReleaseReport:
    """Append ``new_rows`` to ``bundle`` (a :class:`VersionedReleaseBundle` or a path)."""
    if not isinstance(bundle, VersionedReleaseBundle):
        bundle = VersionedReleaseBundle.open(bundle)
    return bundle.append(new_rows, **options)


def sequential_attack_params(bundle: VersionedReleaseBundle) -> dict:
    """Parameters for the ``sequential_release`` attack against this bundle.

    The attack observes the version boundaries (releases are append-only, so
    release v*k* is exactly the first ``version_rows[k-1]`` rows of the
    current release) and intersects the angle hypotheses consistent with
    every prefix.
    """
    return {"version_rows": list(bundle.version_rows())}
