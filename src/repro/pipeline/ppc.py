"""The end-to-end privacy-preserving clustering (PPC) pipeline.

The paper's Figure 1 shows the data owner's workflow: raw data →
normalization → data distortion → release.  Section 5.3 adds identifier
suppression / anonymization.  :class:`PPCPipeline` packages the whole flow so
examples and benchmarks can go from a relational table (or raw matrix) to a
release plus evidence in a few lines:

1. suppress identifiers (schema-driven or explicit),
2. normalize the confidential attributes,
3. distort with RBT,
4. measure privacy (per-attribute ``Var(X − X')``),
5. optionally verify Corollary 1 by clustering original and released data
   with any set of clustering algorithms and comparing the partitions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..clustering import KMeans
from ..clustering.base import ClusteringAlgorithm
from ..core import RBT, RBTResult
from ..data import DataMatrix, Table
from ..exceptions import ValidationError
from ..metrics import (
    adjusted_rand_index,
    clusters_identical,
    misclassification_error,
    privacy_report,
)
from ..metrics.privacy import PrivacyReport
from ..perf.cache import DistanceCache
from ..perf.kernels import max_abs_distance_difference
from ..preprocessing import IdentifierSuppressor, Normalizer, ZScoreNormalizer

__all__ = ["PPCPipeline", "ReleaseBundle", "EquivalenceReport"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Corollary 1 evidence for one clustering algorithm."""

    #: Algorithm name.
    algorithm: str
    #: Whether the partitions on original and released data are identical.
    identical: bool
    #: Misclassification error between the two partitions (0.0 when identical).
    misclassification: float
    #: Adjusted Rand index between the two partitions (1.0 when identical).
    adjusted_rand: float


@dataclass(frozen=True)
class ReleaseBundle:
    """Everything the data owner gets back from one pipeline run."""

    #: The normalized (pre-distortion) matrix — stays with the owner.
    normalized: DataMatrix
    #: The released (RBT-transformed) matrix — what is shared for clustering.
    released: DataMatrix
    #: The RBT bookkeeping (pairs, security ranges, angles) — the owner's secret.
    rbt_result: RBTResult
    #: Per-attribute privacy measurements comparing normalized vs released data.
    privacy: PrivacyReport
    #: Maximum absolute change of any pairwise distance (Theorem 2 check).
    max_distance_distortion: float
    #: Corollary 1 evidence, one entry per requested clustering algorithm.
    equivalence: tuple[EquivalenceReport, ...] = field(default_factory=tuple)

    @property
    def distances_preserved(self) -> bool:
        """Whether the dissimilarity matrix survived the transformation (Theorem 2)."""
        return self.max_distance_distortion < 1e-8

    def summary(self) -> dict:
        """A JSON-friendly summary of the release (for logging / examples)."""
        return {
            "n_objects": self.released.n_objects,
            "n_attributes": self.released.n_attributes,
            "pairs": [list(pair) for pair in self.rbt_result.pairs],
            "angles_degrees": list(self.rbt_result.angles_degrees),
            "min_variance_difference": self.privacy.minimum_variance_difference,
            "mean_variance_difference": self.privacy.mean_variance_difference,
            "max_distance_distortion": self.max_distance_distortion,
            "distances_preserved": self.distances_preserved,
            "equivalence": [
                {
                    "algorithm": report.algorithm,
                    "identical": report.identical,
                    "misclassification": report.misclassification,
                    "adjusted_rand": report.adjusted_rand,
                }
                for report in self.equivalence
            ],
        }


class PPCPipeline:
    """Suppress → normalize → rotate → measure, in one object.

    Parameters
    ----------
    rbt:
        A configured :class:`~repro.core.RBT` transformer.  Defaults to the
        interleaved pairing strategy with a threshold of 0.25 per attribute.
    normalizer:
        Normalizer applied before distortion (defaults to z-score, the
        paper's choice).
    suppressor:
        Identifier suppressor applied first.
    ddof:
        Estimator used by the privacy report (1 matches the paper's numbers).
    distance_cache:
        Sharing policy for dissimilarity matrices during the Corollary 1
        equivalence checks.  ``True`` (default) builds one
        :class:`~repro.perf.cache.DistanceCache` per :meth:`run`, so every
        distance-based algorithm clustering the same (dataset, metric)
        reuses one matrix instead of recomputing it; an explicit cache
        instance is shared across runs; ``False`` disables sharing.  Cached
        and uncached runs produce byte-identical bundles.
    backend:
        Execution backend spec for the chunked kernels underneath the run —
        the Theorem 2 distortion scan and any cache-filling distance
        computation (see :mod:`repro.perf.backends`).  Serial and
        process-pool produce byte-identical bundles.

    Examples
    --------
    >>> from repro.data.datasets import make_patient_cohorts
    >>> matrix, _ = make_patient_cohorts(n_patients=60, random_state=0)
    >>> bundle = PPCPipeline().run(matrix)
    >>> bundle.distances_preserved
    True
    """

    def __init__(
        self,
        rbt: RBT | None = None,
        *,
        normalizer: Normalizer | None = None,
        suppressor: IdentifierSuppressor | None = None,
        ddof: int = 1,
        distance_cache: DistanceCache | bool = True,
        backend=None,
    ) -> None:
        self.rbt = rbt if rbt is not None else RBT()
        self.normalizer = normalizer if normalizer is not None else ZScoreNormalizer()
        self.suppressor = suppressor if suppressor is not None else IdentifierSuppressor()
        self.ddof = ddof
        self.distance_cache = distance_cache
        self.backend = backend

    def run(
        self,
        data: Table | DataMatrix,
        *,
        id_column: str | None = None,
        algorithms: Sequence[ClusteringAlgorithm] | None = None,
        verify_with_kmeans: bool = False,
        n_clusters: int = 3,
        random_state=0,
    ) -> ReleaseBundle:
        """Run the full pipeline on ``data`` and return the :class:`ReleaseBundle`.

        Parameters
        ----------
        data:
            A relational :class:`Table` (identifier roles are suppressed) or a
            numeric :class:`DataMatrix`.
        id_column:
            For tables: column to carry along as object ids before it is
            suppressed from the released attributes.
        algorithms:
            Clustering algorithms used to produce Corollary 1 evidence (each
            is run on the normalized and on the released data and the
            partitions are compared).
        verify_with_kmeans:
            Convenience flag: when ``True`` and ``algorithms`` is ``None``, a
            deterministic k-means with ``n_clusters`` is used for the
            equivalence check.
        n_clusters, random_state:
            Parameters of that default k-means.
        """
        normalized = self._prepare(data, id_column=id_column)
        rbt_result = self.rbt.transform(normalized)
        released = rbt_result.matrix

        report = privacy_report(normalized, released, ddof=self.ddof)
        # Block-wise Theorem 2 check: the worst |d − d'| is found without
        # materializing either full dissimilarity matrix.
        max_distortion = max_abs_distance_difference(
            normalized.values, released.values, backend=self.backend
        )

        if algorithms is None and verify_with_kmeans:
            algorithms = [KMeans(n_clusters=n_clusters, random_state=random_state)]
        cache = self._resolve_cache()
        equivalence = tuple(
            self._equivalence(algorithm, normalized, released, cache)
            for algorithm in (algorithms or [])
        )
        return ReleaseBundle(
            normalized=normalized,
            released=released,
            rbt_result=rbt_result,
            privacy=report,
            max_distance_distortion=max_distortion,
            equivalence=equivalence,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _prepare(self, data, *, id_column: str | None) -> DataMatrix:
        if isinstance(data, Table):
            ids = None
            if id_column is not None:
                if id_column not in data.schema:
                    raise ValidationError(f"unknown id column {id_column!r}")
                ids = list(data.column(id_column))
            suppressed = self.suppressor.transform_table(data)
            matrix = suppressed.to_matrix()
            if ids is not None:
                matrix = DataMatrix(matrix.values, columns=matrix.columns, ids=ids)
        elif isinstance(data, DataMatrix):
            matrix = self.suppressor.transform_matrix(data)
        else:
            raise ValidationError(
                f"PPCPipeline expects a Table or DataMatrix, got {type(data).__name__}"
            )
        return self.normalizer.fit(matrix).transform(matrix)

    def _resolve_cache(self) -> DistanceCache | None:
        """The distance cache for one :meth:`run` (fresh, shared, or none)."""
        if self.distance_cache is True:
            return DistanceCache(backend=self.backend)
        if isinstance(self.distance_cache, DistanceCache):
            return self.distance_cache
        return None

    @staticmethod
    def _equivalence(
        algorithm: ClusteringAlgorithm,
        normalized: DataMatrix,
        released: DataMatrix,
        cache: DistanceCache | None = None,
    ) -> EquivalenceReport:
        # Lend the run's cache to algorithms that don't bring their own, so
        # both fits (and the other algorithms) share one distance matrix per
        # (dataset, metric).
        inject = cache is not None and getattr(algorithm, "distance_cache", False) is None
        if inject:
            algorithm.distance_cache = cache
        try:
            labels_original = algorithm.fit_predict(normalized)
            labels_released = algorithm.fit_predict(released)
        finally:
            if inject:
                algorithm.distance_cache = None
        return EquivalenceReport(
            algorithm=getattr(algorithm, "name", type(algorithm).__name__),
            identical=clusters_identical(labels_original, labels_released),
            misclassification=misclassification_error(labels_original, labels_released),
            adjusted_rand=adjusted_rand_index(labels_original, labels_released),
        )
