"""Threat models, the attack-suite runner and paper-style audit reports.

The paper's Section 5.2 security argument is evidence the data owner should
be able to regenerate against *their own* release — at the same scale, and
under the same memory budget, as the release itself.  This module packages
that workflow:

* :class:`ThreatModel` — a declarative, JSON-round-tripping description of
  an adversary: which registry attacks to run, with which parameters, under
  which seed, and the privacy threshold the release must clear.
* :class:`AttackSuite` — runs a threat model against evidence of either
  kind: an in-memory :class:`~repro.pipeline.ReleaseBundle` /
  :class:`~repro.data.DataMatrix` pair (dense attack engine), or released /
  original **CSV paths**, audited chunk-wise via
  :func:`~repro.data.io.iter_matrix_csv` with the moment-space engine of
  :mod:`repro.attacks.streamed` — the matrices are never materialized.
* :class:`AuditReport` — the attack-error-vs-work-factor table, the
  Table-5-style re-normalization diagnostic, per-attribute ``Var(X − X')``
  with threshold verdicts, as canonical JSON and paper-style Markdown.

Caching and determinism
-----------------------
Every (attack, evidence) cell is keyed by a SHA-256 content hash — the
attack's canonical parameters, its derived seed and the evidence
fingerprints — and cached on disk exactly like the experiment runner's
trials.  Results are built from the JSON-safe row (not the live numpy
objects), so a cold run, a warm run and any mix of the two emit
**byte-identical** reports; and because the streamed engine is
chunk-invariant, the chunking knobs are deliberately *not* part of the key.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..attacks import build_attack, plan_attack, plan_known_sample
from ..attacks.base import distance_change_diagnostics
from ..attacks.streamed import MomentSketch
from ..data import DataMatrix
from ..data.io import atomic_write_text, iter_matrix_csv
from ..exceptions import AttackError, ValidationError
from ..metrics import privacy_report
from ..perf.cache import DistanceCache
from ..perf.streaming import StreamingMoments
from .streaming import resolve_chunk_rows

__all__ = [
    "AttackOutcome",
    "AttackSuite",
    "AuditReport",
    "ThreatModel",
    "BUILTIN_THREAT_MODELS",
    "builtin_threat_model",
    "federated_threat_model",
]

#: Bump to invalidate cached audit rows when their payload or execution
#: semantics change.  v2: the exact bucket-accumulator sketches changed
#: streamed evidence at the ulp level, and ``known_sample`` grew the
#: ``index_ranges`` (colluding-parties) parameter.
AUDIT_CACHE_SCHEMA_VERSION = 2


def _canonical_json(payload) -> str:
    from ..experiments.spec import canonical_json

    return canonical_json(payload)


def _content_hash(payload) -> str:
    from ..experiments.spec import content_hash

    return content_hash(payload)


def _derive_seed(seed: int, *parts: str) -> int:
    from ..experiments.registry import derive_seed

    return derive_seed(seed, *parts)


def _jsonable(value):
    """Recursively convert a details payload to plain JSON types."""
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, float) and np.isnan(value):
        return None
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


# --------------------------------------------------------------------------- #
# Threat models
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ThreatModel:
    """A declarative adversary: named attacks, parameters, seed, threshold.

    Attributes
    ----------
    name:
        Model name; used for output filenames.
    attacks:
        The attacks to run, as ``AxisSpec``-shaped entries (registry name
        plus keyword parameters).
    seed:
        Master seed; each attack's randomness is derived from it and the
        attack's name/position, so a model audits identically everywhere.
    privacy_threshold:
        The per-attribute ``Var(X − X')`` level every attribute must clear
        for the privacy verdict (the paper's ρ).
    description:
        Free-text note carried into the report.
    """

    name: str
    attacks: tuple
    seed: int = 0
    privacy_threshold: float = 0.25
    description: str = ""

    def __post_init__(self) -> None:
        from ..experiments.spec import AxisSpec, canonical_json

        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("a threat model needs a non-empty name")
        if any(sep in self.name for sep in ("/", "\\", "..")) or self.name.startswith("."):
            raise ValidationError(
                f"threat model names must not contain path separators, got {self.name!r}"
            )
        entries = tuple(
            entry if isinstance(entry, AxisSpec) else AxisSpec.parse(entry, axis="attacks")
            for entry in self.attacks
        )
        if not entries:
            raise ValidationError(f"threat model {self.name!r}: attacks must not be empty")
        cells = [canonical_json(entry.canonical()) for entry in entries]
        if len(set(cells)) != len(cells):
            raise ValidationError(f"threat model {self.name!r}: attacks contains duplicates")
        object.__setattr__(self, "attacks", entries)
        object.__setattr__(self, "seed", int(self.seed))
        threshold = float(self.privacy_threshold)
        if threshold <= 0:
            raise ValidationError(f"privacy_threshold must be positive, got {threshold}")
        object.__setattr__(self, "privacy_threshold", threshold)

    def canonical(self) -> dict:
        """JSON-ready form of the model (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "privacy_threshold": self.privacy_threshold,
            "attacks": [entry.canonical() for entry in self.attacks],
        }

    def attack_seed(self, index: int) -> int:
        """The derived seed for the attack at position ``index``."""
        entry = self.attacks[index]
        return _derive_seed(self.seed, "attack", entry.name, str(index))

    @classmethod
    def from_dict(cls, payload: Mapping) -> ThreatModel:
        """Build a model from parsed JSON, validating the schema."""
        if not isinstance(payload, Mapping):
            raise ValidationError(f"a threat model must be a JSON object, got {payload!r}")
        known = {"name", "description", "seed", "privacy_threshold", "attacks"}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"threat model has unknown keys {sorted(unknown)}")
        missing = {"name", "attacks"} - set(payload)
        if missing:
            raise ValidationError(f"threat model is missing keys {sorted(missing)}")
        attacks = payload["attacks"]
        if not isinstance(attacks, Sequence) or isinstance(attacks, (str, bytes)):
            raise ValidationError("attacks must be a JSON array")
        return cls(
            name=payload["name"],
            description=str(payload.get("description", "")),
            seed=int(payload.get("seed", 0)),
            privacy_threshold=float(payload.get("privacy_threshold", 0.25)),
            attacks=tuple(attacks),
        )

    @classmethod
    def from_json(cls, text: str) -> ThreatModel:
        """Parse a model from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid threat model JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> ThreatModel:
        """Load a model from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path) -> None:
        """Write the model as indented JSON (the reviewable artifact form).

        Published atomically so an interrupted save never leaves a torn
        threat-model file for a later audit to misread.
        """
        atomic_write_text(path, json.dumps(self.canonical(), indent=2) + "\n")


def _paper_public() -> ThreatModel:
    return ThreatModel(
        name="paper_public",
        description=(
            "Section 5.2 adversaries with public knowledge only: the Table 5 "
            "re-normalization shortcut, the variance-fingerprint matcher and "
            "the brute-force pairing/angle search."
        ),
        attacks=(
            {"name": "renormalization"},
            {"name": "variance_fingerprint", "params": {"angle_resolution": 90}},
            {
                "name": "brute_force_angle",
                "params": {"angle_resolution": 24, "max_pairings": 8},
            },
        ),
    )


def _insider() -> ThreatModel:
    return ThreatModel(
        name="insider",
        description=(
            "The known-sample regression adversary (beyond the paper): an "
            "insider who knows a handful of original records."
        ),
        attacks=({"name": "known_sample", "params": {"n_known": 8}},),
    )


def _full() -> ThreatModel:
    return ThreatModel(
        name="full",
        description="Every registered adversary, public and insider.",
        attacks=(
            {"name": "renormalization"},
            {"name": "variance_fingerprint", "params": {"angle_resolution": 90}},
            {
                "name": "brute_force_angle",
                "params": {"angle_resolution": 24, "max_pairings": 8},
            },
            {"name": "known_sample", "params": {"n_known": 8}},
        ),
    )


BUILTIN_THREAT_MODELS = {
    "paper_public": _paper_public,
    "insider": _insider,
    "full": _full,
}


def builtin_threat_model(name: str) -> ThreatModel:
    """Return a fresh copy of the built-in threat model called ``name``."""
    try:
        factory = BUILTIN_THREAT_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_THREAT_MODELS))
        raise ValidationError(f"unknown threat model {name!r}; known: {known}") from None
    return factory()


def federated_threat_model(
    party_rows: Sequence[int],
    *,
    seed: int = 0,
    privacy_threshold: float = 0.25,
    project_to_orthogonal: bool = True,
    success_tolerance: float = 0.1,
) -> ThreatModel:
    """Colluding-parties adversaries for a horizontally-federated release.

    In a :class:`~repro.distributed.DistributedReleasePipeline` release each
    party's rows occupy one contiguous block, in party order, and every
    party knows its *own* original rows.  The strongest realistic insider is
    therefore a coalition of all parties but one running the known-sample
    regression with their combined blocks as side information, trying to
    reconstruct the remaining victim's rows.  This factory builds one such
    leave-one-out attack per victim party (skipping victims whose coalition
    would be empty of rows), so the audit reports per-victim evidence
    through the ordinary :class:`AttackSuite` machinery — cached, seeded
    and rendered like any other threat model.

    ``party_rows`` is the per-party row count in release order (the
    ``party_rows`` field of the distributed report).
    """
    rows = [int(count) for count in party_rows]
    if len(rows) < 2:
        raise ValidationError(
            "federated_threat_model needs at least two parties (no coalition otherwise)"
        )
    if any(count < 0 for count in rows):
        raise ValidationError(f"party_rows must be non-negative, got {rows}")
    offsets = [0]
    for count in rows:
        offsets.append(offsets[-1] + count)
    attacks = []
    for victim in range(len(rows)):
        if rows[victim] == 0:
            # An empty shard has no rows to reconstruct (and its coalition
            # would duplicate another victim's).
            continue
        coalition = [
            [offsets[party], offsets[party + 1]]
            for party in range(len(rows))
            if party != victim and rows[party] > 0
        ]
        if not coalition:
            continue
        attacks.append(
            {
                "name": "known_sample",
                "params": {
                    "index_ranges": coalition,
                    "project_to_orthogonal": project_to_orthogonal,
                    "success_tolerance": success_tolerance,
                },
            }
        )
    if not attacks:
        raise ValidationError(
            f"party_rows {rows} leaves every coalition empty; nothing to audit"
        )
    return ThreatModel(
        name="federated_collusion",
        description=(
            f"Leave-one-out collusion over {len(rows)} federated parties: every "
            "coalition of all-but-one parties runs the known-sample regression "
            "with its combined release blocks as side information."
        ),
        seed=seed,
        privacy_threshold=privacy_threshold,
        attacks=tuple(attacks),
    )


# --------------------------------------------------------------------------- #
# Outcomes and the report
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AttackOutcome:
    """One attack's row of the audit: effort vs. achievement."""

    #: Registry name of the attack.
    attack: str
    #: Human-readable label (name plus parameters).
    label: str
    #: ``dense`` (in-memory matrices) or ``moment`` (streamed evidence).
    engine: str
    #: Hypotheses scored / records used — the work factor.
    work: int
    #: Reconstruction RMSE against the original (``nan`` without ground truth).
    error: float
    #: Breach flag under the attack's own tolerance.
    succeeded: bool
    #: Per-attribute RMSE profile, or ``None`` without ground truth.
    per_attribute_errors: tuple[float, ...] | None
    #: JSON-safe attack-specific extras (hypothesis, diagnostics).
    details: dict = field(default_factory=dict)
    #: Content hash of the (attack, evidence) cell this row was computed
    #: for; an incremental re-audit reuses the row while the hash matches.
    evidence_hash: str | None = None

    @property
    def worst_attribute_error(self) -> float:
        """The largest per-attribute RMSE (``nan`` without ground truth)."""
        if not self.per_attribute_errors:
            return float("nan")
        return max(self.per_attribute_errors)

    def as_dict(self) -> dict:
        """JSON-ready row (``nan`` encoded as ``None``)."""
        return {
            "attack": self.attack,
            "label": self.label,
            "engine": self.engine,
            "work": self.work,
            "error": None if np.isnan(self.error) else self.error,
            "succeeded": self.succeeded,
            "per_attribute_errors": (
                None
                if self.per_attribute_errors is None
                else list(self.per_attribute_errors)
            ),
            "details": self.details,
            "evidence_hash": self.evidence_hash,
        }


def _fmt(value, digits: int = 4) -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


@dataclass(frozen=True)
class AuditReport:
    """Everything one :class:`AttackSuite` run established about a release."""

    #: Canonical dict of the threat model that was run.
    threat_model: dict
    #: ``in_memory`` or ``streamed``.
    mode: str
    #: Released shape and attribute names.
    n_objects: int
    n_attributes: int
    columns: tuple[str, ...]
    #: One row per attack, in threat-model order.
    outcomes: tuple[AttackOutcome, ...]
    #: Per-attribute privacy evidence (``None`` without an original).
    privacy: dict | None
    #: Threshold verdicts derived from the outcomes and the privacy evidence.
    verdicts: dict
    #: Bookkeeping (excluded from the canonical JSON so re-runs are bitwise).
    executed: int = 0
    cached: int = 0
    #: Rows served from a ``prior_report`` instead of the cache or execution.
    reused: int = 0
    elapsed_seconds: float = 0.0

    @property
    def breached(self) -> bool:
        """Whether any attack breached the release."""
        return bool(self.verdicts.get("breached", False))

    def work_factor_table(self) -> list[dict]:
        """The attack-error-vs-work rows (the Section 5.2 argument as data)."""
        return [
            {
                "attack": outcome.label,
                "engine": outcome.engine,
                "work": outcome.work,
                "error": None if np.isnan(outcome.error) else outcome.error,
                "succeeded": outcome.succeeded,
            }
            for outcome in self.outcomes
        ]

    def to_json(self) -> str:
        """Canonical JSON: identical bits for cached and uncached runs."""
        payload = {
            "threat_model": self.threat_model,
            "mode": self.mode,
            "n_objects": self.n_objects,
            "n_attributes": self.n_attributes,
            "columns": list(self.columns),
            "attacks": [outcome.as_dict() for outcome in self.outcomes],
            "privacy": self.privacy,
            "verdicts": self.verdicts,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_markdown(self) -> str:
        """Paper-style Markdown audit report."""
        model = self.threat_model
        lines = [f"# Security audit — {model['name']}", ""]
        if model.get("description"):
            lines += [model["description"], ""]
        lines += [
            f"Release: {self.n_objects} objects x {self.n_attributes} attributes "
            f"({self.mode} evidence); seed {model['seed']}.",
            "",
            "## Attack error vs. work factor",
            "",
            "| attack | engine | work | RMSE | worst attribute RMSE | breach |",
            "|---|---|---|---|---|---|",
        ]
        for outcome in self.outcomes:
            lines.append(
                "| "
                + " | ".join(
                    [
                        outcome.label,
                        outcome.engine,
                        str(outcome.work),
                        _fmt(outcome.error),
                        _fmt(outcome.worst_attribute_error),
                        _fmt(outcome.succeeded),
                    ]
                )
                + " |"
            )
        lines.append("")

        renorm = next(
            (o for o in self.outcomes if "max_distance_change" in o.details), None
        )
        if renorm is not None:
            lines += [
                "## Re-normalization diagnostic (Table 5)",
                "",
                "| attack | max abs Δd | distances preserved |",
                "|---|---|---|",
                "| "
                + " | ".join(
                    [
                        renorm.label,
                        _fmt(float(renorm.details["max_distance_change"])),
                        _fmt(bool(renorm.details["distances_preserved"])),
                    ]
                )
                + " |",
                "",
            ]

        if self.privacy is not None:
            threshold = self.verdicts["privacy_threshold"]
            lines += [
                f"## Privacy evidence (threshold ρ = {threshold})",
                "",
                "| attribute | Var(X−X′) | released variance | clears ρ |",
                "|---|---|---|---|",
            ]
            for name in self.columns:
                item = self.privacy["attributes"][name]
                lines.append(
                    "| "
                    + " | ".join(
                        [
                            name,
                            _fmt(item["variance_difference"]),
                            _fmt(item["released_variance"]),
                            _fmt(bool(item["variance_difference"] >= threshold)),
                        ]
                    )
                    + " |"
                )
            lines.append("")

        lines += ["## Verdict", ""]
        if self.verdicts.get("privacy_satisfied") is not None:
            lines.append(
                f"- privacy threshold: "
                f"{'satisfied' if self.verdicts['privacy_satisfied'] else 'VIOLATED'} "
                f"(min Var(X−X′) = {_fmt(self.verdicts.get('min_variance_difference'))})"
            )
        if self.breached:
            lines.append(
                f"- breach: YES — {', '.join(self.verdicts['breached_by'])} "
                "reconstructed the data within tolerance"
            )
        else:
            lines.append("- breach: no attack reconstructed the data within tolerance")
        lines.append(
            f"- total attacker work: {int(sum(o.work for o in self.outcomes))} hypotheses"
        )
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# The suite runner
# --------------------------------------------------------------------------- #
def _file_fingerprint(path: Path) -> str:
    """SHA-256 of a file's bytes, read in bounded blocks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _matrix_fingerprint(matrix: DataMatrix) -> str:
    digest = hashlib.sha256()
    digest.update(DistanceCache.fingerprint(matrix.values).encode())
    digest.update("\x1f".join(matrix.columns).encode())
    return digest.hexdigest()


def _run_dense_attack(payload: dict) -> dict:
    """Execute one dense attack trial (module-level so process pools pickle it)."""
    released = DataMatrix(payload["released"], columns=payload["columns"])
    original = (
        None
        if payload["original"] is None
        else DataMatrix(payload["original"], columns=payload["columns"])
    )
    attack = build_attack(
        payload["attack"]["name"],
        payload["attack"].get("params", {}),
        random_state=payload["attack_seed"],
    )
    result = attack.run(released, original)
    return {
        "work": int(result.work),
        "error": None if np.isnan(result.error) else float(result.error),
        "succeeded": bool(result.succeeded),
        "per_attribute_errors": (
            None
            if result.per_attribute_errors is None
            else [float(value) for value in result.per_attribute_errors]
        ),
        "details": _jsonable(dict(result.details)),
    }


def _prior_rows(prior_report) -> dict[str, dict]:
    """Index a previous report's attack rows by their (attack, evidence) hash.

    Accepts an :class:`AuditReport`, the dict of its canonical JSON, or a
    path to the JSON file.  Rows without an ``evidence_hash`` (reports from
    before the field existed) are simply not reusable.
    """
    if prior_report is None:
        return {}
    if isinstance(prior_report, AuditReport):
        attacks = [outcome.as_dict() for outcome in prior_report.outcomes]
    elif isinstance(prior_report, Mapping):
        attacks = prior_report.get("attacks", [])
    else:
        try:
            payload = json.loads(Path(prior_report).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"cannot read prior audit report {prior_report}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError(f"{prior_report} is not an audit-report JSON object")
        attacks = payload.get("attacks", [])
    rows: dict[str, dict] = {}
    for entry in attacks:
        key = entry.get("evidence_hash")
        if not key:
            continue
        rows[key] = {
            "hash": key,
            "work": entry["work"],
            "error": entry["error"],
            "succeeded": entry["succeeded"],
            "per_attribute_errors": entry["per_attribute_errors"],
            "details": entry.get("details", {}),
        }
    return rows


class AttackSuite:
    """Run a threat model against release evidence, with an on-disk cache.

    Parameters
    ----------
    threat_model:
        A :class:`ThreatModel`, a built-in name (``paper_public``,
        ``insider``, ``full``) or a dict in the JSON schema.
    workers, executor:
        Pool configuration.  Dense (in-memory) attacks are independent and
        parallelize like experiment trials; the streamed engine is
        pass-structured but fans its per-attack planning stage over a
        thread pool (``executor`` applies to the dense engine only).
        Any pool size produces byte-identical reports.
    cache_dir:
        Directory for per-attack result JSON, keyed by content hash
        (attack + seed + evidence fingerprints).  ``None`` disables
        caching.  Because both engines are chunk-invariant, the chunking
        knobs are not part of the key: a re-run with any ``chunk_rows``
        is a 100% cache hit.
    distance_sample_rows:
        Row-sample size for the streamed Table-5 distance diagnostic (the
        full ``O(m²)`` matrix would defeat the memory budget).
    backend:
        Execution backend spec for the kernels underneath the audit — the
        streamed evidence accumulators, the dense engine's distance cache
        and the angle-grid scans of attacks that accept one (see
        :mod:`repro.perf.backends`).  Serial and process-pool audits are
        byte identical, which is why the backend is *not* part of the
        cache key.  With ``executor="process"`` the dense attacks already
        run in their own worker processes, which force the serial backend
        internally — the two parallelism schemes never nest.
    """

    def __init__(
        self,
        threat_model="paper_public",
        *,
        workers: int = 1,
        executor: str = "thread",
        cache_dir=None,
        distance_sample_rows: int = 256,
        backend=None,
        codec: str | None = None,
    ) -> None:
        from ..perf.csv_codec import resolve_codec
        if isinstance(threat_model, str):
            threat_model = builtin_threat_model(threat_model)
        elif isinstance(threat_model, Mapping):
            threat_model = ThreatModel.from_dict(threat_model)
        if not isinstance(threat_model, ThreatModel):
            raise ValidationError(
                f"threat_model must be a ThreatModel, a built-in name or a dict, "
                f"got {type(threat_model).__name__}"
            )
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if executor not in ("thread", "process"):
            raise ValidationError(f"executor must be 'thread' or 'process', got {executor!r}")
        self.threat_model = threat_model
        self.workers = int(workers)
        self.executor = executor
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.distance_sample_rows = int(distance_sample_rows)
        self.backend = backend
        # Decode lane for the streamed engine; fast and python parse the
        # same bits, so (like the backend) it is not part of the cache key.
        self.codec = resolve_codec(codec)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run(
        self,
        released,
        original=None,
        *,
        id_column: str | None = "id",
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        ddof: int = 1,
        prior_report=None,
        profiler=None,
    ) -> AuditReport:
        """Audit ``released`` (a :class:`DataMatrix` or a CSV path).

        With matrices the dense attack engine runs; with paths the evidence
        is streamed chunk-wise and the moment-space engine runs.  Mixing the
        two kinds is rejected.

        ``prior_report`` makes the audit *incremental*: pass a previous
        :class:`AuditReport` (or its JSON dict, or a path to the JSON file)
        and every attack row whose (attack, evidence) content hash still
        matches is reused verbatim instead of re-executed — only evidence
        that actually changed is recomputed.  Reused rows are counted in
        :attr:`AuditReport.reused` and the emitted report stays
        byte-identical to a from-scratch run.
        """
        prior_rows = _prior_rows(prior_report)
        if isinstance(released, DataMatrix):
            if original is not None and not isinstance(original, DataMatrix):
                raise ValidationError(
                    "released is a DataMatrix, so original must be one too"
                )
            return self._run_in_memory(released, original, ddof=ddof, prior_rows=prior_rows)
        if isinstance(original, DataMatrix):
            raise ValidationError("released is a path, so original must be a path too")
        return self._run_streamed(
            Path(released),
            None if original is None else Path(original),
            id_column=id_column,
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
            ddof=ddof,
            prior_rows=prior_rows,
            profiler=profiler,
        )

    def run_bundle(self, bundle, *, ddof: int = 1) -> AuditReport:
        """Audit a :class:`~repro.pipeline.ReleaseBundle` (released vs. normalized)."""
        return self.run(bundle.released, bundle.normalized, ddof=ddof)

    # ------------------------------------------------------------------ #
    # Shared plumbing
    # ------------------------------------------------------------------ #
    def _attack_key(
        self,
        index: int,
        mode: str,
        released_fp: str,
        original_fp: str | None,
        extra: dict | None = None,
    ) -> str:
        entry = self.threat_model.attacks[index]
        return _content_hash(
            {
                "schema": AUDIT_CACHE_SCHEMA_VERSION,
                "kind": "attack",
                "attack": entry.canonical(),
                "seed": self.threat_model.attack_seed(index),
                "mode": mode,
                "released": released_fp,
                "original": original_fp,
                **(extra or {}),
            }
        )

    def _cache_load(self, key: str) -> dict | None:
        if self.cache_dir is None:
            return None
        try:
            row = json.loads((self.cache_dir / f"{key}.json").read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(row, dict) or row.get("hash") != key:
            return None
        return row

    def _cache_store(self, key: str, row: dict) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{key}.json"
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        temporary.write_text(_canonical_json(row), encoding="utf-8")
        os.replace(temporary, path)

    def _outcome(self, index: int, engine: str, row: dict) -> AttackOutcome:
        entry = self.threat_model.attacks[index]
        return AttackOutcome(
            attack=entry.name,
            label=entry.label,
            engine=engine,
            work=int(row["work"]),
            error=float("nan") if row["error"] is None else float(row["error"]),
            succeeded=bool(row["succeeded"]),
            per_attribute_errors=(
                None
                if row["per_attribute_errors"] is None
                else tuple(float(value) for value in row["per_attribute_errors"])
            ),
            details=row.get("details", {}),
            evidence_hash=row.get("hash"),
        )

    def _verdicts(self, outcomes: Sequence[AttackOutcome], privacy: dict | None) -> dict:
        breached_by = [outcome.label for outcome in outcomes if outcome.succeeded]
        verdicts: dict = {
            "breached": bool(breached_by),
            "breached_by": breached_by,
            "privacy_threshold": self.threat_model.privacy_threshold,
            "privacy_satisfied": None,
            "min_variance_difference": None,
        }
        if privacy is not None:
            minimum = privacy["min_variance_difference"]
            verdicts["min_variance_difference"] = minimum
            verdicts["privacy_satisfied"] = bool(
                minimum >= self.threat_model.privacy_threshold
            )
        return verdicts

    def _report(
        self,
        mode: str,
        n_objects: int,
        columns: Sequence[str],
        outcomes: Sequence[AttackOutcome],
        privacy: dict | None,
        executed: int,
        cached: int,
        elapsed: float,
        reused: int = 0,
    ) -> AuditReport:
        return AuditReport(
            threat_model=self.threat_model.canonical(),
            mode=mode,
            n_objects=int(n_objects),
            n_attributes=len(columns),
            columns=tuple(columns),
            outcomes=tuple(outcomes),
            privacy=privacy,
            verdicts=self._verdicts(outcomes, privacy),
            executed=executed,
            cached=cached,
            reused=reused,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Dense (in-memory) engine
    # ------------------------------------------------------------------ #
    def _run_in_memory(
        self,
        released: DataMatrix,
        original: DataMatrix | None,
        *,
        ddof: int,
        prior_rows: dict[str, dict] | None = None,
    ) -> AuditReport:
        started = time.perf_counter()
        if original is not None and released.shape != original.shape:
            raise ValidationError(
                f"released and original must have the same shape, "
                f"got {released.shape} and {original.shape}"
            )
        released_fp = _matrix_fingerprint(released)
        original_fp = None if original is None else _matrix_fingerprint(original)

        indices = range(len(self.threat_model.attacks))
        keys = {i: self._attack_key(i, "in_memory", released_fp, original_fp) for i in indices}
        rows: dict[int, dict] = {}
        pending: list[int] = []
        reused = 0
        for i in indices:
            prior = (prior_rows or {}).get(keys[i])
            if prior is not None:
                rows[i] = prior
                reused += 1
                continue
            row = self._cache_load(keys[i])
            if row is None:
                pending.append(i)
            else:
                rows[i] = row

        cache = DistanceCache(backend=self.backend)
        for i, row in self._execute_dense(pending, released, original, cache):
            row = {"hash": keys[i], "schema": AUDIT_CACHE_SCHEMA_VERSION, **row}
            self._cache_store(keys[i], row)
            rows[i] = row

        privacy = None
        if original is not None:
            report = privacy_report(original, released, ddof=ddof)
            privacy = {
                "attributes": report.as_dict(),
                "min_variance_difference": report.minimum_variance_difference,
                "mean_variance_difference": report.mean_variance_difference,
            }
        outcomes = [self._outcome(i, "dense", rows[i]) for i in indices]
        return self._report(
            "in_memory",
            released.n_objects,
            released.columns,
            outcomes,
            privacy,
            executed=len(pending),
            cached=len(self.threat_model.attacks) - len(pending) - reused,
            reused=reused,
            elapsed=time.perf_counter() - started,
        )

    def _execute_dense(self, pending, released, original, cache):
        """Yield ``(index, row)`` for every pending dense attack."""
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for i in pending:
                yield i, self._dense_row(i, released, original, cache)
            return
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
                futures = {
                    pool.submit(self._dense_row, i, released, original, cache): i
                    for i in pending
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in finished:
                        yield futures[future], future.result()
            return
        payload_base = {
            "released": np.asarray(released.values),
            "columns": list(released.columns),
            "original": None if original is None else np.asarray(original.values),
        }
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    _run_dense_attack,
                    {
                        **payload_base,
                        "attack": self.threat_model.attacks[i].canonical(),
                        "attack_seed": self.threat_model.attack_seed(i),
                    },
                ): i
                for i in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    yield futures[future], future.result()

    def _dense_row(self, index: int, released, original, cache: DistanceCache) -> dict:
        entry = self.threat_model.attacks[index]
        attack = build_attack(
            entry.name, entry.params, random_state=self.threat_model.attack_seed(index)
        )
        # Lend the suite's distance cache to attacks that compute the Table 5
        # diagnostic, so the original's matrix is built once per audit, and
        # the suite's kernel backend to attacks that scan angle grids.
        if getattr(attack, "distance_cache", False) is None:
            attack.distance_cache = cache
        if self.backend is not None and getattr(attack, "backend", False) is None:
            attack.backend = self.backend
        result = attack.run(released, original)
        return {
            "work": int(result.work),
            "error": None if np.isnan(result.error) else float(result.error),
            "succeeded": bool(result.succeeded),
            "per_attribute_errors": (
                None
                if result.per_attribute_errors is None
                else [float(value) for value in result.per_attribute_errors]
            ),
            "details": _jsonable(dict(result.details)),
        }

    # ------------------------------------------------------------------ #
    # Streamed (moment-space) engine
    # ------------------------------------------------------------------ #
    def _run_streamed(
        self,
        released_path: Path,
        original_path: Path | None,
        *,
        id_column: str | None,
        chunk_rows: int | None,
        memory_budget_bytes: int | None,
        ddof: int,
        prior_rows: dict[str, dict] | None = None,
        profiler=None,
    ) -> AuditReport:
        started = time.perf_counter()
        released_fp = _file_fingerprint(released_path)
        original_fp = None if original_path is None else _file_fingerprint(original_path)
        # The chunking knobs are deliberately absent from every key (the
        # engine is chunk-invariant), but knobs that DO change the parsed
        # values or the recorded diagnostics must invalidate: the id-column
        # interpretation and the Table-5 sample size.
        evidence_key = _content_hash(
            {
                "schema": AUDIT_CACHE_SCHEMA_VERSION,
                "kind": "evidence",
                "released": released_fp,
                "original": original_fp,
                "id_column": id_column,
                "ddof": ddof,
                "distance_sample_rows": self.distance_sample_rows,
            }
        )
        indices = range(len(self.threat_model.attacks))
        streamed_extra = {
            "id_column": id_column,
            "distance_sample_rows": self.distance_sample_rows,
        }
        keys = {
            i: self._attack_key(i, "streamed", released_fp, original_fp, streamed_extra)
            for i in indices
        }
        rows: dict[int, dict] = {}
        pending: list[int] = []
        reused = 0
        for i in indices:
            prior = (prior_rows or {}).get(keys[i])
            if prior is not None:
                rows[i] = prior
                reused += 1
                continue
            row = self._cache_load(keys[i])
            if row is None:
                pending.append(i)
            else:
                rows[i] = row
        evidence = self._cache_load(evidence_key)

        if pending or evidence is None:
            evidence, executed_rows = self._stream_execute(
                released_path,
                original_path,
                pending,
                id_column=id_column,
                chunk_rows=chunk_rows,
                memory_budget_bytes=memory_budget_bytes,
                ddof=ddof,
                profiler=profiler,
            )
            evidence = {"hash": evidence_key, "schema": AUDIT_CACHE_SCHEMA_VERSION, **evidence}
            self._cache_store(evidence_key, evidence)
            for i, row in executed_rows.items():
                row = {"hash": keys[i], "schema": AUDIT_CACHE_SCHEMA_VERSION, **row}
                self._cache_store(keys[i], row)
                rows[i] = row

        outcomes = [self._outcome(i, "moment", rows[i]) for i in indices]
        return self._report(
            "streamed",
            evidence["n_objects"],
            evidence["columns"],
            outcomes,
            evidence.get("privacy"),
            executed=len(pending),
            cached=len(self.threat_model.attacks) - len(pending) - reused,
            reused=reused,
            elapsed=time.perf_counter() - started,
        )

    def _stream_execute(
        self,
        released_path: Path,
        original_path: Path | None,
        pending: list[int],
        *,
        id_column: str | None,
        chunk_rows: int | None,
        memory_budget_bytes: int | None,
        ddof: int,
        profiler=None,
    ) -> tuple[dict, dict[int, dict]]:
        """Run the pass-structured streamed audit for the pending attacks."""
        from ..data.io import read_matrix_csv_header

        columns, _ = read_matrix_csv_header(released_path, id_column=id_column)
        n = len(columns)
        resolved_chunk_rows = resolve_chunk_rows(
            n, chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes
        )

        # ---- Pass 1: chunk-invariant moments (and a head sample for the
        # sampled Table 5 diagnostic), over released and original together.
        released_acc = StreamingMoments(n, cross=True, backend=self.backend)
        original_acc = (
            StreamingMoments(n, backend=self.backend) if original_path is not None else None
        )
        difference_acc = (
            StreamingMoments(n, backend=self.backend) if original_path is not None else None
        )
        head_released: list[np.ndarray] = []
        head_original: list[np.ndarray] = []
        head_rows = 0
        n_objects = 0
        paired = self._paired_chunks(
            released_path, original_path, columns, resolved_chunk_rows, id_column
        )
        if profiler is not None:
            paired = profiler.wrap_iter("read", paired)
        for released_chunk, original_chunk in paired:
            with profiler.section("compute") if profiler is not None else nullcontext():
                released_acc.update(released_chunk)
                if original_chunk is not None:
                    original_acc.update(original_chunk)
                    difference_acc.update(original_chunk - released_chunk)
            if head_rows < self.distance_sample_rows:
                take = min(self.distance_sample_rows - head_rows, released_chunk.shape[0])
                head_released.append(released_chunk[:take].copy())
                if original_chunk is not None:
                    head_original.append(original_chunk[:take].copy())
                head_rows += take
            n_objects += released_chunk.shape[0]
        sketch = MomentSketch.from_accumulator(released_acc, ddof=1)
        sample_released = np.vstack(head_released) if head_released else np.empty((0, n))
        sample_original = np.vstack(head_original) if head_original else None

        privacy = None
        if original_path is not None:
            original_variances = original_acc.variances(ddof=ddof)
            released_variances_d = released_acc.variances(ddof=ddof)
            difference_variances = difference_acc.variances(ddof=ddof)
            attributes = {}
            for index, name in enumerate(columns):
                original_variance = float(original_variances[index])
                difference_variance = float(difference_variances[index])
                attributes[name] = {
                    "variance_difference": difference_variance,
                    "scale_invariant": (
                        difference_variance / original_variance
                        if not np.isclose(original_variance, 0.0)
                        else None
                    ),
                    "original_variance": original_variance,
                    "released_variance": float(released_variances_d[index]),
                }
            privacy = {
                "attributes": attributes,
                "min_variance_difference": min(
                    item["variance_difference"] for item in attributes.values()
                ),
                "mean_variance_difference": float(
                    np.mean([item["variance_difference"] for item in attributes.values()])
                ),
            }

        # ---- Pass 2 (only if an insider attack is pending): gather the
        # known record pairs at their absolute row positions.
        known_needs: dict[int, list[int]] = {}
        for i in pending:
            entry = self.threat_model.attacks[i]
            if entry.name != "known_sample":
                continue
            if original_path is None:
                raise AttackError(
                    "the known-sample attack needs the original CSV (--original)"
                )
            attack = build_attack(
                entry.name, entry.params, random_state=self.threat_model.attack_seed(i)
            )
            known_needs[i] = attack.resolve_indices(n_objects)
        known_rows = (
            self._gather_rows(
                released_path,
                original_path,
                columns,
                sorted({idx for need in known_needs.values() for idx in need}),
                resolved_chunk_rows,
                id_column,
            )
            if known_needs
            else {}
        )

        # ---- Planning: moment-space (row-count-free) per pending attack.
        # Plans are independent, so they fan out over the suite's worker
        # pool; results are keyed by position, so any pool size produces
        # the same report.
        def _plan(i: int) -> tuple:
            entry = self.threat_model.attacks[i]
            attack = build_attack(
                entry.name, entry.params, random_state=self.threat_model.attack_seed(i)
            )
            if entry.name == "known_sample":
                gathered = known_needs[i]
                released_rows = np.vstack([known_rows[idx][0] for idx in gathered])
                original_rows = np.vstack([known_rows[idx][1] for idx in gathered])
                reconstruction, work, details = plan_known_sample(
                    attack, released_rows, original_rows
                )
                details["known_indices"] = [int(idx) for idx in gathered]
            else:
                reconstruction, work, details = plan_attack(attack, sketch)
            return attack, reconstruction, work, details

        plans: dict[int, tuple] = {}
        if self.workers > 1 and len(pending) > 1:
            with ThreadPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
                futures = {pool.submit(_plan, i): i for i in pending}
                for future, i in futures.items():
                    plans[i] = future.result()
        else:
            for i in pending:
                plans[i] = _plan(i)

        # ---- Pass 3: one shared scoring pass applying every planned map.
        scores: dict[int, StreamingMoments] = {}
        if original_path is not None and plans:
            for i in plans:
                scores[i] = StreamingMoments(n, backend=self.backend)
            scoring = self._paired_chunks(
                released_path, original_path, columns, resolved_chunk_rows, id_column
            )
            if profiler is not None:
                scoring = profiler.wrap_iter("read", scoring)
            for released_chunk, original_chunk in scoring:
                with profiler.section("compute") if profiler is not None else nullcontext():
                    for i, (_, reconstruction, _, _) in plans.items():
                        scores[i].update(original_chunk - reconstruction.apply(released_chunk))

        executed_rows: dict[int, dict] = {}
        for i, (attack, reconstruction, work, details) in plans.items():
            error = None
            per_attribute = None
            succeeded = False
            if i in scores:
                accumulator = scores[i]
                mean_squared = accumulator.variances(ddof=0) + accumulator.means() ** 2
                per_attribute = [float(value) for value in np.sqrt(mean_squared)]
                error = float(np.sqrt(np.mean(mean_squared)))
                succeeded = bool(error <= attack.success_tolerance)
            if sample_original is not None and (
                attack.name == "renormalization"
                or getattr(attack, "check_distances", False)
            ):
                # The sampled Table 5 diagnostic for attacks that would
                # compute it dense (re-normalization, opted-in insiders).
                diagnostics = distance_change_diagnostics(
                    sample_original, reconstruction.apply(sample_released)
                )
                diagnostics["distance_sample_rows"] = int(sample_released.shape[0])
                details = {**details, **diagnostics}
            executed_rows[i] = {
                "work": int(work),
                "error": error,
                "succeeded": succeeded,
                "per_attribute_errors": per_attribute,
                "details": _jsonable(details),
            }

        evidence = {
            "n_objects": int(n_objects),
            "columns": list(columns),
            "privacy": privacy,
        }
        return evidence, executed_rows

    def _paired_chunks(
        self,
        released_path: Path,
        original_path: Path | None,
        columns: Sequence[str],
        chunk_rows: int,
        id_column: str | None,
    ):
        """Zip released (and original) CSV chunks, validating alignment."""
        released_iter = iter_matrix_csv(
            released_path, chunk_rows=chunk_rows, id_column=id_column, codec=self.codec
        )
        if original_path is None:
            for chunk in released_iter:
                if chunk.columns != tuple(columns):
                    raise ValidationError(
                        f"released CSV columns changed mid-file: {chunk.columns}"
                    )
                yield chunk.values, None
            return
        original_iter = iter_matrix_csv(
            original_path, chunk_rows=chunk_rows, id_column=id_column, codec=self.codec
        )
        while True:
            released_chunk = next(released_iter, None)
            original_chunk = next(original_iter, None)
            if released_chunk is None and original_chunk is None:
                return
            if released_chunk is None or original_chunk is None:
                raise ValidationError(
                    "released and original CSVs have different row counts"
                )
            if released_chunk.values.shape != original_chunk.values.shape:
                raise ValidationError(
                    "released and original CSVs have different shapes in a chunk: "
                    f"{released_chunk.values.shape} vs {original_chunk.values.shape}"
                )
            if set(released_chunk.columns) != set(original_chunk.columns):
                raise ValidationError(
                    f"released and original CSVs must share columns, got "
                    f"{released_chunk.columns} and {original_chunk.columns}"
                )
            # Align original columns to the released order by name.
            if released_chunk.columns != original_chunk.columns:
                order = [original_chunk.columns.index(name) for name in released_chunk.columns]
                yield released_chunk.values, original_chunk.values[:, order]
            else:
                yield released_chunk.values, original_chunk.values

    def _gather_rows(
        self,
        released_path: Path,
        original_path: Path,
        columns: Sequence[str],
        indices: list[int],
        chunk_rows: int,
        id_column: str | None,
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Collect specific absolute rows from both CSVs in one pass."""
        wanted = set(indices)
        gathered: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        position = 0
        for released_chunk, original_chunk in self._paired_chunks(
            released_path, original_path, columns, chunk_rows, id_column
        ):
            stop = position + released_chunk.shape[0]
            for index in sorted(wanted):
                if position <= index < stop:
                    local = index - position
                    gathered[index] = (
                        released_chunk[local].copy(),
                        original_chunk[local].copy(),
                    )
            wanted -= set(gathered)
            position = stop
            if not wanted:
                break
        if wanted:
            raise AttackError(f"known indices {sorted(wanted)} are beyond the release")
        return gathered
