"""Distributed privacy-preserving clustering comparators (related work).

The paper positions RBT against two distributed approaches:

* **Vertically partitioned k-means** (Vaidya & Clifton [13]): different
  sites hold different attributes of the same objects; a secure protocol
  lets them run k-means such that each site learns only the cluster of each
  entity, nothing about the other sites' attributes.
  :class:`VerticallyPartitionedKMeans` simulates that protocol over
  in-process :class:`Party` objects with a secure-sum primitive and records
  the number of messages exchanged (the communication cost the paper
  mentions).
* **Generative-model distributed clustering** (Meregu & Ghosh [7]): each
  site fits a local generative model (here, a Gaussian mixture via EM) and
  transmits only the model parameters; the central site samples artificial
  data from the combined model and clusters it.
  :class:`GenerativeModelClustering` implements that flow.

Neither system is RBT — they solve the *partitioned-data* PPC problem while
RBT solves the *centralized-data* one — but having them executable lets the
benchmark ``bench_distributed_comparators`` reproduce the qualitative
comparison (clustering quality, what each party learns, communication cost).

Since PR 7 the package also opens the partitioned-data scenario **for RBT
itself**: :mod:`repro.distributed.federated` runs a horizontally-federated
release over mergeable moment sketches — each :class:`ShardParty` streams
its own shard, only sketch states and masked partials cross the simulated
wire (:class:`SecureSketchSum`, priced by :class:`CommunicationLedger`),
and the multi-party output is byte-identical to the single-party release of
the concatenated shards.  See ``docs/DISTRIBUTED.md``.
"""

from .federated import (
    DistributedReleasePipeline,
    DistributedReleaseReport,
    SecureSketchSum,
    ShardParty,
    sketch_state_n_values,
    split_csv_shards,
)
from .generative import GaussianMixtureModel, GenerativeModelClustering
from .parties import CommunicationLedger, MessageLog, Party, SecureSumProtocol
from .vertical_kmeans import VerticallyPartitionedKMeans

__all__ = [
    "Party",
    "SecureSumProtocol",
    "MessageLog",
    "CommunicationLedger",
    "VerticallyPartitionedKMeans",
    "GaussianMixtureModel",
    "GenerativeModelClustering",
    "DistributedReleasePipeline",
    "DistributedReleaseReport",
    "SecureSketchSum",
    "ShardParty",
    "sketch_state_n_values",
    "split_csv_shards",
]
