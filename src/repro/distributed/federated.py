"""Horizontally-federated RBT releases over mergeable moment sketches.

The paper positions RBT against partitioned-data privacy-preserving
clustering; this module opens that scenario for RBT itself.  ``P`` parties
each hold a horizontal shard (a row subset) of one logical table as a CSV on
disk.  Together they produce a rotation-perturbed release of the *union* of
their rows without any party revealing a single raw row:

1. **Fit round** — every party streams its shard through the normalizer's
   streaming fitter locally; only the fitter *states* (exponent-bucket
   moment sketches for z-score, per-column extrema for min-max/decimal
   scaling) travel, merged by :class:`SecureSketchSum`.
2. **Planning rounds** — the coordinator runs the exact same
   :func:`repro.pipeline.streaming.plan_rotations` engine as the
   single-party pipeline, but its moment source asks each party to
   accumulate width-2 pair sketches over its shard (already-decided
   rotations applied locally on the fly) and secure-merges them.
3. **Transform round** — each party normalizes and rotates its own rows
   with the broadcast plan and appends them to the shared public release
   file in party order.  The released rows are the *output* of the
   computation — public by construction — while the privacy evidence
   (``Var(X − X')`` sketches, per-rotation achieved-variance sketches)
   again crosses the wire only as merged sketch states.

Determinism contract
--------------------
:class:`~repro.perf.streaming.StreamingMoments` accumulates **exact**
sums, so merging per-shard sketches equals one sketch over the concatenated
rows — bit for bit.  Every downstream quantity (normalizer parameters,
correlation pairing, security ranges, the θ draws from the RBT seed) is a
deterministic function of those exact moments, and the per-row transform is
elementwise.  The distributed release is therefore **byte-identical** to
:class:`~repro.pipeline.StreamingReleasePipeline` run on the concatenated
shards — for any party count ≥ 1, any shard split (including empty shards),
any chunk size, and any execution backend.  The test suite and the
``distributed_scaling`` benchmark section assert this contract.

Secure aggregation and its simulation caveats
---------------------------------------------
:class:`SecureSketchSum` runs the classic random-mask ring over sketch
states.  Masks are integer multiples of each exponent bucket's quantum
(:func:`repro.perf.streaming.bucket_quantum_exponents`), so masking and
unmasking are *exact* float operations and cannot perturb the release
bytes.  As in :class:`~repro.distributed.SecureSumProtocol`, the crypto is
simulated in-process; what is faithfully modeled is **who learns what** and
**what crosses the wire** (counted by :class:`CommunicationLedger`).  Two
honest caveats: parties reveal their occupied bucket *support* (a coarse
magnitude histogram) during the union round, and the coordinator learns the
merged moments — the quantities the paper's owner publishes anyway.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .._validation import check_integer_in_range, ensure_rng
from ..core import RBT
from ..data.io import (
    DEFAULT_CHUNK_ROWS,
    MatrixCsvWriter,
    iter_matrix_csv,
    read_matrix_csv_header,
)
from ..exceptions import ProtocolError, ValidationError
from ..perf.streaming import StreamingMoments, bucket_quantum_exponents
from ..pipeline.streaming import (
    StreamingReleaseReport,
    apply_decided_rotations,
    build_rotation_records,
    plan_rotations,
    privacy_report_from_moments,
    resolve_chunk_rows,
)
from ..preprocessing import IdentifierSuppressor, Normalizer, ZScoreNormalizer
from .parties import CommunicationLedger

__all__ = [
    "ShardParty",
    "SecureSketchSum",
    "DistributedReleasePipeline",
    "DistributedReleaseReport",
    "sketch_state_n_values",
    "split_csv_shards",
]

#: Mask magnitude in quantum units: ``U ~ uniform{-2**44 … 2**44}`` per
#: bucket cell.  Far above any compressed sketch value (< 2**38 quanta) yet
#: far enough below the 2**53 exactness bound that hundreds of parties can
#: ring-add without a single rounded bit.
_MASK_UNIT_BITS: int = 44

#: Mask range for the integer side channels (row counts, poison counters).
_INT_MASK_BITS: int = 40


def sketch_state_n_values(state: dict) -> int:
    """Scalars in one sketch-state wire payload (size is O(buckets), not rows)."""
    indices = np.asarray(state["bucket_indices"])
    values = np.asarray(state["bucket_values"])
    poison = (
        np.asarray(state["poison_nan"]).size
        + np.asarray(state["poison_pos"]).size
        + np.asarray(state["poison_neg"]).size
    )
    # + count, deposits, and the three header ints (format, n_columns, cross).
    return int(indices.size + values.size + poison + 5)


class SecureSketchSum:
    """Random-mask ring aggregation of :meth:`StreamingMoments.state` payloads.

    The initiator (the first contributing party) draws one mask per bucket
    cell as an integer multiple of that bucket's quantum, adds it to its own
    dense sketch, and passes the masked partial around the ring; every party
    adds its sketch; the initiator finally subtracts the mask.  No party
    learns another's sketch — only masked partials — and because masks live
    on the bucket grid every addition is exact, so the aggregate equals the
    plain :meth:`StreamingMoments.merge` bit for bit.

    Integer side channels (row counts, poison counters) ride the same ring
    under integer masks.  All traffic is recorded in the ledger; payload
    sizes are O(occupied buckets), never O(rows).
    """

    def __init__(self, *, random_state=None, ledger: CommunicationLedger | None = None) -> None:
        self._rng = ensure_rng(random_state)
        self.ledger = ledger if ledger is not None else CommunicationLedger()

    def aggregate_states(self, contributions: Sequence[tuple[str, dict]], *, label: str) -> dict:
        """Securely sum one sketch state per party; returns the merged state."""
        if not contributions:
            raise ProtocolError("secure sketch sum needs at least one party")
        names = [name for name, _ in contributions]
        states = [state for _, state in contributions]
        first = states[0]
        for state in states[1:]:
            if (
                state["n_columns"] != first["n_columns"]
                or state["cross"] != first["cross"]
            ):
                raise ProtocolError("all parties must contribute sketches of one shape")
        if len(states) == 1:
            # A single party holds the total already; nothing crosses a wire.
            return first
        n_quantities = np.asarray(first["poison_nan"]).shape[0]
        initiator = names[0]
        ledger = self.ledger
        ledger.new_round()

        # Round A/B: occupied-bucket supports to the initiator, union back.
        for name, state in zip(names[1:], states[1:]):
            ledger.record(
                name, initiator, np.asarray(state["bucket_indices"]).size,
                label=f"{label}/support",
            )
        union = np.unique(
            np.concatenate([np.asarray(s["bucket_indices"], dtype=np.int64) for s in states])
        )
        for name in names[1:]:
            ledger.record(initiator, name, union.size, label=f"{label}/support-union")

        def dense(state: dict) -> np.ndarray:
            out = np.zeros((union.size, n_quantities), dtype=float)
            indices = np.asarray(state["bucket_indices"], dtype=np.int64)
            if indices.size:
                out[np.searchsorted(union, indices)] = np.asarray(
                    state["bucket_values"], dtype=float
                )
            return out

        # Masks: integer multiples of each bucket row's quantum — exact to
        # add, exact to subtract, and statistically hiding at ±2**44 quanta.
        unit = 2**_MASK_UNIT_BITS
        mask_units = self._rng.integers(
            -unit, unit, size=(union.size, n_quantities), endpoint=True
        )
        mask = np.ldexp(mask_units.astype(float), bucket_quantum_exponents(union)[:, None])
        int_unit = 2**_INT_MASK_BITS
        poison_masks = self._rng.integers(
            -int_unit, int_unit, size=(3, n_quantities), endpoint=True
        )
        count_mask = int(self._rng.integers(-int_unit, int_unit, endpoint=True))
        deposit_mask = int(self._rng.integers(-int_unit, int_unit, endpoint=True))

        running = dense(states[0]) + mask
        run_nan = np.asarray(states[0]["poison_nan"], dtype=np.int64) + poison_masks[0]
        run_pos = np.asarray(states[0]["poison_pos"], dtype=np.int64) + poison_masks[1]
        run_neg = np.asarray(states[0]["poison_neg"], dtype=np.int64) + poison_masks[2]
        run_count = int(states[0]["count"]) + count_mask
        run_deposits = int(states[0]["deposits"]) + deposit_mask
        hop_values = union.size * n_quantities + 3 * n_quantities + 2
        for previous, name, state in zip(names, names[1:], states[1:]):
            ledger.record(previous, name, hop_values, label=f"{label}/masked-partial")
            running = running + dense(state)
            run_nan = run_nan + np.asarray(state["poison_nan"], dtype=np.int64)
            run_pos = run_pos + np.asarray(state["poison_pos"], dtype=np.int64)
            run_neg = run_neg + np.asarray(state["poison_neg"], dtype=np.int64)
            run_count += int(state["count"])
            run_deposits += int(state["deposits"])
        ledger.record(names[-1], initiator, hop_values, label=f"{label}/masked-total")

        return {
            "format": 1,
            "n_columns": first["n_columns"],
            "cross": first["cross"],
            "count": run_count - count_mask,
            "deposits": run_deposits - deposit_mask,
            "bucket_indices": union,
            "bucket_values": running - mask,
            "poison_nan": run_nan - poison_masks[0],
            "poison_pos": run_pos - poison_masks[1],
            "poison_neg": run_neg - poison_masks[2],
        }


class ShardParty:
    """One site holding a horizontal shard of the logical table as a CSV.

    The party never exposes raw rows: its public API returns accumulator
    *states* (sketches, extrema) and writes its own released rows straight
    into the public output file.  All local streaming work is timed into the
    shared ledger's per-party wall clock.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        *,
        id_column: str | None = "id",
        ledger: CommunicationLedger | None = None,
        codec: str | None = None,
    ) -> None:
        self.name = str(name)
        self.path = Path(path)
        self._id_column = id_column
        self.all_columns, self.has_ids = read_matrix_csv_header(self.path, id_column=id_column)
        self.ledger = ledger
        self.codec = codec
        self._kept_indices: list[int] | None = None
        self._chunk_rows = DEFAULT_CHUNK_ROWS

    def configure(self, kept_indices: list[int] | None, chunk_rows: int) -> None:
        """Set the column selection and streaming chunk size for this run."""
        self._kept_indices = kept_indices
        self._chunk_rows = check_integer_in_range(chunk_rows, name="chunk_rows", minimum=1)

    @contextmanager
    def _timed(self):
        started = time.perf_counter()
        try:
            yield
        finally:
            if self.ledger is not None:
                self.ledger.add_party_seconds(self.name, time.perf_counter() - started)

    def _chunks(self) -> Iterator[tuple[np.ndarray, tuple | None]]:
        # allow_empty: a shard that received zero rows is a legitimate party.
        for chunk in iter_matrix_csv(
            self.path,
            chunk_rows=self._chunk_rows,
            id_column=self._id_column,
            allow_empty=True,
            codec=self.codec,
        ):
            values = chunk.values
            if self._kept_indices is not None:
                values = values[:, self._kept_indices]
            yield values, chunk.ids

    # -- protocol steps (each streams the shard once, locally) ----------- #
    def fit_state(self, normalizer: Normalizer, n_columns: int) -> tuple[dict, int]:
        """Stream the shard through the normalizer's fitter; return its state."""
        with self._timed():
            fitter = normalizer._stream_fitter(n_columns)
            n_rows = 0
            for values, _ in self._chunks():
                if values.shape[0]:
                    fitter.update(values)
                    n_rows += values.shape[0]
            return fitter.state(), n_rows

    def correlation_state(self, normalizer: Normalizer, n_columns: int) -> dict:
        """Width-n cross-moment sketch of the normalized shard."""
        with self._timed():
            accumulator = StreamingMoments(n_columns, cross=True)
            for values, _ in self._chunks():
                if values.shape[0]:
                    accumulator.update(normalizer.transform(values))
            return accumulator.state()

    def pair_states(
        self,
        normalizer: Normalizer,
        decided,
        positions: dict[int, tuple[str, str]],
        column_index: dict[str, int],
    ) -> dict[int, dict]:
        """Width-2 sketches of the requested pairs on the rotated-so-far shard."""
        with self._timed():
            accumulators = {
                position: StreamingMoments(2, cross=True) for position in positions
            }
            for values, _ in self._chunks():
                if not values.shape[0]:
                    continue
                current = normalizer.transform(values)
                apply_decided_rotations(current, decided, column_index)
                for position, accumulator in accumulators.items():
                    index_i = column_index[positions[position][0]]
                    index_j = column_index[positions[position][1]]
                    accumulator.update(
                        np.column_stack((current[:, index_i], current[:, index_j]))
                    )
            return {
                position: accumulator.state()
                for position, accumulator in accumulators.items()
            }

    def transform_and_write(
        self,
        normalizer: Normalizer,
        decided,
        column_index: dict[str, int],
        writer: MatrixCsvWriter,
        carry_ids: bool,
    ) -> tuple[int, dict, list[dict]]:
        """Release this shard's rows; return evidence sketches, never raw rows.

        The rotated rows go straight into the shared public output file —
        they *are* the release — while the privacy evidence travels back as
        sketch states.
        """
        with self._timed():
            n_columns = len(column_index)
            privacy_moments = StreamingMoments(3 * n_columns)
            achieved_moments = [StreamingMoments(2) for _ in decided]
            n_rows = 0
            for values, ids in self._chunks():
                if not values.shape[0]:
                    continue
                normalized = normalizer.transform(values)
                current = apply_decided_rotations(
                    normalized.copy(), decided, column_index, achieved_moments
                )
                privacy_moments.update(
                    np.hstack((normalized, current, normalized - current))
                )
                writer.write_rows(current, ids=ids if carry_ids else None)
                n_rows += values.shape[0]
            return (
                n_rows,
                privacy_moments.state(),
                [accumulator.state() for accumulator in achieved_moments],
            )


class _DistributedMomentSource:
    """``plan_rotations`` moment source backed by secure-merged party sketches."""

    def __init__(
        self,
        parties: Sequence[ShardParty],
        normalizer: Normalizer,
        columns: Sequence[str],
        aggregator: SecureSketchSum,
    ) -> None:
        self._parties = parties
        self._normalizer = normalizer
        self._columns = tuple(columns)
        self._column_index = {name: offset for offset, name in enumerate(columns)}
        self._aggregator = aggregator

    def _broadcast_plan(self, n_values: int, label: str) -> None:
        ledger = self._aggregator.ledger
        initiator = self._parties[0].name
        for party in self._parties[1:]:
            ledger.record(initiator, party.name, n_values, label=label)

    def correlation_moments(self) -> StreamingMoments:
        self._broadcast_plan(1, "plan/correlation-pass")
        merged = self._aggregator.aggregate_states(
            [
                (party.name, party.correlation_state(self._normalizer, len(self._columns)))
                for party in self._parties
            ],
            label="sketch/correlation",
        )
        return StreamingMoments.from_state(merged)

    def pair_moments(
        self, decided, positions: dict[int, tuple[str, str]], *, ddof: int
    ) -> dict[int, tuple[float, float, float]]:
        # The plan broadcast carries the decided rotations (pair indices,
        # angle) plus the requested pair list — a few scalars per rotation.
        self._broadcast_plan(4 * len(decided) + 2 * len(positions), "plan/pair-pass")
        per_party = [
            (
                party.name,
                party.pair_states(self._normalizer, decided, positions, self._column_index),
            )
            for party in self._parties
        ]
        moments: dict[int, tuple[float, float, float]] = {}
        for position in positions:
            merged = self._aggregator.aggregate_states(
                [(name, states[position]) for name, states in per_party],
                label=f"sketch/pair-{position}",
            )
            moments[position] = StreamingMoments.from_state(merged).pair_moments(
                0, 1, ddof=ddof
            )
        return moments


@dataclass(frozen=True)
class DistributedReleaseReport(StreamingReleaseReport):
    """A :class:`StreamingReleaseReport` plus the multi-party cost evidence."""

    #: Number of parties that contributed shards.
    n_parties: int = 1
    #: Rows contributed by each party, in release (party) order.
    party_rows: tuple[int, ...] = ()
    #: The protocol's communication ledger (bytes, rounds, per-party clock).
    ledger: CommunicationLedger | None = None

    def summary(self) -> dict:
        data = super().summary()
        data["n_parties"] = self.n_parties
        data["party_rows"] = list(self.party_rows)
        if self.ledger is not None:
            data["communication"] = self.ledger.summary()
        return data


class DistributedReleasePipeline:
    """Coordinate a multi-party RBT release that matches the single-party bytes.

    Mirrors the :class:`~repro.pipeline.StreamingReleasePipeline`
    constructor (same ``rbt``/``normalizer``/``suppressor``/chunking/``ddof``
    vocabulary) and adds ``protocol_seed`` for the secure-sum masks — the
    masks cancel exactly, so the seed never influences the released bytes.

    ``run`` takes the per-party shard paths instead of one input path; the
    output is byte-identical to the single-party release of the concatenated
    shards (see the module docstring for why).
    """

    def __init__(
        self,
        rbt: RBT | None = None,
        *,
        normalizer: Normalizer | None = None,
        suppressor: IdentifierSuppressor | None = None,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        ddof: int = 1,
        protocol_seed=None,
        codec: str | None = None,
        pipelined: bool = False,
    ) -> None:
        from ..perf.csv_codec import resolve_codec

        if chunk_rows is not None and memory_budget_bytes is not None:
            raise ValidationError("pass either chunk_rows or memory_budget_bytes, not both")
        self.rbt = rbt if rbt is not None else RBT()
        self.normalizer = normalizer if normalizer is not None else ZScoreNormalizer()
        self.suppressor = suppressor
        self.codec = resolve_codec(codec)
        self.pipelined = bool(pipelined)
        self.chunk_rows = (
            check_integer_in_range(chunk_rows, name="chunk_rows", minimum=1)
            if chunk_rows is not None
            else None
        )
        self.memory_budget_bytes = memory_budget_bytes
        self.ddof = check_integer_in_range(ddof, name="ddof", minimum=0, maximum=1)
        self.protocol_seed = protocol_seed

    def run(
        self,
        shard_paths: Sequence[str | Path],
        output_path: str | Path,
        *,
        id_column: str | None = "id",
        float_format: str | None = None,
    ) -> DistributedReleaseReport:
        """Drive the multi-party protocol; write the release to ``output_path``."""
        paths = [Path(path) for path in shard_paths]
        if not paths:
            raise ValidationError("distributed release needs at least one shard")
        ledger = CommunicationLedger()
        parties = [
            ShardParty(
                f"party{index}", path, id_column=id_column, ledger=ledger, codec=self.codec
            )
            for index, path in enumerate(paths)
        ]
        first = parties[0]
        for party in parties[1:]:
            if party.all_columns != first.all_columns or party.has_ids != first.has_ids:
                raise ValidationError(
                    f"shard {party.path} header does not match shard {first.path}"
                )
        kept_indices, columns = self._kept_columns(first.all_columns)
        chunk_rows = resolve_chunk_rows(
            len(columns),
            chunk_rows=self.chunk_rows,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        for party in parties:
            party.configure(kept_indices, chunk_rows)
        carry_ids = first.has_ids and not (
            self.suppressor is not None and self.suppressor.drop_object_ids
        )
        aggregator = SecureSketchSum(random_state=self.protocol_seed, ledger=ledger)
        coordinator = parties[0].name
        passes = 0

        # ---- Fit round: local fitter states, merged without raw rows.
        template = self.normalizer._stream_fitter(len(columns))
        fit_states = [
            (party.name, party.fit_state(self.normalizer, len(columns)))
            for party in parties
        ]
        n_rows_total = int(sum(rows for _, (_, rows) in fit_states))
        if isinstance(template, StreamingMoments):
            merged = aggregator.aggregate_states(
                [(name, state) for name, (state, _) in fit_states],
                label="sketch/normalizer-fit",
            )
            fitter = StreamingMoments.from_state(merged)
        else:
            # Extrema are not additively maskable; the per-shard min/max
            # travel in the clear (they bound, but do not expose, rows).
            fitter = template
            for name, (state, _) in fit_states:
                if name != coordinator:
                    ledger.record(
                        name,
                        coordinator,
                        int(sum(np.asarray(v).size for v in state.values() if v is not None)) + 1,
                        label="fit/extrema",
                    )
                fitter.merge_state(state)
        self.normalizer._finish_stream_fit(fitter, n_rows=n_rows_total)
        self.normalizer._n_attributes = len(columns)
        passes += 1
        # Broadcast the fitted parameters so each party can normalize locally.
        for party in parties[1:]:
            ledger.record(
                coordinator, party.name, 2 * len(columns), label="fit/normalizer-params"
            )

        # ---- Planning rounds: the shared planner on secure-merged moments.
        moment_source = _DistributedMomentSource(parties, self.normalizer, columns, aggregator)
        decided, moment_passes = plan_rotations(self.rbt, columns, moment_source)
        passes += moment_passes

        # ---- Transform round: every party releases its own rows, in order.
        column_index = {name: position for position, name in enumerate(columns)}
        for party in parties[1:]:
            ledger.record(
                coordinator, party.name, 4 * len(decided), label="plan/transform-pass"
            )
        party_rows: list[int] = []
        privacy_states: list[tuple[str, dict]] = []
        achieved_states: list[tuple[str, list[dict]]] = []
        with MatrixCsvWriter(
            output_path,
            columns,
            include_ids=carry_ids,
            float_format=float_format,
            codec=self.codec,
            pipelined=self.pipelined,
        ) as writer:
            for party in parties:
                rows, privacy_state, achieved = party.transform_and_write(
                    self.normalizer, decided, column_index, writer, carry_ids
                )
                party_rows.append(rows)
                privacy_states.append((party.name, privacy_state))
                achieved_states.append((party.name, achieved))
        passes += 1

        privacy_moments = StreamingMoments.from_state(
            aggregator.aggregate_states(privacy_states, label="sketch/privacy")
        )
        achieved_moments = [
            StreamingMoments.from_state(
                aggregator.aggregate_states(
                    [(name, states[index]) for name, states in achieved_states],
                    label=f"sketch/achieved-{index}",
                )
            )
            for index in range(len(decided))
        ]
        records = build_rotation_records(decided, achieved_moments, ddof=self.rbt.ddof)
        privacy = privacy_report_from_moments(columns, privacy_moments, ddof=self.ddof)
        return DistributedReleaseReport(
            n_objects=int(sum(party_rows)),
            columns=tuple(columns),
            records=records,
            privacy=privacy,
            chunk_rows=chunk_rows,
            n_passes=passes,
            n_parties=len(parties),
            party_rows=tuple(party_rows),
            ledger=ledger,
        )

    def _kept_columns(
        self, all_columns: Sequence[str]
    ) -> tuple[list[int] | None, tuple[str, ...]]:
        """Indices and names of the columns surviving identifier suppression."""
        if self.suppressor is None or not self.suppressor.extra_columns:
            return None, tuple(all_columns)
        to_drop = set(self.suppressor.extra_columns)
        kept = [(index, name) for index, name in enumerate(all_columns) if name not in to_drop]
        if not kept:
            raise ValidationError("identifier suppression removed every column")
        return [index for index, _ in kept], tuple(name for _, name in kept)


def split_csv_shards(
    input_path: str | Path,
    shard_paths: Sequence[str | Path],
    *,
    row_counts: Sequence[int] | None = None,
    id_column: str | None = "id",
    chunk_rows: int | None = None,
    codec: str | None = None,
) -> tuple[int, ...]:
    """Split one matrix CSV into horizontal shards (headers copied verbatim).

    ``row_counts`` fixes the rows per shard (the last shard takes any
    remainder); by default rows are spread near-evenly, earlier shards one
    row larger.  Returns the rows written to each shard.  Splitting then
    releasing through :class:`DistributedReleasePipeline` reproduces the
    single-party release of ``input_path`` byte for byte — this helper exists
    for the CLI, the experiments grid, and the benchmarks, which simulate
    parties from one file.
    """
    input_path = Path(input_path)
    paths = [Path(path) for path in shard_paths]
    if not paths:
        raise ValidationError("split_csv_shards needs at least one shard path")
    columns, has_ids = read_matrix_csv_header(input_path, id_column=id_column)
    chunk_rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS
    if row_counts is None:
        total = int(
            sum(
                chunk.values.shape[0]
                for chunk in iter_matrix_csv(
                    input_path, chunk_rows=chunk_rows, id_column=id_column, codec=codec
                )
            )
        )
        base, remainder = divmod(total, len(paths))
        quotas = [base + (1 if index < remainder else 0) for index in range(len(paths))]
    else:
        if len(row_counts) != len(paths):
            raise ValidationError("row_counts must have one entry per shard path")
        quotas = [check_integer_in_range(c, name="row_counts", minimum=0) for c in row_counts]
    written = [0] * len(paths)
    shard = 0
    writers = []
    try:
        for path in paths:
            writers.append(MatrixCsvWriter(path, columns, include_ids=has_ids, codec=codec))
        for chunk in iter_matrix_csv(
            input_path, chunk_rows=chunk_rows, id_column=id_column, codec=codec
        ):
            values, ids = chunk.values, chunk.ids
            offset = 0
            while offset < values.shape[0]:
                while shard < len(paths) - 1 and written[shard] >= quotas[shard]:
                    shard += 1
                if shard == len(paths) - 1:
                    take = values.shape[0] - offset
                else:
                    take = min(quotas[shard] - written[shard], values.shape[0] - offset)
                block_ids = ids[offset : offset + take] if ids is not None else None
                writers[shard].write_rows(values[offset : offset + take], ids=block_ids)
                written[shard] += take
                offset += take
    except BaseException:
        # The writers stage into temporary files; discarding them on failure
        # means a crashed split never leaves torn shards behind.
        for writer in writers:
            writer.abort()
        raise
    for writer in writers:
        writer.close()
    return tuple(written)
