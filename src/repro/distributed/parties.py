"""Simulated parties and a secure-sum primitive for the distributed comparators.

Real secure multi-party computation is out of scope (and unnecessary for the
comparison the paper makes); what matters is *who learns what* and *how many
messages are exchanged*.  :class:`Party` holds a private data partition,
:class:`MessageLog` counts every value that crosses a party boundary, and
:class:`SecureSumProtocol` implements the classic random-mask ring protocol:
each party adds its private value plus a random mask, masks cancel at the
initiator, and no individual contribution is revealed to any other party.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .._validation import ensure_rng
from ..data import DataMatrix
from ..exceptions import ProtocolError

__all__ = ["Party", "MessageLog", "CommunicationLedger", "SecureSumProtocol"]


@dataclass
class MessageLog:
    """Counts the messages and scalar values exchanged between parties."""

    n_messages: int = 0
    n_values: int = 0
    rounds: int = 0
    trace: list[str] = field(default_factory=list)

    def record(self, sender: str, receiver: str, n_values: int, *, label: str = "") -> None:
        """Record one message of ``n_values`` scalars from ``sender`` to ``receiver``."""
        self.n_messages += 1
        self.n_values += int(n_values)
        if label:
            self.trace.append(f"{sender} -> {receiver}: {label} ({n_values} values)")

    def new_round(self) -> None:
        """Mark the start of a new protocol round."""
        self.rounds += 1


@dataclass
class CommunicationLedger(MessageLog):
    """A :class:`MessageLog` that also prices every protocol edge.

    On top of the message/value/round counters it tracks the bytes shipped
    per edge, the largest single payload (the evidence that only sketch-sized
    messages — never O(rows) — cross a party boundary), and the wall-clock
    seconds each party spent on local work.  Every protocol in
    :mod:`repro.distributed` accepts either class; the federated release
    pipeline always writes a ledger so its cost shows up in benchmarks.
    """

    n_bytes: int = 0
    max_message_values: int = 0
    party_seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record(
        self,
        sender: str,
        receiver: str,
        n_values: int,
        *,
        label: str = "",
        n_bytes: int | None = None,
    ) -> None:
        """Record one message; bytes default to 8 per value (float64/int64 wire)."""
        super().record(sender, receiver, n_values, label=label)
        self.n_bytes += int(n_bytes) if n_bytes is not None else 8 * int(n_values)
        self.max_message_values = max(self.max_message_values, int(n_values))

    def add_party_seconds(self, party: str, seconds: float) -> None:
        """Charge ``seconds`` of local wall-clock work to ``party``."""
        self.party_seconds[party] += float(seconds)

    def summary(self) -> dict:
        """JSON-friendly cost summary (for reports and benchmarks)."""
        return {
            "n_messages": self.n_messages,
            "n_values": self.n_values,
            "n_bytes": self.n_bytes,
            "rounds": self.rounds,
            "max_message_values": self.max_message_values,
            "party_seconds": {name: float(value) for name, value in self.party_seconds.items()},
        }


class Party:
    """A site holding a private vertical (or horizontal) slice of the data.

    Parameters
    ----------
    name:
        Party identifier used in the message log.
    data:
        The private partition (a :class:`DataMatrix`).
    """

    def __init__(self, name: str, data: DataMatrix) -> None:
        if not isinstance(data, DataMatrix):
            raise ProtocolError(f"party {name!r} must hold a DataMatrix")
        self.name = str(name)
        self._data = data

    @property
    def n_objects(self) -> int:
        """Number of objects in this party's partition."""
        return self._data.n_objects

    @property
    def columns(self) -> tuple[str, ...]:
        """Attribute names held by this party (never shared)."""
        return self._data.columns

    def local_values(self) -> np.ndarray:
        """The party's private values — accessible only to the party itself."""
        return self._data.values

    def local_distances_to(self, centroid_fragment: np.ndarray) -> np.ndarray:
        """Squared distances from every local object to a centroid's local fragment.

        This is the per-site quantity the vertically-partitioned k-means
        protocol aggregates: each site computes the contribution of *its*
        attributes to the full squared Euclidean distance.
        """
        fragment = np.asarray(centroid_fragment, dtype=float).ravel()
        if fragment.size != self._data.n_attributes:
            raise ProtocolError(
                f"centroid fragment for party {self.name!r} must have "
                f"{self._data.n_attributes} value(s), got {fragment.size}"
            )
        return ((self._data.values - fragment) ** 2).sum(axis=1)

    def local_cluster_sums(
        self, labels: np.ndarray, n_clusters: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-cluster sums and counts of the party's local attributes."""
        labels = np.asarray(labels, dtype=int)
        if labels.size != self.n_objects:
            raise ProtocolError(
                f"labels must have {self.n_objects} entries for party {self.name!r}, got {labels.size}"
            )
        sums = np.zeros((n_clusters, self._data.n_attributes))
        counts = np.zeros(n_clusters, dtype=int)
        for cluster in range(n_clusters):
            mask = labels == cluster
            counts[cluster] = int(mask.sum())
            if counts[cluster]:
                sums[cluster] = self._data.values[mask].sum(axis=0)
        return sums, counts


class SecureSumProtocol:
    """Random-mask ring secure sum across a list of parties.

    The initiator adds a random mask ``r`` to its private vector and passes it
    on; every party adds its own private vector; the initiator finally
    subtracts ``r``.  No party other than the initiator learns anything beyond
    partial masked sums, and the initiator learns only the total.
    """

    def __init__(self, *, random_state=None, log: MessageLog | None = None) -> None:
        self._rng = ensure_rng(random_state)
        self.log = log if log is not None else MessageLog()

    def sum_vectors(
        self, party_names: list[str], vectors: list[np.ndarray], *, label: str = "secure-sum"
    ) -> np.ndarray:
        """Securely sum one private vector per party and return the total.

        ``vectors[i]`` is the private contribution of ``party_names[i]``; the
        protocol is simulated in-process but every hop is counted in the
        message log.
        """
        if len(party_names) != len(vectors):
            raise ProtocolError("one private vector per party is required")
        if not vectors:
            raise ProtocolError("secure sum needs at least one party")
        vectors = [np.asarray(vector, dtype=float) for vector in vectors]
        shape = vectors[0].shape
        for vector in vectors:
            if vector.shape != shape:
                raise ProtocolError("all private vectors must have the same shape")

        self.log.new_round()
        mask = self._rng.uniform(-1e6, 1e6, size=shape)
        running = vectors[0] + mask
        # Pass the masked partial sum around the ring.
        for index in range(1, len(vectors)):
            self.log.record(
                party_names[index - 1], party_names[index], int(np.prod(shape)), label=label
            )
            running = running + vectors[index]
        # Final hop back to the initiator, which removes its mask.
        self.log.record(party_names[-1], party_names[0], int(np.prod(shape)), label=label)
        return running - mask
