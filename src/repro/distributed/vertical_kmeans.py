"""Privacy-preserving k-means over vertically partitioned data ([13], simulated).

Vaidya & Clifton's protocol lets sites holding different attributes of the
same objects run k-means such that each site learns the final cluster of
every object but nothing about the other sites' attribute values.  The
cryptographic machinery (secure permutation + comparison circuits) is
replaced here by an in-process simulation that preserves the *information
flow*:

* each site keeps its attribute slice private,
* per-object distance contributions are aggregated with a secure-sum
  primitive (random-mask ring),
* only the aggregated per-cluster distance totals and the final assignments
  become known to the coordinator,
* every exchanged message is counted so the communication cost can be
  compared against RBT's "ship one transformed table" model.

The result is numerically identical to ordinary k-means run on the joined
data (which is exactly the protocol's correctness guarantee), so its
clustering quality can be compared with RBT's on the same workloads.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_integer_in_range, check_positive, ensure_rng
from ..clustering.base import ClusteringResult
from ..data import DataMatrix
from ..exceptions import ProtocolError
from .parties import MessageLog, Party, SecureSumProtocol

__all__ = ["VerticallyPartitionedKMeans"]


class VerticallyPartitionedKMeans:
    """Simulated secure k-means across vertical partitions.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of protocol restarts with different shared seed objects; the
        restart with the lowest (securely aggregated) total cost wins.  Each
        restart costs additional messages, which the log reflects.
    max_iterations:
        Iteration cap per restart.
    tolerance:
        Convergence threshold on total centroid movement.
    random_state:
        Seed / generator for initialization and the secure-sum masks.
    """

    name = "vertical_kmeans"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        n_init: int = 5,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        random_state=None,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        self.n_init = check_integer_in_range(n_init, name="n_init", minimum=1)
        self.max_iterations = check_integer_in_range(
            max_iterations, name="max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, name="tolerance")
        self.random_state = random_state

    def fit(self, partitions: list[DataMatrix]) -> tuple[ClusteringResult, MessageLog]:
        """Run the protocol over the per-party attribute partitions.

        Parameters
        ----------
        partitions:
            One :class:`DataMatrix` per party; all must describe the same
            objects in the same order (same number of rows).

        Returns
        -------
        (ClusteringResult, MessageLog)
            The clustering (labels identical to plain k-means on the joined
            data under the same initialization) and the message-count log of
            the simulated protocol, accumulated over every restart.
        """
        if len(partitions) < 2:
            raise ProtocolError("vertically partitioned k-means needs at least two parties")
        n_objects = partitions[0].n_objects
        for partition in partitions:
            if partition.n_objects != n_objects:
                raise ProtocolError("all parties must hold the same objects (same row count)")
        if n_objects < self.n_clusters:
            raise ProtocolError(
                f"cannot find {self.n_clusters} cluster(s) among {n_objects} object(s)"
            )

        rng = ensure_rng(self.random_state)
        log = MessageLog()
        best: ClusteringResult | None = None
        for _ in range(self.n_init):
            result = self._single_run(partitions, rng, log)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best, log

    def _single_run(
        self,
        partitions: list[DataMatrix],
        rng: np.random.Generator,
        log: MessageLog,
    ) -> ClusteringResult:
        """One protocol run from a fresh shared initialization."""
        n_objects = partitions[0].n_objects
        secure_sum = SecureSumProtocol(random_state=rng, log=log)
        parties = [Party(f"site{i}", partition) for i, partition in enumerate(partitions)]
        party_names = [party.name for party in parties]

        # Each party initializes its fragment of every centroid from the same
        # shared object indices (indices are not private; values stay local).
        seed_indices = rng.choice(n_objects, size=self.n_clusters, replace=False)
        fragments = [party.local_values()[seed_indices, :].copy() for party in parties]

        labels = np.zeros(n_objects, dtype=int)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            # --- assignment step -------------------------------------------------
            # For every cluster, the total squared distance of every object is the
            # secure sum of the per-party contributions.
            total_distances = np.empty((n_objects, self.n_clusters))
            for cluster in range(self.n_clusters):
                contributions = [
                    party.local_distances_to(fragments[party_index][cluster])
                    for party_index, party in enumerate(parties)
                ]
                total_distances[:, cluster] = secure_sum.sum_vectors(
                    party_names, contributions, label=f"iter{iteration}-cluster{cluster}-distances"
                )
            new_labels = total_distances.argmin(axis=1)

            # The coordinator broadcasts the assignments (cluster of each entity is
            # exactly what the protocol is allowed to reveal).
            for name in party_names:
                log.record("coordinator", name, n_objects, label=f"iter{iteration}-assignments")

            # --- update step ------------------------------------------------------
            # Counts per cluster are aggregated securely; each party updates its own
            # centroid fragments locally from its private values.
            counts = secure_sum.sum_vectors(
                party_names,
                [np.bincount(new_labels, minlength=self.n_clusters).astype(float) for _ in parties],
                label=f"iter{iteration}-counts",
            ) / len(parties)
            movement_terms = []
            for party_index, party in enumerate(parties):
                sums, _ = party.local_cluster_sums(new_labels, self.n_clusters)
                updated = fragments[party_index].copy()
                for cluster in range(self.n_clusters):
                    if counts[cluster] > 0:
                        updated[cluster] = sums[cluster] / counts[cluster]
                movement_terms.append(
                    float(np.sqrt(((updated - fragments[party_index]) ** 2).sum()))
                )
                fragments[party_index] = updated
            # fsum keeps the convergence test independent of the order the
            # parties report their fragment movements.
            movement = math.fsum(movement_terms)

            labels = new_labels
            if movement <= self.tolerance:
                converged = True
                break

        # Inertia can be reported from the final secure aggregation without
        # revealing per-site values: reuse the last distance table.
        inertia = float(total_distances[np.arange(n_objects), labels].sum())
        return ClusteringResult(
            labels=labels,
            n_clusters=int(np.unique(labels).size),
            n_iterations=iteration,
            inertia=inertia,
            converged=converged,
            metadata={"n_parties": len(parties)},
        )
