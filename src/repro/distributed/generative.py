"""Generative-model distributed clustering ([7], simplified).

Meregu & Ghosh's approach to privacy-preserving *distributed* clustering
shares no data at all: every site fits a generative model to its local
(horizontal) partition and transmits only the model parameters; the central
site combines the models, draws artificial samples from the combined model,
clusters the artificial data, and the resulting "mean model" represents all
sites.  Privacy loss is controlled by the expressiveness of the local models;
communication cost is the size of the parameters.

This module provides:

* :class:`GaussianMixtureModel` — a small diagonal-covariance Gaussian
  mixture fitted by EM (the local generative model).
* :class:`GenerativeModelClustering` — the end-to-end protocol: fit local
  mixtures, ship parameters, sample artificial data centrally (the
  MCMC-sampling step of the paper is replaced by direct ancestral sampling
  from the fitted mixtures, which exercises the same information flow),
  cluster the artificial sample with k-means, and classify every real object
  at its own site using the central centroids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range, check_positive, ensure_rng
from ..clustering import KMeans
from ..clustering.base import ClusteringResult
from ..data import DataMatrix
from ..exceptions import ConvergenceError, ProtocolError
from .parties import MessageLog

__all__ = ["GaussianMixtureModel", "GenerativeModelClustering"]


@dataclass
class GaussianMixtureModel:
    """A diagonal-covariance Gaussian mixture fitted with EM.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    max_iterations:
        EM iteration cap.
    tolerance:
        Convergence threshold on the average log-likelihood improvement.
    regularization:
        Value added to variances to keep them positive.
    random_state:
        Seed / generator for initialization and sampling.
    """

    n_components: int = 3
    max_iterations: int = 200
    tolerance: float = 1e-6
    regularization: float = 1e-6
    random_state: object = None

    def __post_init__(self) -> None:
        self.n_components = check_integer_in_range(
            self.n_components, name="n_components", minimum=1
        )
        self.max_iterations = check_integer_in_range(
            self.max_iterations, name="max_iterations", minimum=1
        )
        self.tolerance = check_positive(self.tolerance, name="tolerance")
        self.regularization = check_positive(self.regularization, name="regularization")
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Fitting (EM)
    # ------------------------------------------------------------------ #
    def fit(self, values: np.ndarray) -> GaussianMixtureModel:
        """Fit the mixture to ``values`` (an ``(m, n)`` array) and return ``self``."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[0] < self.n_components:
            raise ProtocolError(
                f"need at least {self.n_components} rows to fit a {self.n_components}-component mixture"
            )
        rng = ensure_rng(self.random_state)
        n_objects, n_attributes = values.shape

        # Initialize means on random distinct points, variances on the global variance.
        indices = rng.choice(n_objects, size=self.n_components, replace=False)
        means = values[indices].copy()
        variances = np.tile(values.var(axis=0) + self.regularization, (self.n_components, 1))
        weights = np.full(self.n_components, 1.0 / self.n_components)

        previous_log_likelihood = -np.inf
        for _ in range(self.max_iterations):
            # E-step: responsibilities.
            log_probabilities = self._log_component_densities(values, means, variances, weights)
            log_norm = _logsumexp(log_probabilities, axis=1)
            responsibilities = np.exp(log_probabilities - log_norm[:, None])
            log_likelihood = float(log_norm.mean())

            # M-step.
            component_mass = responsibilities.sum(axis=0) + 1e-12
            weights = component_mass / n_objects
            means = (responsibilities.T @ values) / component_mass[:, None]
            variances = (
                responsibilities.T @ (values**2)
            ) / component_mass[:, None] - means**2
            variances = np.maximum(variances, self.regularization)

            if abs(log_likelihood - previous_log_likelihood) < self.tolerance:
                break
            previous_log_likelihood = log_likelihood

        self.weights_ = weights
        self.means_ = means
        self.variances_ = variances
        return self

    @staticmethod
    def _log_component_densities(values, means, variances, weights) -> np.ndarray:
        n_attributes = values.shape[1]
        log_probabilities = np.empty((values.shape[0], means.shape[0]))
        for component in range(means.shape[0]):
            diff = values - means[component]
            log_det = float(np.sum(np.log(variances[component])))
            mahalanobis = np.sum(diff**2 / variances[component], axis=1)
            log_probabilities[:, component] = (
                np.log(weights[component] + 1e-300)
                - 0.5 * (n_attributes * np.log(2.0 * np.pi) + log_det + mahalanobis)
            )
        return log_probabilities

    # ------------------------------------------------------------------ #
    # Parameters and sampling
    # ------------------------------------------------------------------ #
    @property
    def n_parameters(self) -> int:
        """Number of scalars needed to transmit the fitted model."""
        self._check_fitted()
        return int(self.weights_.size + self.means_.size + self.variances_.size)

    def sample(self, n_samples: int, *, random_state=None) -> np.ndarray:
        """Draw ``n_samples`` artificial records from the fitted mixture."""
        self._check_fitted()
        n_samples = check_integer_in_range(n_samples, name="n_samples", minimum=1)
        rng = ensure_rng(random_state)
        weights = self.weights_ / self.weights_.sum()
        components = rng.choice(self.n_components, size=n_samples, p=weights)
        samples = np.empty((n_samples, self.means_.shape[1]))
        for component in range(self.n_components):
            mask = components == component
            count = int(mask.sum())
            if count:
                samples[mask] = rng.normal(
                    loc=self.means_[component],
                    scale=np.sqrt(self.variances_[component]),
                    size=(count, self.means_.shape[1]),
                )
        return samples

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise ConvergenceError("GaussianMixtureModel must be fitted before use")


class GenerativeModelClustering:
    """End-to-end generative-model distributed clustering over horizontal partitions.

    Parameters
    ----------
    n_clusters:
        Number of clusters the central site extracts.
    n_components_per_site:
        Mixture components fitted locally at each site.
    n_artificial_samples:
        Artificial records the central site draws from the combined model.
    random_state:
        Seed / generator for local fits, sampling and central k-means.
    """

    name = "generative_model"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        n_components_per_site: int = 3,
        n_artificial_samples: int = 500,
        random_state=None,
    ) -> None:
        self.n_clusters = check_integer_in_range(n_clusters, name="n_clusters", minimum=1)
        self.n_components_per_site = check_integer_in_range(
            n_components_per_site, name="n_components_per_site", minimum=1
        )
        self.n_artificial_samples = check_integer_in_range(
            n_artificial_samples, name="n_artificial_samples", minimum=self.n_clusters
        )
        self.random_state = random_state

    def fit(self, partitions: list[DataMatrix]) -> tuple[ClusteringResult, MessageLog]:
        """Run the protocol over horizontal partitions (one :class:`DataMatrix` per site).

        Returns the clustering of *all* objects (concatenated in partition
        order) plus the message log, whose value count is the total number of
        model parameters transmitted — the protocol's communication cost.
        """
        if len(partitions) < 2:
            raise ProtocolError("generative-model clustering needs at least two sites")
        n_attributes = partitions[0].n_attributes
        for partition in partitions:
            if partition.n_attributes != n_attributes:
                raise ProtocolError("all sites must share the same schema (same attribute count)")

        rng = ensure_rng(self.random_state)
        log = MessageLog()

        # Each site fits a local mixture and ships only its parameters.
        local_models: list[GaussianMixtureModel] = []
        site_sizes: list[int] = []
        for site_index, partition in enumerate(partitions):
            model = GaussianMixtureModel(
                n_components=min(self.n_components_per_site, partition.n_objects),
                random_state=rng,
            ).fit(partition.values)
            local_models.append(model)
            site_sizes.append(partition.n_objects)
            log.record(
                f"site{site_index}", "coordinator", model.n_parameters, label="model parameters"
            )

        # Central site: sample artificial data from the size-weighted combination
        # of the local models, then cluster the artificial sample.
        total_objects = int(sum(site_sizes))
        artificial_blocks = []
        for model, size in zip(local_models, site_sizes):
            n_samples = max(1, int(round(self.n_artificial_samples * size / total_objects)))
            artificial_blocks.append(model.sample(n_samples, random_state=rng))
        artificial = np.vstack(artificial_blocks)
        central_kmeans = KMeans(n_clusters=self.n_clusters, random_state=rng)
        central_result = central_kmeans.fit(artificial)
        centroids = central_result.metadata["centroids"]

        # The centroids (the "mean model") are broadcast back; every site labels
        # its own objects locally, so no raw record ever leaves a site.
        labels_blocks = []
        for site_index, partition in enumerate(partitions):
            log.record("coordinator", f"site{site_index}", centroids.size, label="mean model")
            distances = ((partition.values[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels_blocks.append(distances.argmin(axis=1))
        labels = np.concatenate(labels_blocks)

        result = ClusteringResult(
            labels=labels,
            n_clusters=int(np.unique(labels).size),
            n_iterations=central_result.n_iterations,
            inertia=float("nan"),
            converged=central_result.converged,
            # A copy — sharing one array with ``central_result``'s metadata
            # would let mutating either result corrupt the other.
            metadata={"centroids": centroids.copy(), "n_sites": len(partitions)},
        )
        return result, log


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable log-sum-exp along ``axis``."""
    maximum = values.max(axis=axis, keepdims=True)
    return (maximum + np.log(np.exp(values - maximum).sum(axis=axis, keepdims=True))).squeeze(axis)
