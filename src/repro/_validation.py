"""Shared argument-validation helpers used across the library.

These helpers centralize the conversion of user-supplied values into the
canonical representations the library works with (2-D float arrays, label
vectors, random generators) and raise :class:`~repro.exceptions.ValidationError`
with actionable messages when the input is unusable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "as_float_matrix",
    "as_float_vector",
    "as_label_vector",
    "check_square_matrix",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_integer_in_range",
    "check_columns_exist",
    "ensure_rng",
]


def as_float_matrix(
    data, *, name: str = "data", min_rows: int = 1, min_cols: int = 1
) -> np.ndarray:
    """Return ``data`` as a 2-D ``float64`` array, validating shape and finiteness.

    Parameters
    ----------
    data:
        Anything convertible to a 2-D numeric array (nested sequences,
        ``numpy`` arrays, :class:`~repro.data.DataMatrix` instances exposing
        ``values``).
    name:
        Argument name used in error messages.
    min_rows, min_cols:
        Minimum acceptable dimensions.

    Raises
    ------
    ValidationError
        If the input is not 2-D numeric, contains NaN/inf, or is too small.
    """
    if hasattr(data, "values") and not isinstance(data, np.ndarray):
        data = data.values
    try:
        matrix = np.asarray(data, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be convertible to a float array: {exc}") from exc
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={matrix.ndim}")
    rows, cols = matrix.shape
    if rows < min_rows:
        raise ValidationError(f"{name} must have at least {min_rows} row(s), got {rows}")
    if cols < min_cols:
        raise ValidationError(f"{name} must have at least {min_cols} column(s), got {cols}")
    if not np.all(np.isfinite(matrix)):
        raise ValidationError(f"{name} must not contain NaN or infinite values")
    return matrix


def as_float_vector(data, *, name: str = "vector", min_size: int = 1) -> np.ndarray:
    """Return ``data`` as a 1-D ``float64`` array, validating size and finiteness."""
    try:
        vector = np.asarray(data, dtype=float).ravel()
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be convertible to a float vector: {exc}") from exc
    if vector.size < min_size:
        raise ValidationError(
            f"{name} must contain at least {min_size} value(s), got {vector.size}"
        )
    if not np.all(np.isfinite(vector)):
        raise ValidationError(f"{name} must not contain NaN or infinite values")
    return vector


def as_label_vector(labels, *, name: str = "labels", n_expected: int | None = None) -> np.ndarray:
    """Return ``labels`` as a 1-D integer array, optionally checking its length."""
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got ndim={array.ndim}")
    if array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.issubdtype(array.dtype, np.integer):
        if np.issubdtype(array.dtype, np.floating) and np.all(array == np.round(array)):
            array = array.astype(int)
        else:
            raise ValidationError(f"{name} must contain integer cluster labels")
    if n_expected is not None and array.size != n_expected:
        raise ValidationError(f"{name} must have length {n_expected}, got {array.size}")
    return array.astype(int, copy=False)


def check_square_matrix(matrix, *, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a square 2-D float array."""
    array = as_float_matrix(matrix, name=name)
    if array.shape[0] != array.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {array.shape}")
    return array


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive(value: float, *, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and finite."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, *, name: str = "value") -> float:
    """Validate that ``value`` is non-negative and finite."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_integer_in_range(
    value: int,
    *,
    name: str = "value",
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Validate that ``value`` is an integer inside ``[minimum, maximum]``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValidationError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_columns_exist(
    columns: Iterable[str], available: Sequence[str], *, name: str = "columns"
) -> list[str]:
    """Validate that every entry of ``columns`` appears in ``available``."""
    requested = list(columns)
    available_set = set(available)
    missing = [column for column in requested if column not in available_set]
    if missing:
        raise ValidationError(
            f"{name} refers to unknown column(s) {missing}; available columns are {list(available)}"
        )
    return requested


def ensure_rng(random_state) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from flexible ``random_state`` input.

    Accepts ``None`` (fresh non-deterministic generator), an integer seed, an
    existing :class:`numpy.random.Generator`, or a legacy
    :class:`numpy.random.RandomState`.
    """
    if random_state is None:
        # repro-lint: disable=RPR001 -- None is the documented nondeterministic opt-in
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.RandomState):
        return np.random.default_rng(random_state.randint(0, 2**31 - 1))
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise ValidationError(
        "random_state must be None, an int seed, a numpy Generator or RandomState, "
        f"got {type(random_state).__name__}"
    )
