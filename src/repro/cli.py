"""Command-line interface for the RBT release workflow.

The CLI wraps the library for the data-owner and data-receiver roles so the
full Figure 1 workflow can be driven from a shell without writing Python:

``transform``
    Read a CSV of confidential numeric attributes, normalize it, apply RBT
    and write the released CSV plus (optionally) the rotation secret and a
    JSON privacy report.

``distributed``
    Multi-party: release the union of per-party horizontal shards without
    any party revealing a raw row — only mergeable moment sketches and
    masked partials cross the (simulated) wire, and the output is
    byte-identical to ``transform`` run on the concatenated shards.

``invert``
    Owner-side: undo a release using a saved secret.

``evaluate``
    Compare an original (normalized) CSV with a released CSV: distance
    preservation, per-attribute Var(X − X'), and cluster agreement under
    k-means.

``cluster``
    Receiver-side: cluster a released CSV with one of the library's
    algorithms and write the labels.

``experiment``
    Run a declarative evaluation grid (datasets × transforms × clustering
    algorithms × attacks × seeds) in parallel with an incremental on-disk
    result cache, and emit paper-style JSON and Markdown tables.  Accepts a
    spec JSON path or a built-in name (``paper_grid`` reproduces the
    paper's Section 5 evaluation in one command; ``security_grid`` audits
    every distortion method under every adversary).

``audit``
    Owner-side: adversarially audit a released CSV under a declarative
    threat model (Section 5.2's security argument, regenerated against
    *your* release).  The evidence is streamed chunk-wise — the matrices
    are never materialized — so a release produced under a memory budget
    can be audited under the same budget; results are cached by content
    hash, so repeat audits are instant and bit-for-bit identical.  With
    ``--incremental`` a prior report is consulted first and only the
    attacks whose evidence hash changed are recomputed.

``release``
    Owner-side versioned releases: ``--init`` fits the normalizer, plans
    the rotations once and publishes release v1 into a bundle directory;
    ``--append`` streams *only the new rows* through the frozen policy and
    publishes vK+1 byte-identical to a from-scratch release of the
    concatenated feed.  Without either flag the bundle's manifest is
    verified and summarized.

``bench diff``
    Developer-side: compare two ``BENCH_perf*.json`` benchmark reports and
    print a per-scenario speedup/regression table, exiting non-zero when a
    gated ratio regressed beyond the CI threshold.

``lint``
    Developer-side: statically check the source tree against the repo's
    reproducibility contracts (seeded RNGs, exact accumulation, atomic
    persistence, shape-invariant BLAS — see ``docs/LINTING.md``).  CI runs
    this with ``--fail-on-unused-suppression``.

Examples
--------
::

    python -m repro transform vitals.csv released.csv --threshold 0.4 \
        --secret secret.json --report privacy.json --id-column mrn
    python -m repro distributed site_a.csv site_b.csv site_c.csv released.csv \
        --threshold 0.4 --secret secret.json --report release.json
    python -m repro distributed vitals.csv released.csv --parties 4
    python -m repro cluster released.csv labels.csv --algorithm kmeans --k 3
    python -m repro evaluate normalized.csv released.csv --k 3
    python -m repro invert released.csv restored.csv --secret secret.json
    python -m repro experiment paper_grid --workers 4
    python -m repro experiment my_grid.json --output-dir results/
    python -m repro audit released.csv --original normalized.csv \
        --threat-model full --chunk-rows 4096
    python -m repro audit released.csv --attacks renormalization,known_sample
    python -m repro release bundle/ --init january.csv --threshold 0.4
    python -m repro release bundle/ --append february.csv --expect-version 1
    python -m repro audit bundle/ --incremental
    python -m repro lint --fail-on-unused-suppression
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from .clustering import DBSCAN, AgglomerativeClustering, KMeans, KMedoids
from .core import RBT, RBTSecret
from .data import DataMatrix
from .data.io import matrix_from_csv, matrix_to_csv
from .distributed import DistributedReleasePipeline, split_csv_shards
from .exceptions import ReproError, ValidationError
from .experiments import BUILTIN_SPECS, ExperimentSpec, builtin_spec, run_experiment
from .lint import cli as lint_cli
from .metrics import (
    adjusted_rand_index,
    misclassification_error,
    privacy_report,
)
from .perf.backends import get_backend
from .perf.kernels import max_abs_distance_difference
from .perf.profiling import StageProfiler
from .pipeline.audit import (
    BUILTIN_THREAT_MODELS,
    AttackSuite,
    ThreatModel,
    builtin_threat_model,
)
from .pipeline.bundle_format import MANIFEST_NAME
from .pipeline.streaming import StreamingReleasePipeline, stream_invert
from .pipeline.versioned import VersionedReleaseBundle
from .preprocessing import MinMaxNormalizer, ZScoreNormalizer

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_backend_options(subparser: argparse.ArgumentParser) -> None:
    """The kernel-backend knobs shared by the compute-heavy subcommands."""
    subparser.add_argument(
        "--backend",
        choices=["serial", "process-pool", "numba"],
        default=None,
        help=(
            "execution backend for the chunked kernels (default: REPRO_BACKEND "
            "or serial); serial and process-pool output identical bytes"
        ),
    )
    subparser.add_argument(
        "--kernel-workers",
        type=int,
        default=None,
        help=(
            "worker processes for the kernel backend (default: "
            "REPRO_KERNEL_WORKERS or the CPU count); implies "
            "--backend process-pool when given alone"
        ),
    )


def _resolve_backend(args: argparse.Namespace):
    """The backend instance the flags ask for, or ``None`` to keep defaults."""
    if args.backend is None and args.kernel_workers is None:
        return None
    return get_backend(args.backend, workers=args.kernel_workers)


def _add_codec_options(subparser: argparse.ArgumentParser, *, pipelined: bool = True) -> None:
    """The CSV-codec knobs shared by the streamed I/O subcommands."""
    subparser.add_argument(
        "--codec",
        choices=["fast", "python"],
        default=None,
        help=(
            "CSV codec for the streamed I/O paths (default fast); both codecs "
            "read and write identical bytes — python is the csv-module "
            "reference path the fast codec is cross-checked against"
        ),
    )
    if pipelined:
        subparser.add_argument(
            "--pipelined",
            action="store_true",
            help=(
                "overlap file I/O with compute (bounded prefetch reader + "
                "double-buffered writer); the released bytes are identical "
                "with or without it"
            ),
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rotation-Based Transformation (RBT) for privacy-preserving clustering.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    transform = subparsers.add_parser(
        "transform", help="normalize a CSV and release an RBT-transformed copy"
    )
    transform.add_argument("input", type=Path, help="CSV with one row per object")
    transform.add_argument("output", type=Path, help="where to write the released CSV")
    transform.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="pairwise-security threshold rho applied to every pair (default 0.25)",
    )
    transform.add_argument(
        "--normalizer",
        choices=["zscore", "minmax"],
        default="zscore",
        help="normalization applied before the rotation (default zscore)",
    )
    transform.add_argument(
        "--strategy",
        choices=["interleaved", "sequential", "random", "max_variance"],
        default="interleaved",
        help="attribute pair-selection strategy (default interleaved)",
    )
    transform.add_argument("--seed", type=int, default=None, help="random seed")
    transform.add_argument(
        "--id-column",
        default="id",
        help=(
            "name of the identifier column to carry as object ids "
            "(default 'id'; ignored when the CSV has no such leading column)"
        ),
    )
    transform.add_argument(
        "--secret", type=Path, default=None, help="write the rotation secret (JSON) here"
    )
    transform.add_argument(
        "--report", type=Path, default=None, help="write a JSON privacy report here"
    )
    transform.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help=(
            "stream the release in blocks of this many rows (out-of-core path; "
            "the output is byte-identical to the default in-memory path)"
        ),
    )
    transform.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-stage read/compute/write wall-clock and peak-RSS "
            "breakdown (routes through the streamed path)"
        ),
    )
    _add_codec_options(transform)
    _add_backend_options(transform)

    distributed = subparsers.add_parser(
        "distributed",
        help="multi-party release of horizontal shards (byte-identical to transform)",
    )
    distributed.add_argument(
        "shards",
        type=Path,
        nargs="+",
        help=(
            "per-party horizontal shard CSVs (identical headers); with "
            "--parties, a single source CSV to split"
        ),
    )
    distributed.add_argument("output", type=Path, help="where to write the released CSV")
    distributed.add_argument(
        "--parties",
        type=int,
        default=None,
        help=(
            "simulation mode: split one source CSV into this many near-even "
            "shards before running the protocol"
        ),
    )
    distributed.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="pairwise-security threshold rho applied to every pair (default 0.25)",
    )
    distributed.add_argument(
        "--normalizer",
        choices=["zscore", "minmax"],
        default="zscore",
        help="normalization applied before the rotation (default zscore)",
    )
    distributed.add_argument(
        "--strategy",
        choices=["interleaved", "sequential", "random", "max_variance"],
        default="interleaved",
        help="attribute pair-selection strategy (default interleaved)",
    )
    distributed.add_argument("--seed", type=int, default=None, help="random seed for the RBT")
    distributed.add_argument(
        "--protocol-seed",
        type=int,
        default=None,
        help=(
            "seed for the secure-sum masks; the masks cancel exactly, so this "
            "never changes the released bytes"
        ),
    )
    distributed.add_argument(
        "--id-column",
        default="id",
        help=(
            "name of the identifier column to carry as object ids "
            "(default 'id'; ignored when the CSVs have no such leading column)"
        ),
    )
    distributed.add_argument(
        "--secret", type=Path, default=None, help="write the rotation secret (JSON) here"
    )
    distributed.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a JSON release report (privacy + communication costs) here",
    )
    distributed.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="rows per streamed block at every party (any value gives the same bytes)",
    )
    _add_codec_options(distributed)

    invert = subparsers.add_parser("invert", help="undo a release using a saved secret")
    invert.add_argument("input", type=Path, help="released CSV")
    invert.add_argument("output", type=Path, help="where to write the restored (normalized) CSV")
    invert.add_argument("--secret", type=Path, required=True, help="rotation secret JSON")
    invert.add_argument("--id-column", default="id", help="identifier column name (default 'id')")
    invert.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help=(
            "restore in blocks of this many rows (out-of-core path; the output "
            "is byte-identical to the default in-memory path)"
        ),
    )
    _add_codec_options(invert)
    _add_backend_options(invert)

    evaluate = subparsers.add_parser(
        "evaluate", help="compare an original (normalized) CSV with a released CSV"
    )
    evaluate.add_argument("original", type=Path, help="normalized original CSV")
    evaluate.add_argument("released", type=Path, help="released CSV")
    evaluate.add_argument(
        "--k", type=int, default=3, help="clusters for the k-means agreement check"
    )
    evaluate.add_argument("--seed", type=int, default=0, help="k-means seed")
    evaluate.add_argument("--id-column", default="id", help="identifier column name (default 'id')")

    cluster = subparsers.add_parser("cluster", help="cluster a released CSV")
    cluster.add_argument("input", type=Path, help="released CSV")
    cluster.add_argument("output", type=Path, help="where to write the labels CSV")
    cluster.add_argument(
        "--algorithm",
        choices=["kmeans", "kmedoids", "hierarchical", "dbscan"],
        default="kmeans",
        help="clustering algorithm (default kmeans)",
    )
    cluster.add_argument("--k", type=int, default=3, help="number of clusters (ignored by dbscan)")
    cluster.add_argument("--eps", type=float, default=0.5, help="dbscan neighbourhood radius")
    cluster.add_argument("--min-samples", type=int, default=5, help="dbscan core-point threshold")
    cluster.add_argument("--seed", type=int, default=0, help="random seed")
    cluster.add_argument("--id-column", default="id", help="identifier column name (default 'id')")

    experiment = subparsers.add_parser(
        "experiment", help="run a declarative evaluation grid (parallel, cached)"
    )
    experiment.add_argument(
        "spec",
        nargs="?",
        default="paper_grid",
        help=(
            "path to a spec JSON, or a built-in name "
            f"({', '.join(sorted(BUILTIN_SPECS))}; default paper_grid)"
        ),
    )
    experiment.add_argument(
        "--workers", type=int, default=1, help="pool size; 1 runs in-process (default 1)"
    )
    experiment.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="pool flavour used when workers > 1 (default process)",
    )
    experiment.add_argument(
        "--output-dir",
        type=Path,
        default=Path("experiments_out"),
        help="where the JSON and Markdown reports are written (default experiments_out/)",
    )
    experiment.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="trial result cache (default <output-dir>/cache)",
    )
    experiment.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk trial cache"
    )
    experiment.add_argument(
        "--format",
        choices=["markdown", "json", "both"],
        default="both",
        help="report format(s) to write (default both)",
    )
    experiment.add_argument(
        "--quiet", action="store_true", help="suppress the Markdown table on stdout"
    )
    _add_backend_options(experiment)

    release = subparsers.add_parser(
        "release",
        help="versioned release bundle: publish v1, then append-only deltas",
    )
    release.add_argument(
        "bundle",
        type=Path,
        help="bundle directory (created by --init, grown by --append)",
    )
    release_mode = release.add_mutually_exclusive_group()
    release_mode.add_argument(
        "--init",
        type=Path,
        default=None,
        metavar="INPUT",
        help="fit the policy on this CSV and publish release v1 into the bundle",
    )
    release_mode.add_argument(
        "--append",
        type=Path,
        default=None,
        metavar="NEW_ROWS",
        help=(
            "stream only these new rows through the frozen policy and publish "
            "vK+1 (byte-identical to a from-scratch release of the full feed)"
        ),
    )
    release.add_argument(
        "--expect-version",
        type=int,
        default=None,
        metavar="K",
        help=(
            "fail --append unless the bundle is still at version K "
            "(optimistic-concurrency guard against a racing writer)"
        ),
    )
    release.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="pairwise-security threshold rho for --init (default 0.25)",
    )
    release.add_argument(
        "--normalizer",
        choices=["zscore", "minmax"],
        default="zscore",
        help="normalization fitted (and frozen) by --init (default zscore)",
    )
    release.add_argument(
        "--strategy",
        choices=["interleaved", "sequential", "random", "max_variance"],
        default="interleaved",
        help="attribute pair-selection strategy for --init (default interleaved)",
    )
    release.add_argument("--seed", type=int, default=None, help="random seed for --init")
    release.add_argument(
        "--id-column",
        default="id",
        help="identifier column name for --init (default 'id')",
    )
    release.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="stream in blocks of this many rows (any value gives the same bytes)",
    )
    _add_codec_options(release)
    _add_backend_options(release)

    audit = subparsers.add_parser(
        "audit", help="adversarially audit a released CSV under a threat model"
    )
    audit.add_argument(
        "released",
        type=Path,
        help="released CSV to attack, or a release-bundle directory",
    )
    audit.add_argument(
        "--original",
        type=Path,
        default=None,
        help=(
            "the owner's normalized original CSV; enables reconstruction-error "
            "scoring, privacy-threshold verdicts and the known-sample attack"
        ),
    )
    audit.add_argument(
        "--threat-model",
        default="paper_public",
        help=(
            "path to a threat-model JSON, or a built-in name "
            f"({', '.join(sorted(BUILTIN_THREAT_MODELS))}; default paper_public)"
        ),
    )
    audit.add_argument(
        "--attacks",
        default=None,
        help=(
            "comma-separated attack names overriding the threat model's list "
            "(e.g. renormalization,known_sample)"
        ),
    )
    audit.add_argument(
        "--seed", type=int, default=None, help="override the threat model's seed"
    )
    audit.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="stream the evidence in blocks of this many rows",
    )
    audit.add_argument(
        "--memory-budget-mib",
        type=int,
        default=None,
        help="derive --chunk-rows from a peak-memory budget (MiB)",
    )
    audit.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for the per-attack planning stage (default 1)",
    )
    audit.add_argument(
        "--output-dir",
        type=Path,
        default=Path("audit_out"),
        help="where the JSON and Markdown reports are written (default audit_out/)",
    )
    audit.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="attack result cache (default <output-dir>/cache)",
    )
    audit.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk attack cache"
    )
    audit.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "reuse rows from the previous report in --output-dir whose "
            "evidence hash is unchanged; only recompute the rest"
        ),
    )
    audit.add_argument(
        "--prior",
        type=Path,
        default=None,
        metavar="REPORT_JSON",
        help=(
            "prior audit report to reuse rows from (implies --incremental; "
            "default <output-dir>/<model>_audit.json)"
        ),
    )
    audit.add_argument(
        "--format",
        choices=["markdown", "json", "both"],
        default="both",
        help="report format(s) to write (default both)",
    )
    audit.add_argument(
        "--quiet", action="store_true", help="suppress the Markdown report on stdout"
    )
    audit.add_argument("--id-column", default="id", help="identifier column name (default 'id')")
    audit.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-stage read/compute/write wall-clock and peak-RSS "
            "breakdown of the streamed evidence passes"
        ),
    )
    _add_codec_options(audit, pipelined=False)
    _add_backend_options(audit)

    bench = subparsers.add_parser(
        "bench", help="benchmark-report utilities (diff two BENCH_perf*.json reports)"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_diff = bench_commands.add_parser(
        "diff",
        help="per-scenario speedup/regression table between two bench reports",
    )
    bench_diff.add_argument("old", type=Path, help="baseline BENCH_perf*.json report")
    bench_diff.add_argument("new", type=Path, help="candidate BENCH_perf*.json report")
    bench_diff.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop in any gated ratio (default 0.30)",
    )
    bench_diff.add_argument(
        "--verbose",
        action="store_true",
        help="also list unchanged informational metrics",
    )

    lint = subparsers.add_parser(
        "lint", help="statically check the source tree against the repro contracts"
    )
    lint_cli.configure_parser(lint)

    return parser


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def _command_transform(args: argparse.Namespace) -> int:
    normalizer = ZScoreNormalizer() if args.normalizer == "zscore" else MinMaxNormalizer()
    transformer = RBT(thresholds=args.threshold, strategy=args.strategy, random_state=args.seed)
    backend = _resolve_backend(args)

    profiler = StageProfiler() if args.profile else None

    # A parallel backend (or --profile, which instruments the streamed
    # stages) routes through the streaming path even without --chunk-rows:
    # that is where the backend-threaded kernels live, and the streamed
    # output is byte-identical to the in-memory branch anyway.
    if (
        args.chunk_rows is not None
        or profiler is not None
        or (backend is not None and backend.workers > 1)
    ):
        # Out-of-core path: constant memory in the number of rows, output
        # byte-identical to the in-memory branch below.
        pipeline = StreamingReleasePipeline(
            transformer,
            normalizer=normalizer,
            chunk_rows=args.chunk_rows,
            backend=backend,
            codec=args.codec,
            pipelined=args.pipelined,
        )
        streamed = pipeline.run(
            args.input, args.output, id_column=args.id_column, profiler=profiler
        )
        n_objects, n_attributes = streamed.n_objects, streamed.n_attributes
        records = streamed.records
        pairs = streamed.pairs
        secret = streamed.secret()
        report = streamed.privacy
    else:
        matrix = matrix_from_csv(args.input, id_column=args.id_column, codec=args.codec)
        normalized = normalizer.fit(matrix).transform(matrix)
        result = transformer.transform(normalized)
        matrix_to_csv(result.matrix, args.output, codec=args.codec)
        n_objects, n_attributes = result.matrix.n_objects, result.matrix.n_attributes
        records = result.records
        pairs = result.pairs
        secret = RBTSecret.from_result(result)
        report = privacy_report(normalized, result.matrix) if args.report is not None else None

    print(f"released {n_objects} objects x {n_attributes} attributes -> {args.output}")

    if args.secret is not None:
        secret.save(args.secret)
        print(f"rotation secret written to {args.secret} (keep it private)")
    if args.report is not None:
        payload = {
            "threshold": args.threshold,
            "pairs": [list(pair) for pair in pairs],
            "min_variance_difference": report.minimum_variance_difference,
            "attributes": report.as_dict(),
        }
        args.report.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"privacy report written to {args.report}")
    for record in records:
        print(
            f"  pair {record.pair}: theta drawn from "
            f"[{record.security_range.lower_bound:.2f}, {record.security_range.upper_bound:.2f}] deg, "
            f"Var(X - X') = ({record.achieved_variances[0]:.4f}, {record.achieved_variances[1]:.4f})"
        )
    if profiler is not None:
        print(profiler.format_table())
    return 0


def _command_distributed(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    normalizer = ZScoreNormalizer() if args.normalizer == "zscore" else MinMaxNormalizer()
    transformer = RBT(thresholds=args.threshold, strategy=args.strategy, random_state=args.seed)
    shard_paths = list(args.shards)
    with contextlib.ExitStack() as stack:
        if args.parties is not None:
            if len(shard_paths) != 1:
                raise ValidationError(
                    "--parties splits a single source CSV; pass one input path"
                )
            if args.parties < 1:
                raise ValidationError(f"--parties must be >= 1, got {args.parties}")
            scratch = Path(stack.enter_context(tempfile.TemporaryDirectory()))
            source = shard_paths[0]
            shard_paths = [scratch / f"party-{index}.csv" for index in range(args.parties)]
            written = split_csv_shards(
                source, shard_paths, id_column=args.id_column, codec=args.codec
            )
            print(f"split {source} into {len(written)} shard(s): {list(written)} rows")
        pipeline = DistributedReleasePipeline(
            transformer,
            normalizer=normalizer,
            chunk_rows=args.chunk_rows,
            protocol_seed=args.protocol_seed,
            codec=args.codec,
            pipelined=args.pipelined,
        )
        report = pipeline.run(shard_paths, args.output, id_column=args.id_column)

    communication = report.ledger.summary()
    print(
        f"released {report.n_objects} objects x {report.n_attributes} attributes "
        f"from {report.n_parties} part(ies) -> {args.output}"
    )
    print(
        f"  communication: {communication['n_messages']} messages, "
        f"{communication['n_bytes']} bytes over {communication['rounds']} rounds "
        f"(largest payload {communication['max_message_values']} values)"
    )
    if args.secret is not None:
        report.secret().save(args.secret)
        print(f"rotation secret written to {args.secret} (keep it private)")
    if args.report is not None:
        payload = {
            "threshold": args.threshold,
            "pairs": [list(pair) for pair in report.pairs],
            "min_variance_difference": report.privacy.minimum_variance_difference,
            "attributes": report.privacy.as_dict(),
            "n_parties": report.n_parties,
            "party_rows": list(report.party_rows),
            "communication": communication,
        }
        args.report.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"release report written to {args.report}")
    for record in report.records:
        print(
            f"  pair {record.pair}: theta drawn from "
            f"[{record.security_range.lower_bound:.2f}, {record.security_range.upper_bound:.2f}] deg, "
            f"Var(X - X') = ({record.achieved_variances[0]:.4f}, {record.achieved_variances[1]:.4f})"
        )
    return 0


def _command_invert(args: argparse.Namespace) -> int:
    secret = RBTSecret.load(args.secret)
    backend = _resolve_backend(args)
    if args.chunk_rows is not None or (backend is not None and backend.workers > 1):
        stream_invert(
            args.input,
            args.output,
            secret,
            chunk_rows=args.chunk_rows,
            id_column=args.id_column,
            backend=backend,
            codec=args.codec,
            pipelined=args.pipelined,
        )
    else:
        released = matrix_from_csv(args.input, id_column=args.id_column, codec=args.codec)
        restored = secret.invert(released)
        matrix_to_csv(restored, args.output, codec=args.codec)
    print(f"restored matrix written to {args.output}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    original = matrix_from_csv(args.original, id_column=args.id_column)
    released = matrix_from_csv(args.released, id_column=args.id_column)
    if original.shape != released.shape:
        print(
            f"error: shape mismatch {original.shape} vs {released.shape}",
            file=sys.stderr,
        )
        return 2

    max_distortion = max_abs_distance_difference(original.values, released.values)
    report = privacy_report(original, released)
    labels_original = KMeans(args.k, random_state=args.seed).fit_predict(original)
    labels_released = KMeans(args.k, random_state=args.seed).fit_predict(released)
    error = misclassification_error(labels_original, labels_released)
    ari = adjusted_rand_index(labels_original, labels_released)

    print(f"max |delta pairwise distance| : {max_distortion:.3e}")
    print(f"distances preserved           : {max_distortion < 1e-8}")
    print(f"min Var(X - X')               : {report.minimum_variance_difference:.4f}")
    print(f"mean Var(X - X')              : {report.mean_variance_difference:.4f}")
    print(f"k-means misclassification     : {error:.4f}")
    print(f"k-means adjusted Rand index   : {ari:.4f}")
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    matrix = matrix_from_csv(args.input, id_column=args.id_column)
    if args.algorithm == "kmeans":
        algorithm = KMeans(args.k, random_state=args.seed)
    elif args.algorithm == "kmedoids":
        algorithm = KMedoids(args.k, random_state=args.seed)
    elif args.algorithm == "hierarchical":
        algorithm = AgglomerativeClustering(args.k)
    else:
        algorithm = DBSCAN(eps=args.eps, min_samples=args.min_samples)
    result = algorithm.fit(matrix)

    _write_labels(args.output, matrix, result.labels)
    sizes = np.bincount(result.labels[result.labels >= 0]) if result.n_clusters else np.array([])
    print(f"found {result.n_clusters} cluster(s); sizes: {sizes.tolist()}")
    print(f"labels written to {args.output}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # A local file wins over a built-in of the same name, so saved specs are
    # never silently shadowed.
    spec_path = Path(args.spec)
    if spec_path.is_file():
        spec = ExperimentSpec.load(spec_path)
    elif args.spec in BUILTIN_SPECS:
        spec = builtin_spec(args.spec)
    else:
        print(
            f"error: {args.spec!r} is neither a spec file nor a built-in "
            f"({', '.join(sorted(BUILTIN_SPECS))})",
            file=sys.stderr,
        )
        return 1

    cache_dir = None if args.no_cache else (args.cache_dir or args.output_dir / "cache")
    report = run_experiment(
        spec,
        workers=args.workers,
        executor=args.executor,
        cache_dir=cache_dir,
        backend=args.backend,
        kernel_workers=args.kernel_workers,
    )

    args.output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    markdown = None
    if args.format in ("markdown", "both") or not args.quiet:
        markdown = report.results.to_markdown()
    if args.format in ("json", "both"):
        json_path = args.output_dir / f"{spec.name}.json"
        json_path.write_text(report.results.to_json(), encoding="utf-8")
        written.append(json_path)
    if args.format in ("markdown", "both"):
        markdown_path = args.output_dir / f"{spec.name}.md"
        markdown_path.write_text(markdown + "\n", encoding="utf-8")
        written.append(markdown_path)

    if not args.quiet:
        print(markdown)
    rate = f", {report.trials_per_second:.1f} executed trials/s" if report.executed else ""
    print(
        f"{report.total} trials ({report.executed} executed, {report.cached} from cache) "
        f"in {report.elapsed_seconds:.2f}s with {args.workers} worker(s){rate}"
    )
    for path in written:
        print(f"report written to {path}")
    return 0


def _command_release(args: argparse.Namespace) -> int:
    backend = _resolve_backend(args)
    if args.init is not None:
        normalizer = ZScoreNormalizer() if args.normalizer == "zscore" else MinMaxNormalizer()
        transformer = RBT(
            thresholds=args.threshold, strategy=args.strategy, random_state=args.seed
        )
        bundle, report = VersionedReleaseBundle.create(
            args.init,
            args.bundle,
            rbt=transformer,
            normalizer=normalizer,
            chunk_rows=args.chunk_rows,
            backend=backend,
            id_column=args.id_column,
            codec=args.codec,
            pipelined=args.pipelined,
        )
        print(
            f"release v{bundle.version}: {bundle.total_rows} objects x "
            f"{len(bundle.columns)} attributes -> {bundle.released_path}"
        )
        print(f"bundle manifest written to {args.bundle / MANIFEST_NAME}")
        for record in report.records:
            print(
                f"  pair {record.pair}: theta drawn from "
                f"[{record.security_range.lower_bound:.2f}, "
                f"{record.security_range.upper_bound:.2f}] deg (frozen for appends)"
            )
        return 0

    if args.append is not None:
        bundle = VersionedReleaseBundle.open(args.bundle)
        previous_rows = bundle.total_rows
        bundle.append(
            args.append,
            expected_version=args.expect_version,
            chunk_rows=args.chunk_rows,
            backend=backend,
            codec=args.codec,
            pipelined=args.pipelined,
        )
        print(
            f"release v{bundle.version}: appended "
            f"{bundle.total_rows - previous_rows} objects "
            f"({bundle.total_rows} total) -> {bundle.released_path}"
        )
        print(
            "byte-identical to a from-scratch release of the concatenated feed "
            "(verify with the bundle's reference pipeline)"
        )
        return 0

    # No mode flag: verify and summarize the bundle.
    bundle = VersionedReleaseBundle.open(args.bundle)
    bundle.verify()
    print(f"bundle {args.bundle}: release v{bundle.version} (artifacts verified)")
    print(
        f"  {bundle.total_rows} objects x {len(bundle.columns)} attributes "
        f"-> {bundle.released_path}"
    )
    for entry in bundle.manifest["versions"]:
        print(f"  v{entry['version']}: +{entry['rows']} rows ({entry['total_rows']} total)")
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    released_path = args.released
    if released_path.is_dir():
        # A release-bundle directory: audit its current released version.
        bundle = VersionedReleaseBundle.open(released_path)
        released_path = bundle.released_path
        print(f"auditing release v{bundle.version} of bundle {args.released}")

    # A local file wins over a built-in of the same name (same rule as
    # experiment specs), so saved threat models are never shadowed.
    model_path = Path(args.threat_model)
    if model_path.is_file():
        model = ThreatModel.load(model_path)
    elif args.threat_model in BUILTIN_THREAT_MODELS:
        model = builtin_threat_model(args.threat_model)
    else:
        print(
            f"error: {args.threat_model!r} is neither a threat-model file nor a "
            f"built-in ({', '.join(sorted(BUILTIN_THREAT_MODELS))})",
            file=sys.stderr,
        )
        return 1
    if args.attacks is not None:
        names = [name.strip() for name in args.attacks.split(",") if name.strip()]
        if not names:
            print("error: --attacks must name at least one attack", file=sys.stderr)
            return 1
        model = ThreatModel(
            name="adhoc",
            description=f"ad-hoc attack list: {', '.join(names)}",
            seed=model.seed,
            privacy_threshold=model.privacy_threshold,
            attacks=tuple({"name": name} for name in names),
        )
    if args.seed is not None:
        model = ThreatModel(
            name=model.name,
            description=model.description,
            seed=args.seed,
            privacy_threshold=model.privacy_threshold,
            attacks=tuple(entry.canonical() for entry in model.attacks),
        )

    if args.chunk_rows is not None and args.memory_budget_mib is not None:
        print("error: pass either --chunk-rows or --memory-budget-mib", file=sys.stderr)
        return 1

    prior_report = None
    if args.prior is not None or args.incremental:
        prior_path = args.prior or args.output_dir / f"{model.name}_audit.json"
        if prior_path.is_file():
            prior_report = prior_path
        elif args.prior is not None:
            print(
                f"error: prior report {prior_path} does not exist; run a full "
                "audit first or point --prior at an existing report",
                file=sys.stderr,
            )
            return 1
        else:
            print(f"no prior report at {prior_path}; running a full audit")

    cache_dir = None if args.no_cache else (args.cache_dir or args.output_dir / "cache")
    suite = AttackSuite(
        model,
        workers=args.workers,
        cache_dir=cache_dir,
        backend=_resolve_backend(args),
        codec=args.codec,
    )
    profiler = StageProfiler() if args.profile else None
    report = suite.run(
        released_path,
        args.original,
        id_column=args.id_column,
        chunk_rows=args.chunk_rows,
        memory_budget_bytes=(
            None if args.memory_budget_mib is None else args.memory_budget_mib * 2**20
        ),
        prior_report=prior_report,
        profiler=profiler,
    )

    args.output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    markdown = report.to_markdown()
    if args.format in ("json", "both"):
        json_path = args.output_dir / f"{model.name}_audit.json"
        json_path.write_text(report.to_json(), encoding="utf-8")
        written.append(json_path)
    if args.format in ("markdown", "both"):
        markdown_path = args.output_dir / f"{model.name}_audit.md"
        markdown_path.write_text(markdown, encoding="utf-8")
        written.append(markdown_path)

    if not args.quiet:
        print(markdown)
    reused = f", {report.reused} reused from prior" if report.reused else ""
    print(
        f"{len(report.outcomes)} attacks ({report.executed} executed, "
        f"{report.cached} from cache{reused}) in {report.elapsed_seconds:.2f}s"
    )
    for path in written:
        print(f"report written to {path}")
    if profiler is not None:
        print(profiler.format_table())
    return 0


def _write_labels(path: Path, matrix: DataMatrix, labels: np.ndarray) -> None:
    """Write an ``id,label`` CSV (positional ids when the matrix has none).

    Ids are emitted through :mod:`csv` so values containing commas, quotes
    or newlines are quoted correctly instead of corrupting the file.
    """
    ids = matrix.ids if matrix.ids is not None else tuple(range(matrix.n_objects))
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "label"])
        writer.writerows([object_id, int(label)] for object_id, label in zip(ids, labels))


def _command_bench(args: argparse.Namespace) -> int:
    from .perf.benchreport import (
        diff_bench_reports,
        format_bench_diff,
        has_regressions,
        load_bench_report,
    )

    old = load_bench_report(args.old)
    new = load_bench_report(args.new)
    if old.get("mode") != new.get("mode"):
        print(
            f"error: mode mismatch — {args.old} is {old.get('mode')!r}, "
            f"{args.new} is {new.get('mode')!r}; compare like with like",
            file=sys.stderr,
        )
        return 2
    rows = diff_bench_reports(old, new, max_regression=args.max_regression)
    print(f"bench diff ({args.old} -> {args.new}):")
    print(format_bench_diff(rows, verbose=args.verbose))
    return 1 if has_regressions(rows) else 0


def _command_lint(args: argparse.Namespace) -> int:
    # The lint CLI owns its own exit-code contract (0 clean / 1 findings /
    # 2 usage error), including ReproError handling.
    return lint_cli.run(args)


_COMMANDS = {
    "transform": _command_transform,
    "distributed": _command_distributed,
    "invert": _command_invert,
    "evaluate": _command_evaluate,
    "cluster": _command_cluster,
    "experiment": _command_experiment,
    "audit": _command_audit,
    "release": _command_release,
    "bench": _command_bench,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
