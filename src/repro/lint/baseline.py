"""Committed baseline for grandfathered findings.

The baseline lets the gate be strict from day one: pre-existing debt is
recorded once (``repro lint --write-baseline``) and CI fails on any *new*
finding.  Entries match by a content fingerprint — file key, rule code,
the stripped source line text and an occurrence index — so they survive
unrelated line-number drift but die with the code they describe; a stale
entry (nothing matches it any more) is reported so the file shrinks as
debt is paid down.

The policy for *intentional* exemptions is inline suppressions with a
justification, not baseline entries; the committed baseline is expected
to stay empty (see docs/LINTING.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..exceptions import SerializationError
from .diagnostics import Diagnostic

__all__ = ["BASELINE_SCHEMA_VERSION", "Baseline", "diagnostic_fingerprint"]

#: On-disk baseline schema; bump on incompatible changes.
BASELINE_SCHEMA_VERSION = 1


def diagnostic_fingerprint(diagnostic: Diagnostic, line_text: str, occurrence: int) -> str:
    """Content fingerprint of one finding, stable under line-number drift."""
    payload = "::".join(
        [diagnostic.path, diagnostic.code, line_text.strip(), str(occurrence)]
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class Baseline:
    """Load/apply/regenerate the grandfathered-findings file."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = list(entries or [])
        self._by_fingerprint = {entry["fingerprint"]: entry for entry in self.entries}
        self._matched: set[str] = set()

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SerializationError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise SerializationError(
                f"baseline {path} must be a JSON object with an 'entries' list "
                "(regenerate it with `repro lint --write-baseline`)"
            )
        version = payload.get("version")
        if version != BASELINE_SCHEMA_VERSION:
            raise SerializationError(
                f"baseline {path} has schema version {version!r}, expected "
                f"{BASELINE_SCHEMA_VERSION}; regenerate it with --write-baseline"
            )
        entries = payload["entries"]
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise SerializationError(
                    f"baseline {path} contains a malformed entry: {entry!r}"
                )
        return cls(entries)

    def matches(self, fingerprint: str) -> bool:
        """Whether a finding is grandfathered (marks the entry as live)."""
        if fingerprint in self._by_fingerprint:
            self._matched.add(fingerprint)
            return True
        return False

    def stale_entries(self) -> list[dict]:
        """Entries no current finding matches — debt that has been paid."""
        return [
            entry
            for entry in self.entries
            if entry["fingerprint"] not in self._matched
        ]

    @staticmethod
    def build(findings: list[tuple[Diagnostic, str]]) -> dict:
        """The JSON payload for a fresh baseline over ``(diagnostic, fingerprint)``."""
        entries = [
            {
                "fingerprint": fingerprint,
                "code": diagnostic.code,
                "path": diagnostic.path,
                "line": diagnostic.line,
                "message": diagnostic.message,
            }
            for diagnostic, fingerprint in sorted(findings, key=lambda pair: pair[0])
        ]
        return {"version": BASELINE_SCHEMA_VERSION, "entries": entries}

    @staticmethod
    def save(payload: dict, path: str | Path) -> None:
        """Atomically write a baseline payload (same contract RPR005 guards)."""
        path = Path(path)
        temporary = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, path)
