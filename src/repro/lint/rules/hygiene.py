"""Hygiene rules: configuration seams and exception discipline."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from . import Rule, dotted_name, register_rule

__all__ = ["EnvironOutsideSeamRule", "OverbroadExceptRule"]


@register_rule
class EnvironOutsideSeamRule(Rule):
    code = "RPR009"
    name = "environ-outside-seam"
    contract = (
        "Environment configuration enters the library through exactly one "
        "seam — perf/backends.py resolves REPRO_BACKEND/REPRO_KERNEL_WORKERS "
        "and pool workers pin their own defaults there (PR 6).  os.environ "
        "reads scattered elsewhere make behaviour depend on ambient state "
        "that caches, worker processes and tests cannot see or control."
    )
    default_allow = ("repro/perf/backends.py",)

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and dotted_name(node) == "os.environ":
                yield self.diagnostic(
                    context,
                    node,
                    "os.environ access outside the backends env seam — accept the value "
                    "as an argument and resolve it in perf/backends.py",
                )
            elif isinstance(node, ast.Call) and dotted_name(node.func) == "os.getenv":
                yield self.diagnostic(
                    context,
                    node,
                    "os.getenv outside the backends env seam — accept the value as an "
                    "argument and resolve it in perf/backends.py",
                )


_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(handler_type: ast.AST | None) -> list[str]:
    if handler_type is None:
        return ["bare except"]
    candidates = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    names = []
    for candidate in candidates:
        dotted = dotted_name(candidate)
        if dotted is not None and dotted.split(".")[-1] in _BROAD:
            names.append(dotted)
    return names


@register_rule
class OverbroadExceptRule(Rule):
    code = "RPR010"
    name = "overbroad-except"
    contract = (
        "Every library failure derives from ReproError so callers can "
        "distinguish failure modes; a bare except or except Exception that "
        "does not re-raise swallows ValidationError/BundleError/... and "
        "turns contract violations into silent fallbacks — every PR's "
        "byte-identity gate relies on such violations surfacing loudly.  "
        "Catch the specific exceptions, or convert with "
        "`raise X(...) from exc`."
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _broad_names(node.type)
            if not names:
                continue
            if any(isinstance(inner, ast.Raise) for inner in ast.walk(node)):
                continue  # re-raising / converting is the accepted pattern
            label = ", ".join(names)
            yield self.diagnostic(
                context,
                node,
                f"overbroad handler ({label}) swallows ReproError subclasses — catch "
                "specific exceptions or re-raise with `raise X(...) from exc`",
            )
