"""Persistence rules: atomic on-disk state and read-only result arrays.

These guard the crash-safety contract of the modules that own durable
state (PR 8: temp-in-dir + ``os.replace``, manifest flipped last) and the
mutability-hardening policy on attack results (PRs 3, 5).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from . import Rule, dotted_name, register_rule

__all__ = ["NonAtomicWriteRule", "WritableDetailArraysRule"]

_WRITE_MODES = ("w", "a", "x")


def _constant_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _write_mode(call: ast.Call, position: int) -> str | None:
    """The mode string of an ``open``-style call, if statically visible."""
    if len(call.args) > position:
        return _constant_str(call.args[position])
    for keyword in call.keywords:
        if keyword.arg == "mode":
            return _constant_str(keyword.value)
    return None


def _mentions_temp(context, node: ast.AST) -> bool:
    """Whether the write target's source text names a temporary file."""
    text = context.source(node).lower()
    return "tmp" in text or "temp" in text


@register_rule
class NonAtomicWriteRule(Rule):
    code = "RPR005"
    name = "non-atomic-write"
    contract = (
        "Modules that own on-disk state publish artifacts crash-safely: "
        "write to a temporary file in the destination directory, then "
        "os.replace() it over the final path, manifest last (PR 8).  A "
        "direct open(path, 'w')/write_text/json.dump to the final path can "
        "leave a torn file behind a crash, breaking the versioned-bundle "
        "and cache recovery guarantees."
    )
    default_include = (
        "repro/pipeline/",
        "repro/data/io.py",
        "repro/perf/cache.py",
        "repro/experiments/runner.py",
    )

    def check(self, context) -> Iterator[Diagnostic]:
        # Group write sites by their nearest enclosing function: the
        # temp-then-replace pattern lives inside one function, so a function
        # containing os.replace() is trusted to publish atomically.
        scopes: dict[ast.AST | None, list[ast.AST]] = {}
        replaced: set[ast.AST | None] = set()
        for scope, node in self._walk_scoped(context.tree):
            if isinstance(node, ast.Call) and dotted_name(node.func) == "os.replace":
                replaced.add(scope)
            site = self._write_site(context, node)
            if site is not None:
                scopes.setdefault(scope, []).append(site)
        for scope, sites in scopes.items():
            if scope in replaced:
                continue
            for site in sites:
                yield self.diagnostic(
                    context,
                    site,
                    "non-atomic write to a final path in a state-owning module — write "
                    "to a same-directory temp file and publish with os.replace()",
                )

    def _walk_scoped(self, tree: ast.AST):
        """Yield ``(enclosing_function, node)`` pairs for every node."""

        def visit(node: ast.AST, scope: ast.AST | None):
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_scope = child
                yield (child_scope, child)
                yield from visit(child, child_scope)

        yield from visit(tree, None)

    def _write_site(self, context, node: ast.AST) -> ast.AST | None:
        if not isinstance(node, ast.Call):
            return None
        dotted = dotted_name(node.func)
        if dotted == "open":
            mode = _write_mode(node, 1)
            if mode and any(flag in mode for flag in _WRITE_MODES):
                if node.args and not _mentions_temp(context, node.args[0]):
                    return node
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "open":
                mode = _write_mode(node, 0)
                if mode and any(flag in mode for flag in _WRITE_MODES):
                    if not _mentions_temp(context, node.func.value):
                        return node
            elif attr in ("write_text", "write_bytes"):
                if not _mentions_temp(context, node.func.value):
                    return node
            elif dotted == "json.dump":
                return node
        return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return True
    return False


@register_rule
class WritableDetailArraysRule(Rule):
    code = "RPR008"
    name = "writable-detail-arrays"
    contract = (
        "Attack results are shared evidence: every ndarray a result object "
        "exposes is a read-only copy (setflags(write=False)) so callers "
        "cannot corrupt cached or cross-attack state (PRs 3, 5).  A result "
        "dataclass with array fields must freeze them in __post_init__, "
        "and nothing may flip an array back to writable."
    )
    default_include = ("repro/attacks/",)

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
                yield from self._check_dataclass(context, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
            ):
                for keyword in node.keywords:
                    if (
                        keyword.arg == "write"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        yield self.diagnostic(
                            context,
                            node,
                            "setflags(write=True) re-opens a frozen array for mutation — "
                            "copy instead of unfreezing shared evidence",
                        )

    def _check_dataclass(self, context, node: ast.ClassDef) -> Iterator[Diagnostic]:
        has_post_init = any(
            isinstance(member, ast.FunctionDef) and member.name == "__post_init__"
            for member in node.body
        )
        if has_post_init:
            return
        for member in node.body:
            if isinstance(member, ast.AnnAssign) and "ndarray" in context.source(
                member.annotation
            ):
                yield self.diagnostic(
                    context,
                    member,
                    f"dataclass {node.name} exposes an ndarray field without a "
                    "__post_init__ freezing it — store a read-only copy "
                    "(setflags(write=False)) like AttackResult does",
                )
