"""Rule registry for the contract linter.

A rule is a small class with a stable ``RPR0xx`` code, a human name, a
``contract`` paragraph documenting the invariant it guards (and the PR
that motivated it), optional default path scoping, and a ``check``
method yielding :class:`~repro.lint.diagnostics.Diagnostic` objects for
one parsed file.  Registration is by decorator::

    @register_rule
    class MyRule(Rule):
        code = "RPR042"
        name = "my-invariant"
        contract = "..."

        def check(self, context):
            ...

Path scoping: ``default_include`` limits a rule to the modules whose
invariant it encodes (empty means every scanned file); ``default_allow``
exempts modules that *implement* the guarded seam (e.g. the backends env
seam for RPR009).  Both are extendable per-rule from the
``[tool.repro-lint]`` config.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from ...exceptions import ValidationError
from ..diagnostics import Diagnostic

__all__ = [
    "RULES",
    "Rule",
    "dotted_name",
    "match_patterns",
    "register_rule",
]


class Rule:
    """Base class for lint rules; subclasses set the class attributes."""

    #: Stable diagnostic code, ``RPR`` + three digits.
    code: ClassVar[str]
    #: Short kebab-case rule name shown next to the code.
    name: ClassVar[str]
    #: The invariant this rule guards and the PR that motivated it.
    contract: ClassVar[str]
    #: Module-key patterns the rule is limited to (empty: every file).
    default_include: ClassVar[tuple[str, ...]] = ()
    #: Module-key patterns exempt because they implement the guarded seam.
    default_allow: ClassVar[tuple[str, ...]] = ()

    def check(self, context) -> Iterator[Diagnostic]:
        """Yield diagnostics for one :class:`~repro.lint.engine.FileContext`."""
        raise NotImplementedError

    def diagnostic(self, context, node: ast.AST, message: str) -> Diagnostic:
        """A :class:`Diagnostic` for ``node`` carrying this rule's identity."""
        return Diagnostic(
            path=context.key,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            name=self.name,
            message=message,
        )


#: Registered rules, keyed by code (populated by :func:`register_rule`).
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Instantiate and register a rule class under its code."""
    rule = cls()
    for attribute in ("code", "name", "contract"):
        if not getattr(rule, attribute, None):
            raise ValidationError(f"rule {cls.__name__} must define a non-empty {attribute!r}")
    if not (rule.code.startswith("RPR") and rule.code[3:].isdigit() and len(rule.code) == 6):
        raise ValidationError(f"rule code must look like RPR0xx, got {rule.code!r}")
    if rule.code in RULES:
        raise ValidationError(
            f"duplicate rule code {rule.code}: {cls.__name__} vs {type(RULES[rule.code]).__name__}"
        )
    RULES[rule.code] = rule
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """The dotted source name of an attribute chain (``np.random.seed``).

    Returns ``None`` when the chain does not bottom out in a plain name
    (e.g. a call result or subscript), which no name-based rule matches.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def match_patterns(key: str, patterns: Iterable[str]) -> bool:
    """Whether a module key matches any pattern.

    A pattern ending in ``/`` is a directory prefix; anything else must
    match the key exactly or as an ``fnmatch`` glob.  Keys are POSIX
    module paths like ``repro/perf/kernels.py``.
    """
    from fnmatch import fnmatch

    for pattern in patterns:
        if pattern.endswith("/"):
            if key.startswith(pattern):
                return True
        elif key == pattern or fnmatch(key, pattern):
            return True
    return False


def _load_rule_modules() -> None:
    # Importing the rule modules runs their @register_rule decorators; the
    # alias form keeps the imports visibly "used" for the pyflakes pass.
    from . import determinism, hygiene, numerics, persistence

    modules = (determinism, hygiene, numerics, persistence)
    if not all(modules):  # pragma: no cover - import machinery guard
        raise ImportError("rule modules failed to import")


_load_rule_modules()
