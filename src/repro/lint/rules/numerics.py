"""Floating-point rules: accumulation order, lossy formatting, BLAS shapes.

These guard the exact-arithmetic contracts: chunk-invariant accumulators
(PR 4/7), hex-float wire formats (PR 8) and shape-invariant BLAS kernels
(PR 6).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from . import Rule, dotted_name, register_rule

__all__ = ["FloatAccumulationRule", "LossyFloatFormatRule", "VariableShapeBlasRule"]


def _parent_is_int_call(context, node: ast.AST) -> bool:
    parent = context.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "int"
    )


@register_rule
class FloatAccumulationRule(Rule):
    code = "RPR004"
    name = "float-accumulation"
    contract = (
        "Builtin sum() and running `x += ...` loops accumulate left-to-right, "
        "so their rounding depends on chunk boundaries and iteration order; "
        "the streaming layers are byte-identical across chunk sizes only "
        "because every float reduction routes through StreamingMoments or "
        "math.fsum (PRs 4, 7).  In perf/, pipeline/ and distributed/, wrap "
        "integer counter sums in int(...) to assert exactness, and route "
        "float reductions through the exact accumulators."
    )
    default_include = ("repro/perf/", "repro/pipeline/", "repro/distributed/")

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and not _parent_is_int_call(context, node)
            ):
                yield self.diagnostic(
                    context,
                    node,
                    "builtin sum() rounds left-to-right (chunk-order dependent) — use "
                    "math.fsum/StreamingMoments for floats, or int(sum(...)) to assert "
                    "an exact integer sum",
                )
        # ast.walk visits nested functions and nested loops repeatedly from
        # their enclosing scopes; the seen set keeps each AugAssign to one
        # diagnostic no matter how deeply it is nested.
        seen: set[ast.AugAssign] = set()
        for function in ast.walk(context.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._float_loops(context, function, seen)

    def _float_loops(
        self, context, function: ast.AST, seen: set[ast.AugAssign]
    ) -> Iterator[Diagnostic]:
        float_inits: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, float):
                    float_inits.update(
                        target.id for target in node.targets if isinstance(target, ast.Name)
                    )
        if not float_inits:
            return
        for loop in ast.walk(function):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.AugAssign)
                    and node not in seen
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Name)
                    and node.target.id in float_inits
                ):
                    seen.add(node)
                    yield self.diagnostic(
                        context,
                        node,
                        f"running float accumulation ({node.target.id} += ...) in a loop — "
                        "rounding depends on iteration order; use math.fsum or "
                        "StreamingMoments",
                    )


#: printf-style conversions that truncate a double's 17 significant digits.
_LOSSY_PERCENT = re.compile(r"%[#0\- +]*\d*(?:\.\d+)?[efgEFG]")
#: Format-spec fragments (f-string / format()) that do the same.
_LOSSY_SPEC = re.compile(r"\.\d+[efgEFG%]|[efgEFG]$")


@register_rule
class LossyFloatFormatRule(Rule):
    code = "RPR006"
    name = "lossy-float-format"
    contract = (
        "Wire formats round-trip doubles bit-for-bit: CSV cells use the "
        "shortest-repr form and bundle manifests use C99 hex floats, "
        "negative zero and subnormals included (PRs 4, 8).  In the "
        "serialization modules, %.Nf/%e/%g conversions, digit-limited "
        "format specs and round(x, n) silently destroy that contract."
    )
    default_include = (
        "repro/data/io.py",
        "repro/perf/csv_codec.py",
        "repro/pipeline/bundle_format.py",
        "repro/core/secrets.py",
        "repro/perf/streaming.py",
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, node)
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and _LOSSY_PERCENT.search(node.left.value)
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"lossy printf float conversion ({node.left.value!r}) in a wire-format "
                    "module — use repr() (shortest round-trip) or float.hex()",
                )
            elif isinstance(node, ast.FormattedValue) and node.format_spec is not None:
                spec = "".join(
                    part.value
                    for part in ast.walk(node.format_spec)
                    if isinstance(part, ast.Constant) and isinstance(part.value, str)
                )
                if _LOSSY_SPEC.search(spec):
                    yield self.diagnostic(
                        context,
                        node,
                        f"digit-limited format spec ({spec!r}) in a wire-format module — "
                        "use repr() or float.hex() for persisted values",
                    )

    def _check_call(self, context, node: ast.Call) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted == "round" and len(node.args) >= 2:
            yield self.diagnostic(
                context,
                node,
                "round(x, n) before serialization truncates the value — persist the "
                "full double and format only at presentation time",
            )
        elif dotted == "format" and len(node.args) == 2:
            spec = node.args[1]
            if (
                isinstance(spec, ast.Constant)
                and isinstance(spec.value, str)
                and _LOSSY_SPEC.search(spec.value)
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"digit-limited format({spec.value!r}) in a wire-format module — "
                    "use repr() or float.hex()",
                )


#: numpy entry points that dispatch to shape-dependent BLAS reductions.
_BLAS_CALLS = frozenset(
    {
        "np.dot",
        "np.matmul",
        "np.einsum",
        "np.inner",
        "np.vdot",
        "np.tensordot",
        "numpy.dot",
        "numpy.matmul",
        "numpy.einsum",
        "numpy.inner",
        "numpy.vdot",
        "numpy.tensordot",
    }
)


@register_rule
class VariableShapeBlasRule(Rule):
    code = "RPR007"
    name = "variable-shape-blas"
    contract = (
        "BLAS reduction bits depend on operand shapes, so a GEMM over a "
        "chunk-sized block produces different last-ulp results for "
        "different block decompositions; PR 6 made the euclidean kernel "
        "chunk-invariant by fixing every product's shape (per-row matvecs, "
        "2x2 rotations).  Every matmul in the kernel modules must be "
        "shape-invariant by construction and carry a suppression saying "
        "why — an unmarked one is a bit-drift risk."
    )
    default_include = (
        "repro/perf/kernels.py",
        "repro/perf/streaming.py",
        "repro/core/rotation.py",
        "repro/attacks/streamed.py",
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.diagnostic(
                    context,
                    node,
                    "matmul (@) in a kernel module — BLAS bits vary with operand shape; "
                    "confirm the shapes are block-invariant and suppress with the reason",
                )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                is_method_dot = isinstance(node.func, ast.Attribute) and node.func.attr == "dot"
                if dotted in _BLAS_CALLS or (is_method_dot and dotted not in _BLAS_CALLS):
                    label = dotted if dotted in _BLAS_CALLS else ".dot(...)"
                    yield self.diagnostic(
                        context,
                        node,
                        f"BLAS call ({label}) in a kernel module — confirm the operand "
                        "shapes are block-invariant and suppress with the reason",
                    )
