"""Determinism rules: seeding, wall-clock entropy, iteration order.

These guard the repo's foundational contract — the same inputs and seeds
produce the same released bytes on every machine, chunk size, backend and
shard split (PRs 4, 6, 7, 8).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from . import Rule, dotted_name, register_rule

__all__ = ["UnorderedIterationRule", "UnseededRngRule", "WallClockRule"]

#: Functions on NumPy's module-level *global* RNG: shared mutable state
#: whose stream depends on everything else that touched it.
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "seed",
        "normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
    }
)

#: Functions on the stdlib ``random`` module's global instance.
_STDLIB_GLOBAL_RNG = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
    }
)


@register_rule
class UnseededRngRule(Rule):
    code = "RPR001"
    name = "unseeded-rng"
    contract = (
        "Every random draw must flow from an explicit seed: attacks, pair "
        "selection and experiment trials are reproducible because "
        "random_state is threaded end to end (PRs 2, 5).  An unseeded "
        "default_rng()/Random() or any use of the numpy/stdlib *global* RNG "
        "makes results depend on interpreter history and process identity."
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            unseeded = not node.args and not node.keywords
            if (dotted == "default_rng" or dotted.endswith(".default_rng")) and unseeded:
                yield self.diagnostic(
                    context,
                    node,
                    "unseeded default_rng() — pass an explicit seed or a Generator "
                    "threaded from random_state",
                )
            elif dotted in ("Random", "random.Random") and unseeded:
                yield self.diagnostic(
                    context,
                    node,
                    "unseeded random.Random() — pass an explicit seed",
                )
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in _NUMPY_GLOBAL_RNG
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"numpy global RNG ({dotted}) — use a seeded np.random.default_rng(...) "
                    "Generator instead of module-level state",
                )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_GLOBAL_RNG:
                yield self.diagnostic(
                    context,
                    node,
                    f"stdlib global RNG ({dotted}) — use a seeded random.Random(seed) instance",
                )


#: Exact dotted names that read wall-clock time or OS entropy.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
    }
)

#: ``datetime``-family constructors that capture "now".
_NOW_SUFFIXES = (".now", ".utcnow", ".today")


@register_rule
class WallClockRule(Rule):
    code = "RPR002"
    name = "wall-clock"
    contract = (
        "Released artifacts, cache keys and report rows are byte-reproducible; "
        "wall-clock reads and OS entropy may only feed the explicitly-timed "
        "surfaces (the CommunicationLedger and elapsed-seconds fields, which "
        "are excluded from byte-identity — PR 7).  Those modules are "
        "allowlisted in [tool.repro-lint.rules.RPR002]; everywhere else a "
        "time.*/datetime.now/os.urandom call is a nondeterminism leak."
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _WALL_CLOCK:
                yield self.diagnostic(
                    context,
                    node,
                    f"wall-clock/entropy read ({dotted}) outside the timing allowlist — "
                    "derive values from inputs and seeds, or allowlist the module "
                    "in the lint config with a justification",
                )
            elif dotted.endswith(_NOW_SUFFIXES) and any(
                part in ("datetime", "date") for part in dotted.split(".")
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"wall-clock read ({dotted}) — timestamps do not belong in "
                    "deterministic artifacts",
                )


#: Bare constructors whose iteration order is hash- or OS-dependent.
_UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: Set methods returning new unordered sets.
_UNORDERED_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference"})
#: Filesystem enumerations whose order is OS/filesystem-dependent.
_FS_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})
#: Consumers whose output depends on the input *order*.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})


def _is_unordered(expr: ast.AST) -> str | None:
    """The reason an expression's iteration order is nondeterministic."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set iteration order is hash-randomized"
    if isinstance(expr, ast.Call):
        dotted = dotted_name(expr.func)
        if dotted in _UNORDERED_CONSTRUCTORS or (
            dotted is not None and dotted in _FS_CALLS
        ):
            return f"{dotted}(...) yields a nondeterministic order"
        if isinstance(expr.func, ast.Attribute):
            attr = expr.func.attr
            if attr in _UNORDERED_METHODS:
                return f".{attr}(...) returns a set (hash-randomized order)"
            if attr in _FS_METHODS:
                return f".{attr}(...) yields filesystem order"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    code = "RPR003"
    name = "unordered-iteration"
    contract = (
        "Any iteration that feeds accumulation, serialization or hashing "
        "must have a deterministic order: set iteration is hash-randomized "
        "per process and directory listings follow filesystem order, so "
        "both break the byte-identity and content-hash-cache contracts "
        "(PRs 2, 4, 5).  Wrap the iterable in sorted(...)."
    )

    def check(self, context) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            candidates: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                candidates.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                candidates.extend(generator.iter for generator in node.generators)
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                is_join = isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                if dotted in _ORDER_SENSITIVE_CALLS or is_join:
                    candidates.extend(node.args)
            for candidate in candidates:
                # enumerate(set(...)) is as unordered as the set itself.
                if (
                    isinstance(candidate, ast.Call)
                    and dotted_name(candidate.func) == "enumerate"
                    and candidate.args
                ):
                    candidate = candidate.args[0]
                reason = _is_unordered(candidate)
                if reason is not None:
                    yield self.diagnostic(
                        context,
                        candidate,
                        f"iteration order is nondeterministic ({reason}) — wrap in sorted(...)",
                    )
