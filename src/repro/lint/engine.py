"""The lint engine: walk files, run rules, apply suppressions and baseline.

Everything downstream of this module is deterministic by construction:
files are scanned in sorted order, rules run in code order, and the
report sorts findings by ``(path, line, column, code)`` — the same bytes
out for the same tree in, which is what lets CI diff lint output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ValidationError
from .baseline import Baseline, diagnostic_fingerprint
from .config import LintConfig
from .diagnostics import JSON_SCHEMA_VERSION, Diagnostic
from .rules import RULES, match_patterns
from .suppressions import apply_suppressions, parse_suppressions

__all__ = ["FileContext", "LintReport", "lint_paths", "lint_source", "module_key"]


@dataclass
class FileContext:
    """Everything a rule needs to inspect one parsed file."""

    path: Path
    key: str
    tree: ast.AST
    text: str
    lines: list[str]
    _parents: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self._parents.get(node)

    def source(self, node: ast.AST) -> str:
        """The source text of ``node`` (empty when unavailable)."""
        return ast.get_source_segment(self.text, node) or ""

    def line_text(self, line: int) -> str:
        """The 1-based source line, or ``""`` past EOF."""
        return self.lines[line - 1] if 1 <= line <= len(self.lines) else ""


@dataclass
class LintReport:
    """Aggregated outcome of one lint run."""

    findings: list[Diagnostic]
    fingerprints: dict[Diagnostic, str]
    files_scanned: int
    suppressed: int
    baselined: int
    unused_suppressions: list[dict]
    stale_baseline: list[dict]
    parse_errors: list[dict]

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json_payload(self) -> dict:
        """The stable JSON report (schema pinned by the engine tests)."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "findings": [diagnostic.as_dict() for diagnostic in self.findings],
            "unused_suppressions": self.unused_suppressions,
            "stale_baseline": self.stale_baseline,
            "parse_errors": self.parse_errors,
            "summary": {
                "files_scanned": self.files_scanned,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "unused_suppressions": len(self.unused_suppressions),
                "stale_baseline": len(self.stale_baseline),
            },
        }

    def to_text(self) -> str:
        """Human-readable report, one ``path:line:col`` anchor per line."""
        lines = [diagnostic.format_text() for diagnostic in self.findings]
        for error in self.parse_errors:
            lines.append(f"{error['path']}:{error['line']}:1: PARSE [syntax-error] {error['message']}")
        for unused in self.unused_suppressions:
            lines.append(
                f"{unused['path']}:{unused['line']}:1: UNUSED [unused-suppression] "
                f"suppression for {unused['code']} never fired — remove it"
            )
        for stale in self.stale_baseline:
            lines.append(
                f"{stale['path']}:{stale['line']}:1: STALE [stale-baseline] baseline entry "
                f"for {stale['code']} no longer matches — regenerate with --write-baseline"
            )
        summary = (
            f"{self.files_scanned} file(s) scanned: {len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed, {self.baselined} baselined, "
            f"{len(self.unused_suppressions)} unused suppression(s)"
        )
        return "\n".join([*lines, summary])


def module_key(path: Path, root: Path) -> str:
    """The POSIX module key rules scope on (``repro/perf/kernels.py``).

    Keys anchor at the last ``repro`` package directory when present (so
    the same file gets the same key whether the scan root was ``src`` or
    ``src/repro``); other files key relative to the scan root.
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor:])
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.name


def iter_python_files(paths: tuple[Path, ...]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted and de-duplicated."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file():
            found.add(path.resolve())
        elif path.is_dir():
            # RPR003 contract applied to ourselves: rglob yields filesystem
            # order, so the scan order is pinned by sorted().
            found.update(entry.resolve() for entry in sorted(path.rglob("*.py")))
        else:
            raise ValidationError(f"lint path {path} does not exist")
    return sorted(entry for entry in found if "__pycache__" not in entry.parts)


def _sorted_unique(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Sort and collapse identical diagnostics to one.

    Two AST nodes can anchor the same report — ``a @ b @ c`` is two MatMult
    BinOps at one column — and a duplicate anchor would double-count in the
    summary and break the occurrence-indexed baseline fingerprints.
    """
    return sorted(set(diagnostics))


def _rule_applies(rule, key: str, config: LintConfig) -> bool:
    include = config.include_for(rule)
    if include and not match_patterns(key, include):
        return False
    return not match_patterns(key, config.allow_for(rule))


def lint_source(
    text: str,
    *,
    key: str = "<memory>.py",
    path: Path | None = None,
    config: LintConfig | None = None,
    rules=None,
) -> tuple[list[Diagnostic], list]:
    """Lint one in-memory source blob; returns ``(diagnostics, suppressions)``.

    Suppressions are applied; the raw suppression objects are returned so
    callers (and tests) can inspect usage.  ``rules`` limits the run to an
    explicit iterable of rule objects (default: every registered rule).
    """
    config = config or LintConfig()
    tree = ast.parse(text)
    context = FileContext(
        path=path or Path(key),
        key=key,
        tree=tree,
        text=text,
        lines=text.splitlines(),
    )
    active = list(rules) if rules is not None else [RULES[code] for code in sorted(RULES)]
    diagnostics: list[Diagnostic] = []
    for rule in active:
        if _rule_applies(rule, context.key, config):
            diagnostics.extend(rule.check(context))
    diagnostics = _sorted_unique(diagnostics)
    suppressions = parse_suppressions(context.lines)
    kept, _ = apply_suppressions(diagnostics, suppressions)
    return kept, suppressions


def lint_paths(
    paths: tuple[Path, ...],
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run every applicable rule over the Python files under ``paths``."""
    config = config or LintConfig()
    files = iter_python_files(paths)
    root = paths[0] if paths else Path.cwd()
    all_findings: list[Diagnostic] = []
    fingerprints: dict[Diagnostic, str] = {}
    unused: list[dict] = []
    parse_errors: list[dict] = []
    suppressed_total = 0
    baselined_total = 0
    scanned = 0

    for file_path in files:
        key = module_key(file_path, root)
        if match_patterns(key, config.exclude):
            continue
        scanned += 1
        text = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(file_path))
        except SyntaxError as exc:
            parse_errors.append(
                {"path": key, "line": exc.lineno or 1, "message": f"cannot parse: {exc.msg}"}
            )
            continue
        context = FileContext(
            path=file_path, key=key, tree=tree, text=text, lines=text.splitlines()
        )
        diagnostics: list[Diagnostic] = []
        for code in sorted(RULES):
            rule = RULES[code]
            if _rule_applies(rule, key, config):
                diagnostics.extend(rule.check(context))
        diagnostics = _sorted_unique(diagnostics)
        suppressions = parse_suppressions(context.lines)
        kept, n_suppressed = apply_suppressions(diagnostics, suppressions)
        suppressed_total += n_suppressed
        for suppression in suppressions:
            for code in suppression.unused_codes():
                unused.append({"path": key, "line": suppression.line, "code": code})

        occurrence: dict[tuple, int] = {}
        for diagnostic in kept:
            line_text = context.line_text(diagnostic.line)
            bucket = (diagnostic.path, diagnostic.code, line_text.strip())
            index = occurrence.get(bucket, 0)
            occurrence[bucket] = index + 1
            fingerprint = diagnostic_fingerprint(diagnostic, line_text, index)
            if baseline is not None and baseline.matches(fingerprint):
                baselined_total += 1
                continue
            fingerprints[diagnostic] = fingerprint
            all_findings.append(diagnostic)

    all_findings.sort()
    stale = [] if baseline is None else [
        {
            "path": entry.get("path", "?"),
            "line": entry.get("line", 0),
            "code": entry.get("code", "?"),
            "fingerprint": entry["fingerprint"],
        }
        for entry in baseline.stale_entries()
    ]
    return LintReport(
        findings=all_findings,
        fingerprints=fingerprints,
        files_scanned=scanned,
        suppressed=suppressed_total,
        baselined=baselined_total,
        unused_suppressions=sorted(unused, key=lambda u: (u["path"], u["line"], u["code"])),
        stale_baseline=stale,
        parse_errors=parse_errors,
    )
