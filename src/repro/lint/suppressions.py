"""Inline suppression comments and the unused-suppression check.

Syntax::

    risky_call()  # repro-lint: disable=RPR001 -- why this site is exempt
    # repro-lint: disable=RPR005,RPR010 -- applies to the next code line

An inline comment suppresses the listed codes on its own line; a
standalone comment line suppresses them on the next non-blank,
non-comment line (which also covers multi-line statements, whose
diagnostics anchor at the first line).  The ``--`` justification is
free text; the convention (enforced in review, not mechanically) is
that every suppression carries one.

Each listed code is tracked individually: a code that never suppressed a
diagnostic is reported as *unused*, and ``--fail-on-unused-suppression``
turns that report into a CI failure so stale exemptions cannot linger.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .diagnostics import Diagnostic

__all__ = ["Suppression", "parse_suppressions", "apply_suppressions"]

_COMMENT = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)"
    r"(?:\s+--\s*(?P<justification>.*))?\s*$"
)


@dataclass
class Suppression:
    """One parsed ``repro-lint: disable=`` comment."""

    line: int  # 1-based line the comment sits on
    target: int  # 1-based line the suppression applies to
    codes: tuple[str, ...]
    justification: str
    used: set = field(default_factory=set)  # codes that suppressed something

    def unused_codes(self) -> tuple[str, ...]:
        return tuple(code for code in self.codes if code not in self.used)


def _comment_lines(lines: list[str]) -> list[tuple[int, str]]:
    """1-based ``(line, comment_text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    syntax shown inside docstrings or string literals — like the examples
    at the top of this module — from registering as live suppressions.
    """
    text = "\n".join(lines)
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine only lints files that already parsed; an in-memory
        # fragment that trips the tokenizer simply has no suppressions.
        pass
    return comments


def parse_suppressions(lines: list[str]) -> list[Suppression]:
    """Extract every suppression comment from a file's source lines."""
    suppressions: list[Suppression] = []
    for line_number, comment in _comment_lines(lines):
        match = _COMMENT.match(comment)
        if match is None:
            continue
        codes = tuple(code.strip() for code in match.group("codes").split(","))
        target = line_number
        if lines[line_number - 1].strip().startswith("#"):
            # Standalone comment: applies to the next code line.
            for ahead in range(line_number, len(lines)):
                stripped = lines[ahead].strip()
                if stripped and not stripped.startswith("#"):
                    target = ahead + 1
                    break
        suppressions.append(
            Suppression(
                line=line_number,
                target=target,
                codes=codes,
                justification=(match.group("justification") or "").strip(),
            )
        )
    return suppressions


def apply_suppressions(
    diagnostics: list[Diagnostic], suppressions: list[Suppression]
) -> tuple[list[Diagnostic], int]:
    """Drop suppressed diagnostics; returns ``(kept, n_suppressed)``.

    Marks each suppression code that fired so the caller can report the
    unused ones.
    """
    by_target: dict[int, list[Suppression]] = {}
    for suppression in suppressions:
        by_target.setdefault(suppression.target, []).append(suppression)
    kept: list[Diagnostic] = []
    n_suppressed = 0
    for diagnostic in diagnostics:
        matched = False
        for suppression in by_target.get(diagnostic.line, ()):
            if diagnostic.code in suppression.codes:
                suppression.used.add(diagnostic.code)
                matched = True
        if matched:
            n_suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, n_suppressed
