"""Diagnostic records and their stable text / JSON renderings.

The JSON layout is a public contract (CI and editor integrations parse
it); ``JSON_SCHEMA_VERSION`` is bumped on any incompatible change and the
schema is pinned by ``tests/test_lint_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JSON_SCHEMA_VERSION", "Diagnostic"]

#: Version tag carried by every JSON report; bump on incompatible changes.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule ``code`` anchored at ``path:line:column``.

    The field order doubles as the sort order, so reports are emitted in a
    deterministic ``(path, line, column, code)`` sequence regardless of the
    order rules ran in.
    """

    path: str
    line: int
    column: int
    code: str
    name: str
    message: str

    def format_text(self) -> str:
        """The one-line ``path:line:col: CODE [name] message`` rendering."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} [{self.name}] {self.message}"

    def as_dict(self) -> dict:
        """JSON-safe payload (key set pinned by the schema test)."""
        return {
            "code": self.code,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
