"""``[tool.repro-lint]`` configuration: path scoping and allowlists.

The config lives in a ``[tool.repro-lint]`` table, read from (in order)
an explicit ``--config`` path, ``repro-lint.toml`` or ``pyproject.toml``
discovered upward from the working directory.  Keys::

    [tool.repro-lint]
    paths = ["src/repro"]            # default scan roots
    exclude = ["repro/_vendored/"]   # module-key patterns never scanned
    baseline = "repro-lint-baseline.json"

    [tool.repro-lint.rules.RPR002]
    allow = ["repro/distributed/federated.py"]  # extends the rule's allowlist

    [tool.repro-lint.rules.RPR004]
    include = ["repro/perf/"]        # replaces the rule's include scope

Relative ``paths``/``baseline`` resolve against the config file's
directory, so invocations behave identically from any CWD.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ValidationError

__all__ = ["CONFIG_FILENAMES", "LintConfig", "load_config"]

#: File names probed (in order) in each directory walking upward.
CONFIG_FILENAMES = ("repro-lint.toml", "pyproject.toml")

_TOP_LEVEL_KEYS = {"paths", "exclude", "baseline", "rules"}
_RULE_KEYS = {"include", "allow"}


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    paths: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    rule_includes: dict = field(default_factory=dict)
    rule_allows: dict = field(default_factory=dict)
    root: Path = field(default_factory=Path.cwd)
    source: Path | None = None

    def resolved_paths(self) -> tuple[Path, ...]:
        return tuple(self.root / path for path in self.paths)

    def resolved_baseline(self) -> Path | None:
        return None if self.baseline is None else self.root / self.baseline

    def include_for(self, rule) -> tuple[str, ...]:
        """The include scope for a rule: config override or the rule default."""
        return tuple(self.rule_includes.get(rule.code, rule.default_include))

    def allow_for(self, rule) -> tuple[str, ...]:
        """The allowlist for a rule: the rule default plus config additions."""
        return tuple(rule.default_allow) + tuple(self.rule_allows.get(rule.code, ()))


def _string_tuple(value, *, key: str, source: Path) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise ValidationError(
            f"[tool.repro-lint] {key} in {source} must be a list of strings, got {value!r}"
        )
    return tuple(value)


def _parse(table: dict, *, root: Path, source: Path) -> LintConfig:
    unknown = set(table) - _TOP_LEVEL_KEYS
    if unknown:
        raise ValidationError(
            f"unknown [tool.repro-lint] key(s) {sorted(unknown)} in {source}; "
            f"supported keys are {sorted(_TOP_LEVEL_KEYS)}"
        )
    baseline = table.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise ValidationError(
            f"[tool.repro-lint] baseline in {source} must be a string path"
        )
    rule_includes: dict = {}
    rule_allows: dict = {}
    for code, entry in table.get("rules", {}).items():
        from .rules import RULES

        if code not in RULES:
            raise ValidationError(
                f"[tool.repro-lint.rules] names unknown rule {code!r} in {source}; "
                f"registered rules are {', '.join(sorted(RULES))}"
            )
        if not isinstance(entry, dict):
            raise ValidationError(
                f"[tool.repro-lint.rules.{code}] in {source} must be a table"
            )
        unknown_rule_keys = set(entry) - _RULE_KEYS
        if unknown_rule_keys:
            raise ValidationError(
                f"unknown key(s) {sorted(unknown_rule_keys)} in "
                f"[tool.repro-lint.rules.{code}] in {source}; supported keys are "
                f"{sorted(_RULE_KEYS)}"
            )
        if "include" in entry:
            rule_includes[code] = _string_tuple(
                entry["include"], key=f"rules.{code}.include", source=source
            )
        if "allow" in entry:
            rule_allows[code] = _string_tuple(
                entry["allow"], key=f"rules.{code}.allow", source=source
            )
    return LintConfig(
        paths=_string_tuple(table.get("paths", []), key="paths", source=source),
        exclude=_string_tuple(table.get("exclude", []), key="exclude", source=source),
        baseline=baseline,
        rule_includes=rule_includes,
        rule_allows=rule_allows,
        root=root,
        source=source,
    )


def _read_table(path: Path) -> dict | None:
    try:
        with path.open("rb") as handle:
            payload = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise ValidationError(f"config {path} is not valid TOML: {exc}") from exc
    table = payload.get("tool", {}).get("repro-lint")
    if table is None:
        return None
    if not isinstance(table, dict):
        raise ValidationError(f"[tool.repro-lint] in {path} must be a table")
    return table


def load_config(explicit: str | Path | None = None, start: str | Path | None = None) -> LintConfig:
    """Load the lint config (explicit path, or discovered upward from ``start``).

    Returns an empty config when no file defines ``[tool.repro-lint]`` —
    the CLI then falls back to its own defaults.
    """
    if explicit is not None:
        path = Path(explicit)
        if not path.is_file():
            raise ValidationError(f"lint config {path} does not exist")
        table = _read_table(path)
        if table is None:
            raise ValidationError(f"lint config {path} has no [tool.repro-lint] table")
        return _parse(table, root=path.resolve().parent, source=path)
    directory = Path(start if start is not None else Path.cwd()).resolve()
    for candidate_dir in (directory, *directory.parents):
        for name in CONFIG_FILENAMES:
            candidate = candidate_dir / name
            if candidate.is_file():
                table = _read_table(candidate)
                if table is not None:
                    return _parse(table, root=candidate_dir, source=candidate)
    return LintConfig(root=directory)
