"""CLI for the contract linter (``repro lint`` / ``python -m repro.lint``).

Exit codes (mirroring ``check_bench_regression.py``):

* ``0`` — clean: no non-baselined findings (and, with
  ``--fail-on-unused-suppression``, no stale suppressions).
* ``1`` — findings (or unused suppressions under the flag): the output
  lists every ``path:line:col`` anchor and what to do about it.
* ``2`` — usage/config error: bad path, malformed config or baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from ..exceptions import ReproError
from .baseline import Baseline
from .config import LintConfig, load_config
from .engine import lint_paths
from .rules import RULES

__all__ = ["configure_parser", "run", "main"]

#: Default scan roots when neither the CLI nor the config names any.
DEFAULT_PATHS = ("src/repro",)
#: Default baseline location when neither the CLI nor the config names one.
DEFAULT_BASELINE = "repro-lint-baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments (shared by ``repro lint`` and ``-m repro.lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: config paths or {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="TOML file with a [tool.repro-lint] table (default: discovered "
        "repro-lint.toml / pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="grandfathered-findings file (default: config baseline or "
        f"{DEFAULT_BASELINE} next to the config)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--fail-on-unused-suppression",
        action="store_true",
        help="exit 1 when a repro-lint: disable= comment never fired (CI uses this)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format (default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with the contract it guards, then exit",
    )


def _list_rules() -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        scope = ", ".join(rule.default_include) if rule.default_include else "all files"
        print(f"{code} [{rule.name}] (scope: {scope})")
        print(f"    {rule.contract}")
    return 0


def _resolve_baseline(args: argparse.Namespace, config: LintConfig) -> Path:
    if args.baseline is not None:
        return args.baseline
    configured = config.resolved_baseline()
    if configured is not None:
        return configured
    return config.root / DEFAULT_BASELINE


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        return _list_rules()
    try:
        config = load_config(args.config)
        if args.paths:
            paths = tuple(args.paths)
        elif config.paths:
            paths = config.resolved_paths()
        else:
            paths = tuple(Path(entry) for entry in DEFAULT_PATHS)
        baseline_path = _resolve_baseline(args, config)

        if args.write_baseline:
            report = lint_paths(paths, config=config, baseline=None)
            payload = Baseline.build(
                [(d, report.fingerprints[d]) for d in report.findings]
            )
            Baseline.save(payload, baseline_path)
            print(
                f"baseline written to {baseline_path} "
                f"({len(payload['entries'])} grandfathered finding(s))"
            )
            return 0

        baseline = None
        if not args.no_baseline and baseline_path.is_file():
            baseline = Baseline.load(baseline_path)
        report = lint_paths(paths, config=config, baseline=baseline)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_json_payload(), indent=2, sort_keys=True))
    else:
        print(report.to_text())

    failing_unused = args.fail_on_unused_suppression and report.unused_suppressions
    if report.findings or report.parse_errors or failing_unused:
        if args.format == "text":
            advice = []
            if report.findings:
                advice.append(
                    "fix the findings, add a justified `# repro-lint: disable=CODE -- why` "
                    "suppression, or (for pre-existing debt only) regenerate the baseline "
                    "with --write-baseline"
                )
            if failing_unused:
                advice.append("remove the unused suppression comments listed above")
            print(f"FAIL: {'; '.join(advice)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based contract linter enforcing the repo's determinism, "
        "atomicity and seeding invariants.",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))
