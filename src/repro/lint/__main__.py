"""``python -m repro.lint`` — standalone entry point for the contract linter."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
