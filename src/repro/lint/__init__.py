"""``repro lint`` — the AST-based contract linter.

PRs 4–8 established the repository's core guarantees — byte-identical
releases across chunk sizes, backends, shard splits and append schedules —
but each guarantee was enforced only by runtime tests.  A single unseeded
``default_rng()``, a set-order iteration, a builtin float ``sum()`` or a
non-atomic ``open(path, "w")`` in a *new* module silently re-opens the
class of bugs those PRs closed, and no byte-identity test catches it until
the flake lands.

This package encodes the invariants as static lint rules (stdlib
:mod:`ast`, no new dependencies) so violations fail CI before any test can
flake.  Rules are small visitor classes registered by decorator under
stable ``RPR0xx`` codes; each one documents the contract it guards and the
PR that motivated it.  The engine supports inline suppressions with an
unused-suppression check, a committed baseline for grandfathered findings,
and a TOML config (``[tool.repro-lint]``) for path scoping.

Run it as ``repro lint [paths...]`` or ``python -m repro.lint``.
"""

from __future__ import annotations

from .baseline import Baseline, diagnostic_fingerprint
from .config import LintConfig, load_config
from .diagnostics import JSON_SCHEMA_VERSION, Diagnostic
from .engine import LintReport, lint_paths, lint_source
from .rules import RULES, Rule, register_rule

__all__ = [
    "Baseline",
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "diagnostic_fingerprint",
    "lint_paths",
    "lint_source",
    "load_config",
    "register_rule",
]
