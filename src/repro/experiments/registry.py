"""Name → factory registries that connect specs to the library's components.

A grid spec refers to datasets, transforms and clustering algorithms by
name; these registries resolve the names against the existing layers
(:mod:`repro.data.datasets`, :mod:`repro.core` / :mod:`repro.baselines`,
:mod:`repro.clustering`) so that a JSON file can drive everything the
library implements.  :func:`register_dataset` & friends let downstream code
plug in new components without touching this module.

Registration is per-process: process-pool workers re-resolve names in the
child, so custom components registered at runtime are only visible to the
pool where children inherit the parent's memory (``fork`` start method).
On spawn/forkserver platforms, register inside an imported module, or run
custom components with ``executor="thread"`` / ``workers=1``.

Seeding convention: every factory receives the *trial* seed.  Datasets are
seeded with it directly, so the same ``(dataset, seed)`` cell yields the
identical matrix under every transform — the paper's tables compare
distortion methods on the same data.  Transforms and algorithms fold their
registry name into the seed (:func:`derive_seed`) so that, e.g., additive
noise and swapping do not consume identical random streams.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable

import numpy as np

from ..attacks.registry import available_attacks as _available_attack_names
from ..attacks.registry import build_attack as _build_attack_impl
from ..attacks.registry import register_attack
from ..baselines import (
    AdditiveNoisePerturbation,
    MultiplicativeNoisePerturbation,
    ScalingPerturbation,
    SimpleRotationPerturbation,
    TranslationPerturbation,
    ValueSwappingPerturbation,
)
from ..clustering import DBSCAN, AgglomerativeClustering, KMeans, KMedoids
from ..core import RBT
from ..data.datasets import (
    load_cardiac_sample,
    make_anisotropic_blobs,
    make_blobs,
    make_customer_segments,
    make_patient_cohorts,
    make_rings,
    make_synthetic_arrhythmia,
    make_uniform_noise,
)
from ..exceptions import ExperimentError

__all__ = [
    "available_algorithms",
    "available_attacks",
    "available_datasets",
    "available_transforms",
    "build_algorithm",
    "build_attack",
    "build_dataset",
    "build_transform",
    "derive_seed",
    "register_algorithm",
    "register_attack",
    "register_dataset",
    "register_transform",
]


def _take(params: dict, allowed: tuple[str, ...], *, context: str) -> dict:
    """Copy ``params``, rejecting keys the target constructor would not see.

    The cherry-picking factories below read params with ``.get``; without
    this check a misspelled key would silently fall back to the default
    while still changing the trial's content hash and label.
    """
    unknown = set(params) - set(allowed)
    if unknown:
        raise ExperimentError(
            f"{context}: unknown params {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    return dict(params)


def derive_seed(seed: int, *parts: str) -> int:
    """Fold string ``parts`` into ``seed`` to get an independent sub-seed.

    Stable across processes and Python versions (unlike ``hash``), so cached
    results stay valid and parallel runs reproduce serial ones.
    """
    digest = hashlib.sha256(":".join([str(int(seed)), *parts]).encode()).digest()
    return int.from_bytes(digest[:4], "big")


# --------------------------------------------------------------------------- #
# Datasets
# --------------------------------------------------------------------------- #
def _labelled(factory: Callable) -> Callable:
    def build(params: dict, seed: int):
        matrix, labels = factory(random_state=seed, **params)
        return matrix, np.asarray(labels, dtype=int)

    return build


def _unlabelled_cardiac(params: dict, seed: int):
    if params:
        raise ExperimentError(f"cardiac_sample takes no params, got {sorted(params)}")
    return load_cardiac_sample(), None


def _unlabelled_arrhythmia(params: dict, seed: int):
    return make_synthetic_arrhythmia(random_state=seed, **params), None


_DATASETS: dict[str, Callable] = {
    "cardiac_sample": _unlabelled_cardiac,
    "synthetic_arrhythmia": _unlabelled_arrhythmia,
    "patient_cohorts": _labelled(make_patient_cohorts),
    "customer_segments": _labelled(make_customer_segments),
    "blobs": _labelled(make_blobs),
    "anisotropic_blobs": _labelled(make_anisotropic_blobs),
    "rings": _labelled(make_rings),
    "uniform_noise": _labelled(make_uniform_noise),
}


# --------------------------------------------------------------------------- #
# Transforms (RBT and the baseline perturbations; "none" is the control)
# --------------------------------------------------------------------------- #
def _build_rbt(params: dict, seed: int):
    params = _take(params, ("threshold", "strategy"), context="transform 'rbt'")
    return RBT(
        thresholds=params.get("threshold", 0.25),
        strategy=params.get("strategy", "interleaved"),
        random_state=derive_seed(seed, "transform", "rbt"),
    )


def _baseline(name: str, cls: Callable, **defaults) -> Callable:
    def build(params: dict, seed: int):
        merged = {**defaults, **params}
        return cls(**merged, random_state=derive_seed(seed, "transform", name))

    return build


def _build_none(params: dict, seed: int):
    _take(params, (), context="transform 'none'")
    return None


_TRANSFORMS: dict[str, Callable] = {
    "none": _build_none,
    "rbt": _build_rbt,
    "additive": _baseline("additive", AdditiveNoisePerturbation),
    "multiplicative": _baseline("multiplicative", MultiplicativeNoisePerturbation),
    "swapping": _baseline("swapping", ValueSwappingPerturbation),
    "translation": _baseline("translation", TranslationPerturbation),
    "scaling": _baseline("scaling", ScalingPerturbation),
    "rotation": _baseline("rotation", SimpleRotationPerturbation),
}


# --------------------------------------------------------------------------- #
# Clustering algorithms
# --------------------------------------------------------------------------- #
def _build_kmeans(params: dict, seed: int):
    params = _take(params, ("n_clusters",), context="algorithm 'kmeans'")
    return KMeans(
        n_clusters=params.get("n_clusters", 3),
        random_state=derive_seed(seed, "algorithm", "kmeans"),
    )


def _build_kmedoids(params: dict, seed: int):
    params = _take(params, ("n_clusters", "metric"), context="algorithm 'kmedoids'")
    return KMedoids(
        n_clusters=params.get("n_clusters", 3),
        metric=params.get("metric", "euclidean"),
        random_state=derive_seed(seed, "algorithm", "kmedoids"),
    )


def _build_hierarchical(params: dict, seed: int):
    params = _take(params, ("n_clusters", "linkage", "metric"), context="algorithm 'hierarchical'")
    return AgglomerativeClustering(
        n_clusters=params.get("n_clusters", 3),
        linkage=params.get("linkage", "average"),
        metric=params.get("metric", "euclidean"),
    )


def _build_dbscan(params: dict, seed: int):
    params = _take(params, ("eps", "min_samples", "metric"), context="algorithm 'dbscan'")
    return DBSCAN(
        eps=params.get("eps", 0.5),
        min_samples=params.get("min_samples", 5),
        metric=params.get("metric", "euclidean"),
    )


_ALGORITHMS: dict[str, Callable] = {
    "kmeans": _build_kmeans,
    "kmedoids": _build_kmedoids,
    "hierarchical": _build_hierarchical,
    "dbscan": _build_dbscan,
}


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def _lookup(registry: dict, kind: str, name: str) -> Callable:
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ExperimentError(f"unknown {kind} {name!r}; known: {known}") from None


def build_dataset(name: str, params: dict, seed: int):
    """Materialize dataset ``name`` → ``(DataMatrix, labels-or-None)``."""
    try:
        return _lookup(_DATASETS, "dataset", name)(params, seed)
    except TypeError as exc:
        raise ExperimentError(f"dataset {name!r}: bad params {params}: {exc}") from exc


def build_transform(name: str, params: dict, seed: int):
    """Build transform ``name`` (an RBT / perturbation object, or ``None``)."""
    try:
        return _lookup(_TRANSFORMS, "transform", name)(params, seed)
    except TypeError as exc:
        raise ExperimentError(f"transform {name!r}: bad params {params}: {exc}") from exc


def build_algorithm(name: str, params: dict, seed: int):
    """Build clustering algorithm ``name``."""
    try:
        return _lookup(_ALGORITHMS, "algorithm", name)(params, seed)
    except TypeError as exc:
        raise ExperimentError(f"algorithm {name!r}: bad params {params}: {exc}") from exc


def build_attack(name: str, params: dict, seed: int):
    """Build attack ``name`` for a trial, with the trial-derived attack seed.

    Mirrors the transform/algorithm factories: the registry name is folded
    into the seed so attacks never share random streams with the transform
    that produced the release they target.  The registry itself lives in
    :mod:`repro.attacks.registry`; :func:`repro.attacks.register_attack`
    extends this axis too.
    """
    try:
        return _build_attack_impl(
            name, params, random_state=derive_seed(seed, "attack", name)
        )
    except TypeError as exc:
        raise ExperimentError(f"attack {name!r}: bad params {params}: {exc}") from exc


def available_attacks() -> tuple[str, ...]:
    """Sorted names of the registered attacks (plus the ``none`` placeholder)."""
    return tuple(sorted((*_available_attack_names(), "none")))


def register_dataset(name: str, factory: Callable) -> None:
    """Register ``factory(params, seed) -> (matrix, labels|None)`` under ``name``."""
    _DATASETS[name] = factory


def register_transform(name: str, factory: Callable) -> None:
    """Register ``factory(params, seed) -> transformer|None`` under ``name``."""
    _TRANSFORMS[name] = factory


def register_algorithm(name: str, factory: Callable) -> None:
    """Register ``factory(params, seed) -> ClusteringAlgorithm`` under ``name``."""
    _ALGORITHMS[name] = factory


def available_datasets() -> tuple[str, ...]:
    """Sorted names of the registered datasets."""
    return tuple(sorted(_DATASETS))


def available_transforms() -> tuple[str, ...]:
    """Sorted names of the registered transforms."""
    return tuple(sorted(_TRANSFORMS))


def available_algorithms() -> tuple[str, ...]:
    """Sorted names of the registered clustering algorithms."""
    return tuple(sorted(_ALGORITHMS))
