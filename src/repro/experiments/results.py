"""Aggregation of trial rows into paper-style tables (JSON and Markdown).

:class:`ResultsTable` holds the per-trial rows in deterministic grid order,
aggregates them over seeds, and emits:

* :meth:`ResultsTable.to_json` — the machine-readable record (spec + rows +
  aggregates), canonical and timing-free so that parallel and serial runs
  are byte-identical;
* :meth:`ResultsTable.to_markdown` — the human-readable tables mirroring
  the paper's Section 5 evidence: misclassification error / ARI per
  (dataset, algorithm, transform), and privacy (``Var(X − X')``, distance
  distortion, security-range width) per (dataset, transform).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from statistics import mean
from typing import TYPE_CHECKING

from ..exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .spec import ExperimentSpec

__all__ = ["ResultsTable"]


def _fmt(value, digits: int = 4) -> str:
    """Format a table cell: fixed precision for floats, ``-`` for missing."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _fmt_distortion(value: float) -> str:
    """Distortion cells: scientific notation below 1e-3, fixed point above."""
    return f"{value:.2f}" if value >= 1e-3 else f"{value:.1e}"


def _attack_label(row: dict) -> str:
    attack = row.get("attack")
    return attack["label"] if attack else "none"


def _aggregate_key(row: dict) -> tuple[str, str, str, str]:
    return (row["dataset"], row["transform"], row["algorithm"], _attack_label(row))


def _mean_or_none(values: Sequence) -> float | None:
    values = [value for value in values if value is not None]
    return mean(values) if values else None


@dataclass(frozen=True)
class ResultsTable:
    """Per-trial rows plus seed-aggregated summaries for one grid run."""

    #: The spec's canonical dict (kept verbatim so reports are self-describing).
    spec: dict
    #: One dict per trial, in grid order (see ``TrialSpec`` / ``run_trial``).
    rows: tuple[dict, ...]

    @classmethod
    def from_rows(cls, spec: ExperimentSpec, rows: Sequence[dict]) -> ResultsTable:
        """Build a table from finished rows, validating completeness."""
        missing = [index for index, row in enumerate(rows) if row is None]
        if missing:
            raise ExperimentError(f"trials {missing} produced no result")
        return cls(spec=spec.canonical(), rows=tuple(rows))

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self) -> list[dict]:
        """Mean metrics per (dataset, transform, algorithm) across seeds.

        Row order follows the first appearance in the grid, so it is stable
        for any worker count.
        """
        groups: dict[tuple[str, str, str, str], list[dict]] = {}
        for row in self.rows:
            groups.setdefault(_aggregate_key(row), []).append(row)
        aggregates = []
        for (dataset, transform, algorithm, attack), members in groups.items():
            clustering = [row["clustering"] for row in members]
            security = [row["security_range"] for row in members if row["security_range"]]
            attacks = [row["attack"] for row in members if row.get("attack")]
            attack_aggregate = None
            if attacks:
                attack_aggregate = {
                    "mean_error": _mean_or_none([item["error"] for item in attacks]),
                    "mean_work": mean(item["work"] for item in attacks),
                    "any_succeeded": any(item["succeeded"] for item in attacks),
                }
            aggregates.append(
                {
                    "dataset": dataset,
                    "transform": transform,
                    "algorithm": algorithm,
                    "attack": attack,
                    "attack_metrics": attack_aggregate,
                    "n_seeds": len(members),
                    "misclassification": mean(c["misclassification"] for c in clustering),
                    "adjusted_rand": mean(c["adjusted_rand"] for c in clustering),
                    "all_identical": all(c["identical"] for c in clustering),
                    "truth_adjusted_rand_released": _mean_or_none(
                        [c["truth_released"]["adjusted_rand"] for c in clustering]
                    ),
                    "min_variance_difference": min(
                        row["privacy"]["min_variance_difference"] for row in members
                    ),
                    "mean_variance_difference": mean(
                        row["privacy"]["mean_variance_difference"] for row in members
                    ),
                    "max_distance_distortion": max(
                        row["distance"]["max_distortion"] for row in members
                    ),
                    "distances_preserved": all(row["distance"]["preserved"] for row in members),
                    "mean_security_range_width_degrees": _mean_or_none(
                        [stats["mean_width_degrees"] for stats in security]
                    ),
                }
            )
        return aggregates

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Canonical JSON report: spec, per-trial rows and aggregates."""
        payload = {
            "spec": self.spec,
            "n_trials": len(self.rows),
            "trials": list(self.rows),
            "aggregates": self.aggregate(),
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_markdown(self) -> str:
        """Paper-style Markdown tables, deterministic for any worker count."""
        aggregates = self.aggregate()
        lines = [f"# Experiment results — {self.spec['name']}", ""]
        if self.spec.get("description"):
            lines += [self.spec["description"], ""]
        attack_axis = [
            entry
            for entry in self.spec.get("attacks", [])
            if entry.get("name") != "none"
        ]
        attack_note = f" x {len(attack_axis)} attack(s)" if attack_axis else ""
        lines += [
            f"{len(self.rows)} trials: {len(self.spec['datasets'])} dataset(s) x "
            f"{len(self.spec['transforms'])} transform(s) x "
            f"{len(self.spec['algorithms'])} algorithm(s){attack_note} x "
            f"{len(self.spec['seeds'])} seed(s); normalizer: {self.spec['normalizer']}.",
            "",
        ]

        lines += self._quality_section(aggregates)
        lines += self._privacy_section(aggregates)
        lines += self._attack_section(aggregates)
        return "\n".join(lines)

    def _quality_section(self, aggregates: list[dict]) -> list[str]:
        """Misclassification error and ARI, one table per dataset.

        Clustering metrics do not depend on the attack axis, so when a grid
        carries attacks the duplicate (transform, algorithm) cells collapse
        to their first appearance.
        """
        lines = ["## Clustering quality (original vs. released partitions)", ""]
        datasets = list(dict.fromkeys(row["dataset"] for row in aggregates))
        for dataset in datasets:
            subset = [row for row in aggregates if row["dataset"] == dataset]
            algorithms = list(dict.fromkeys(row["algorithm"] for row in subset))
            lines += [f"### {dataset}", ""]
            header = "| transform | " + " | ".join(
                f"{algorithm} ME / ARI" for algorithm in algorithms
            )
            lines += [header + " |", "|---" * (len(algorithms) + 1) + "|"]
            transforms = list(dict.fromkeys(row["transform"] for row in subset))
            by_cell = {}
            for row in subset:
                by_cell.setdefault((row["transform"], row["algorithm"]), row)
            for transform in transforms:
                cells = []
                for algorithm in algorithms:
                    row = by_cell.get((transform, algorithm))
                    if row is None:
                        cells.append("-")
                    else:
                        cells.append(
                            f"{_fmt(row['misclassification'])} / {_fmt(row['adjusted_rand'])}"
                        )
                lines.append("| " + " | ".join([transform, *cells]) + " |")
            lines.append("")
        return lines

    def _privacy_section(self, aggregates: list[dict]) -> list[str]:
        """Privacy and distance-preservation evidence per (dataset, transform)."""
        lines = [
            "## Privacy and distance preservation",
            "",
            "| dataset | transform | min Var(X−X′) | mean Var(X−X′) | max abs Δd "
            "| preserved | security range (°) |",
            "|---|---|---|---|---|---|---|",
        ]
        seen: set[tuple[str, str]] = set()
        for row in aggregates:
            key = (row["dataset"], row["transform"])
            if key in seen:
                continue
            seen.add(key)
            lines.append(
                "| "
                + " | ".join(
                    [
                        row["dataset"],
                        row["transform"],
                        _fmt(row["min_variance_difference"]),
                        _fmt(row["mean_variance_difference"]),
                        _fmt_distortion(row["max_distance_distortion"]),
                        _fmt(row["distances_preserved"]),
                        _fmt(row["mean_security_range_width_degrees"], digits=1),
                    ]
                )
                + " |"
            )
        lines.append("")
        return lines

    def _attack_section(self, aggregates: list[dict]) -> list[str]:
        """Attack error vs. work factor per (dataset, transform, attack)."""
        rows = [row for row in aggregates if row["attack_metrics"]]
        if not rows:
            return []
        lines = [
            "## Attack resistance (error vs. work factor)",
            "",
            "| dataset | transform | attack | mean RMSE | mean work | breached |",
            "|---|---|---|---|---|---|",
        ]
        seen: set[tuple[str, str, str]] = set()
        for row in rows:
            key = (row["dataset"], row["transform"], row["attack"])
            if key in seen:
                continue
            seen.add(key)
            metrics = row["attack_metrics"]
            lines.append(
                "| "
                + " | ".join(
                    [
                        row["dataset"],
                        row["transform"],
                        row["attack"],
                        _fmt(metrics["mean_error"]),
                        _fmt(float(metrics["mean_work"]), digits=0),
                        _fmt(metrics["any_succeeded"]),
                    ]
                )
                + " |"
            )
        lines.append("")
        return lines
