"""Built-in experiment grids, most importantly the paper's Section 5 grid.

``paper_grid`` reproduces the shape of the paper's evaluation in a single
command: every dataset scenario x RBT plus the prior-work distortion
baselines x the four clustering algorithm families x multiple seeds, scored
with misclassification error, ARI, per-attribute ``Var(X − X')`` and the
security-range statistics.  ``smoke`` is a two-trial grid used by tests and
the CI example-smoke job.
"""

from __future__ import annotations

from ..exceptions import ExperimentError
from .spec import AxisSpec, ExperimentSpec

__all__ = ["BUILTIN_SPECS", "builtin_spec"]


def _paper_grid() -> ExperimentSpec:
    return ExperimentSpec(
        name="paper_grid",
        description=(
            "Section 5-style evaluation grid: RBT vs. the additive / "
            "multiplicative / swapping / rotation baselines on the paper's "
            "motivating scenarios, under every clustering algorithm family."
        ),
        normalizer="zscore",
        datasets=(
            AxisSpec("synthetic_arrhythmia", {"n_patients": 150}),
            AxisSpec("patient_cohorts", {"n_patients": 150, "n_cohorts": 3}),
            AxisSpec("customer_segments", {"n_customers": 160}),
            AxisSpec("blobs", {"n_objects": 150, "n_attributes": 4, "n_clusters": 3}),
        ),
        transforms=(
            AxisSpec("rbt", {"threshold": 0.25}),
            AxisSpec("additive", {"noise_scale": 0.5}),
            AxisSpec("multiplicative", {"noise_scale": 0.3}),
            AxisSpec("swapping", {"swap_fraction": 0.2}),
            AxisSpec("rotation", {"theta_degrees": 45.0}),
        ),
        algorithms=(
            AxisSpec("kmeans", {"n_clusters": 3}),
            AxisSpec("kmedoids", {"n_clusters": 3}),
            AxisSpec("hierarchical", {"n_clusters": 3, "linkage": "average"}),
            AxisSpec("dbscan", {"eps": 1.5, "min_samples": 4}),
        ),
        seeds=(0, 1),
    )


def _security_grid() -> ExperimentSpec:
    return ExperimentSpec(
        name="security_grid",
        description=(
            "Section 5.2-style attack grid: every distortion method audited "
            "under the re-normalization, variance-fingerprint, brute-force "
            "and known-sample adversaries (attack error vs. work factor)."
        ),
        normalizer="zscore",
        datasets=(
            AxisSpec("patient_cohorts", {"n_patients": 120, "n_cohorts": 3}),
            AxisSpec("blobs", {"n_objects": 120, "n_attributes": 4, "n_clusters": 3}),
        ),
        transforms=(
            AxisSpec("rbt", {"threshold": 0.25}),
            AxisSpec("additive", {"noise_scale": 0.5}),
            AxisSpec("rotation", {"theta_degrees": 45.0}),
        ),
        algorithms=(AxisSpec("kmeans", {"n_clusters": 3}),),
        attacks=(
            AxisSpec("renormalization"),
            AxisSpec("variance_fingerprint", {"angle_resolution": 60}),
            AxisSpec("brute_force_angle", {"angle_resolution": 24, "max_pairings": 6}),
            AxisSpec("known_sample", {"n_known": 8}),
        ),
        seeds=(0, 1),
    )


def _smoke() -> ExperimentSpec:
    return ExperimentSpec(
        name="smoke",
        description="Two-trial grid for tests and CI smoke runs.",
        normalizer="zscore",
        datasets=(AxisSpec("blobs", {"n_objects": 40, "n_attributes": 4, "n_clusters": 3}),),
        transforms=(
            AxisSpec("rbt", {"threshold": 0.25}),
            AxisSpec("additive", {"noise_scale": 0.5}),
        ),
        algorithms=(AxisSpec("kmeans", {"n_clusters": 3}),),
        seeds=(0,),
    )


BUILTIN_SPECS = {
    "paper_grid": _paper_grid,
    "security_grid": _security_grid,
    "smoke": _smoke,
}


def builtin_spec(name: str) -> ExperimentSpec:
    """Return a fresh copy of the built-in spec called ``name``."""
    try:
        factory = BUILTIN_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_SPECS))
        raise ExperimentError(f"unknown built-in spec {name!r}; known: {known}") from None
    return factory()
