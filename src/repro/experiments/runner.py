"""Parallel, cached execution of experiment grids.

:class:`ExperimentRunner` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into independent trials and executes them with a ``concurrent.futures``
process or thread pool.  Each trial is keyed by the content hash of its
spec; finished trials are written to an on-disk cache directory as canonical
JSON, so repeating or extending a grid only executes the new cells.

Determinism: a trial's result depends only on its spec (all randomness is
seeded from it), trials never share state, and the runner reassembles
results in grid order — so any worker count, and either executor, produces
byte-identical aggregate output.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core import RBT
from ..data import DataMatrix
from ..exceptions import ExperimentError, ReproError
from ..metrics import adjusted_rand_index, misclassification_error, privacy_report
from ..perf.backends import get_backend
from ..perf.cache import DistanceCache
from ..perf.kernels import max_abs_distance_difference
from ..pipeline import PPCPipeline
from ..preprocessing import MinMaxNormalizer, ZScoreNormalizer
from .registry import build_algorithm, build_attack, build_dataset, build_transform
from .results import ResultsTable
from .spec import AxisSpec, ExperimentSpec, TrialSpec, canonical_json

__all__ = ["ExperimentReport", "ExperimentRunner", "run_experiment", "run_trial"]


# --------------------------------------------------------------------------- #
# Single-trial execution (module-level so process pools can pickle it)
# --------------------------------------------------------------------------- #
class _IdentityStreamFitter:
    """State-free fitter so the identity normalizer also fits the federated API."""

    def update(self, values):
        return self

    def state(self) -> dict:
        return {}

    def merge_state(self, state) -> _IdentityStreamFitter:
        return self


class _IdentityNormalizer:
    """Pass-through stand-in so ``normalizer: none`` fits the pipeline API."""

    def fit(self, matrix):
        return self

    def transform(self, matrix):
        return matrix

    def fit_transform(self, matrix):
        return matrix

    def _stream_fitter(self, n_columns):
        return _IdentityStreamFitter()

    def _finish_stream_fit(self, fitter, *, n_rows):
        return None


def _make_normalizer(name: str):
    if name == "zscore":
        return ZScoreNormalizer()
    if name == "minmax":
        return MinMaxNormalizer()
    return _IdentityNormalizer()


def _security_range_stats(rbt_result) -> dict:
    widths = [record.security_range.total_measure for record in rbt_result.records]
    return {
        "n_pairs": len(rbt_result.pairs),
        "mean_width_degrees": float(np.mean(widths)) if widths else 0.0,
        "min_width_degrees": float(np.min(widths)) if widths else 0.0,
    }


def _run_federated(matrix, transformer: RBT, trial: TrialSpec):
    """Release the trial's dataset through the multi-party pipeline.

    The dataset is split into ``trial.parties`` near-even horizontal shards
    and released via :class:`~repro.distributed.DistributedReleasePipeline`;
    by the federated determinism contract the released values are bitwise
    equal to the single-party trial's.  Returns the normalized and released
    matrices plus privacy, security-range stats and a *deterministic* slice
    of the communication ledger (wall-clock timings are excluded so cached
    rows stay byte-reproducible).
    """
    import tempfile

    from ..data.io import matrix_from_csv, matrix_to_csv
    from ..distributed import DistributedReleasePipeline, split_csv_shards

    if trial.parties > matrix.n_objects:
        raise ExperimentError(
            f"parties={trial.parties} exceeds the dataset's {matrix.n_objects} object(s)"
        )
    normalizer = _make_normalizer(trial.normalizer)
    normalized = normalizer.fit(matrix).transform(matrix)
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        source = scratch / "source.csv"
        matrix_to_csv(matrix, source)
        shard_paths = [scratch / f"shard-{index}.csv" for index in range(trial.parties)]
        split_csv_shards(source, shard_paths)
        released_path = scratch / "released.csv"
        report = DistributedReleasePipeline(
            rbt=transformer, normalizer=_make_normalizer(trial.normalizer)
        ).run(shard_paths, released_path)
        released = matrix_from_csv(released_path)
    ledger = report.ledger.summary()
    federated = {
        "n_parties": report.n_parties,
        "party_rows": list(report.party_rows),
        "communication": {
            key: ledger[key]
            for key in ("n_messages", "n_values", "n_bytes", "rounds", "max_message_values")
        },
    }
    return normalized, released, report.privacy, _security_range_stats(report), federated


def _run_versioned(matrix, transformer: RBT, trial: TrialSpec):
    """Release the trial's dataset as a versioned bundle, one append per version.

    The dataset is split into ``trial.versions`` near-even row slices; the
    first becomes release v1 (freezing the normalizer and the rotation
    plan) and each later slice is appended through
    :meth:`~repro.pipeline.versioned.VersionedReleaseBundle.append`.  By
    the append determinism contract the final released file is
    byte-identical to the frozen-policy from-scratch replay over the whole
    feed; the comparison result is recorded in the trial row, so the grid
    keeps the contract under test.
    """
    import tempfile

    from ..data.io import matrix_from_csv, matrix_to_csv
    from ..pipeline.bundle_format import normalizer_from_payload
    from ..pipeline.versioned import VersionedReleaseBundle

    if trial.versions > matrix.n_objects // 2:
        raise ExperimentError(
            f"versions={trial.versions} needs at least {2 * trial.versions} rows, "
            f"the dataset has {matrix.n_objects}"
        )
    if trial.normalizer == "none":
        raise ExperimentError(
            "versions > 1 freezes the fitted normalizer in the bundle; "
            "normalizer='none' has no state to freeze — use 'zscore' or 'minmax'"
        )
    bounds = np.linspace(0, matrix.n_objects, trial.versions + 1).astype(int)

    def _slice(start: int, stop: int) -> DataMatrix:
        return DataMatrix(
            values=matrix.values[start:stop],
            columns=matrix.columns,
            ids=None if matrix.ids is None else matrix.ids[start:stop],
        )

    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        slice_paths = []
        for index in range(trial.versions):
            path = scratch / f"slice-{index}.csv"
            matrix_to_csv(_slice(bounds[index], bounds[index + 1]), path)
            slice_paths.append(path)
        full_path = scratch / "full.csv"
        matrix_to_csv(matrix, full_path)

        bundle, _ = VersionedReleaseBundle.create(
            slice_paths[0],
            scratch / "bundle",
            rbt=transformer,
            normalizer=_make_normalizer(trial.normalizer),
        )
        for path in slice_paths[1:]:
            bundle.append(path)
        reference_path = scratch / "reference.csv"
        bundle.reference_pipeline().run(slice_paths[0] if trial.versions == 1 else full_path,
                                        reference_path)
        byte_identical = bundle.released_path.read_bytes() == reference_path.read_bytes()

        released = matrix_from_csv(bundle.released_path)
        report = bundle.report()
        normalized = normalizer_from_payload(bundle.manifest["normalizer"]).transform(matrix)
        versioned = {
            "n_versions": bundle.version,
            "version_rows": list(bundle.version_rows()),
            "append_byte_identical": bool(byte_identical),
        }
    if not byte_identical:
        raise ExperimentError(
            f"versioned release violated the append determinism contract for "
            f"versions={trial.versions} (released bytes differ from the "
            "frozen-policy replay)"
        )
    widths = [record.security_range.total_measure for record in report.records]
    security = {
        "n_pairs": len(report.records),
        "mean_width_degrees": float(np.mean(widths)) if widths else 0.0,
        "min_width_degrees": float(np.min(widths)) if widths else 0.0,
    }
    return normalized, released, report.privacy, security, versioned


def run_trial(payload: dict) -> dict:
    """Execute one trial described by its canonical payload; return a row dict.

    The returned dict is JSON-serializable and fully determined by
    ``payload`` — it is exactly what the cache stores.  The optional
    ``_execution`` key carries kernel-backend plumbing (backend name and
    worker count); it is popped before the trial spec is built, and never
    hashed, because serial and parallel kernels return the same bits.
    """
    payload = dict(payload)
    execution = payload.pop("_execution", None)
    backend = None
    if execution is not None:
        backend = get_backend(
            execution.get("backend"), workers=execution.get("kernel_workers")
        )
    trial = TrialSpec(
        dataset=_axis(payload["dataset"]),
        transform=_axis(payload["transform"]),
        algorithm=_axis(payload["algorithm"]),
        seed=int(payload["seed"]),
        normalizer=payload["normalizer"],
        attack=_axis(payload["attack"]) if "attack" in payload else AxisSpec("none"),
        parties=int(payload.get("parties", 1)),
        versions=int(payload.get("versions", 1)),
    )
    if trial.parties > 1 and trial.versions > 1:
        raise ExperimentError(
            f"parties={trial.parties} and versions={trial.versions} cannot be "
            "combined in one trial; vary the axes separately"
        )
    matrix, truth = build_dataset(trial.dataset.name, trial.dataset.params, trial.seed)
    transformer = build_transform(trial.transform.name, trial.transform.params, trial.seed)
    algorithm = build_algorithm(trial.algorithm.name, trial.algorithm.params, trial.seed)
    # One distance cache per trial: when the transform leaves bytes intact
    # (identity/"none"), the algorithm's normalized and released fits share
    # one (dataset, metric) matrix instead of recomputing it.  DBSCAN only
    # ever *reads* the cache, so its chunked memory bound survives the
    # injection.  Trials never share a cache, so the process pool and the
    # byte-determinism guarantees are unaffected.
    cache = DistanceCache(backend=backend)
    if getattr(algorithm, "distance_cache", False) is None:
        algorithm.distance_cache = cache

    security_range = None
    federated = None
    versioned = None
    if isinstance(transformer, RBT) and trial.versions > 1:
        # Versioned releases go through the bundle append path; the output is
        # byte-identical to the frozen-policy replay (checked inside), so the
        # axis keeps the append determinism contract under test.
        normalized, released, privacy, security_range, versioned = _run_versioned(
            matrix, transformer, trial
        )
        max_distortion = max_abs_distance_difference(
            normalized.values, released.values, backend=backend
        )
    elif isinstance(transformer, RBT) and trial.parties > 1:
        # Federated releases go through the multi-party protocol; the output
        # is byte-identical to the single-party release, so clustering and
        # privacy numbers match the parties=1 trial — the axis exists to keep
        # that contract under test and to report communication costs.
        normalized, released, privacy, security_range, federated = _run_federated(
            matrix, transformer, trial
        )
        max_distortion = max_abs_distance_difference(
            normalized.values, released.values, backend=backend
        )
    elif isinstance(transformer, RBT):
        # RBT releases go through the owner pipeline of Figure 1 end to end.
        pipeline = PPCPipeline(
            rbt=transformer,
            normalizer=_make_normalizer(trial.normalizer),
            distance_cache=cache,
            backend=backend,
        )
        bundle = pipeline.run(matrix)
        normalized, released = bundle.normalized, bundle.released
        privacy = bundle.privacy
        max_distortion = bundle.max_distance_distortion
        security_range = _security_range_stats(bundle.rbt_result)
    else:
        if trial.parties > 1:
            raise ExperimentError(
                f"parties={trial.parties} requires the 'rbt' transform, "
                f"got {trial.transform.name!r}"
            )
        if trial.versions > 1:
            raise ExperimentError(
                f"versions={trial.versions} requires the 'rbt' transform, "
                f"got {trial.transform.name!r}"
            )
        normalized = _make_normalizer(trial.normalizer).fit(matrix).transform(matrix)
        released = normalized if transformer is None else transformer.perturb(normalized)
        privacy = privacy_report(normalized, released)
        max_distortion = max_abs_distance_difference(
            normalized.values, released.values, backend=backend
        )

    labels_original = algorithm.fit_predict(normalized)
    labels_released = algorithm.fit_predict(released)

    # Optional attack stage: play the adversary against this trial's release.
    # The attack reads the run's distance cache for its Table 5 diagnostics,
    # so it reuses matrices the clustering stage already computed.
    attack_row = None
    if trial.attack.name != "none":
        attack_params = dict(trial.attack.params)
        if (
            trial.attack.name == "sequential_release"
            and versioned is not None
            and "version_rows" not in attack_params
        ):
            # The versions axis defines the release prefixes the sequential
            # observer saw; hand them to the attack unless the spec pinned
            # its own schedule.  The injected value is derived from the
            # trial spec alone, so cached rows stay deterministic.
            attack_params["version_rows"] = versioned["version_rows"]
        attack = build_attack(trial.attack.name, attack_params, trial.seed)
        if getattr(attack, "distance_cache", False) is None:
            attack.distance_cache = cache
        if backend is not None and getattr(attack, "backend", False) is None:
            attack.backend = backend
        attack_result = attack.run(released, normalized)
        attack_row = {
            "name": trial.attack.name,
            "label": trial.attack.label,
            "work": int(attack_result.work),
            "error": (
                None if np.isnan(attack_result.error) else float(attack_result.error)
            ),
            "succeeded": bool(attack_result.succeeded),
            "worst_attribute_error": (
                None
                if attack_result.per_attribute_errors is None
                else float(np.max(attack_result.per_attribute_errors))
            ),
        }
        if "range_shrink" in attack_result.details:
            attack_row["range_shrink"] = float(attack_result.details["range_shrink"])

    def _truth_metrics(labels):
        if truth is None:
            return {"misclassification": None, "adjusted_rand": None}
        return {
            "misclassification": misclassification_error(truth, labels),
            "adjusted_rand": adjusted_rand_index(truth, labels),
        }

    return {
        "trial": trial.canonical(),
        "hash": trial.trial_hash,
        "dataset": trial.dataset.label,
        "transform": trial.transform.label,
        "algorithm": trial.algorithm.label,
        "seed": trial.seed,
        "n_objects": normalized.n_objects,
        "n_attributes": normalized.n_attributes,
        "privacy": {
            "min_variance_difference": privacy.minimum_variance_difference,
            "mean_variance_difference": privacy.mean_variance_difference,
        },
        "distance": {
            "max_distortion": max_distortion,
            "preserved": bool(max_distortion < 1e-8),
        },
        "security_range": security_range,
        "parties": trial.parties,
        "federated": federated,
        "versions": trial.versions,
        "versioned": versioned,
        "attack": attack_row,
        "clustering": {
            "n_clusters_original": int(np.unique(labels_original[labels_original >= 0]).size),
            "n_clusters_released": int(np.unique(labels_released[labels_released >= 0]).size),
            "misclassification": misclassification_error(labels_original, labels_released),
            "adjusted_rand": adjusted_rand_index(labels_original, labels_released),
            "identical": bool(np.array_equal(labels_original, labels_released)),
            "truth_original": _truth_metrics(labels_original),
            "truth_released": _truth_metrics(labels_released),
        },
    }


def _axis(payload: dict) -> AxisSpec:
    return AxisSpec(payload["name"], dict(payload.get("params", {})))


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentReport:
    """Outcome of one :meth:`ExperimentRunner.run` call."""

    #: The spec that was executed.
    spec: ExperimentSpec
    #: Per-trial rows plus aggregates, in deterministic grid order.
    results: ResultsTable
    #: Trials actually executed this run.
    executed: int
    #: Trials served from the on-disk cache.
    cached: int
    #: Wall-clock seconds for the whole run (excluded from emitted tables).
    elapsed_seconds: float

    @property
    def total(self) -> int:
        """Total number of trials in the grid."""
        return self.executed + self.cached

    @property
    def trials_per_second(self) -> float:
        """Executed-trial throughput of this run."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.executed / self.elapsed_seconds


class ExperimentRunner:
    """Expand a grid, execute its trials in parallel and aggregate results.

    Parameters
    ----------
    workers:
        Pool size; ``1`` (default) runs in-process with no pool at all.
    executor:
        ``"process"`` (default; sidesteps the GIL for CPU-bound trials) or
        ``"thread"`` (cheaper startup, fine for small grids and tests).
    cache_dir:
        Directory for per-trial result JSON, keyed by trial content hash.
        ``None`` disables caching.
    backend, kernel_workers:
        Kernel-backend plumbing threaded into every trial (backend *name*,
        e.g. ``"process-pool"``, plus its worker count) — this parallelizes
        the kernels *inside* a trial, orthogonal to the trial-level pool
        above.  Names, not instances, so the knob survives the process
        executor; it is never part of a trial's hash because serial and
        parallel kernels return the same bits.  Avoid combining a parallel
        kernel backend with ``executor="process"`` — the trial workers
        would each spawn their own kernel pool.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        executor: str = "process",
        cache_dir=None,
        backend: str | None = None,
        kernel_workers: int | None = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if executor not in ("process", "thread"):
            raise ExperimentError(f"executor must be 'process' or 'thread', got {executor!r}")
        if backend is not None and not isinstance(backend, str):
            raise ExperimentError(
                "ExperimentRunner takes a backend *name* (it must cross process "
                f"boundaries), got {type(backend).__name__}"
            )
        self.workers = int(workers)
        self.executor = executor
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.backend = backend
        self.kernel_workers = None if kernel_workers is None else int(kernel_workers)

    # ------------------------------------------------------------------ #
    def run(self, spec: ExperimentSpec, *, progress=None) -> ExperimentReport:
        """Run every trial of ``spec`` (cache-aware) and return the report.

        ``progress`` is an optional callable ``(done, total) -> None``
        invoked after every finished trial.
        """
        trials = spec.expand()
        started = time.perf_counter()
        rows: list[dict | None] = [None] * len(trials)

        pending: list[tuple[int, TrialSpec]] = []
        cached = 0
        for index, trial in enumerate(trials):
            row = self._cache_load(trial)
            if row is not None:
                rows[index] = row
                cached += 1
            else:
                pending.append((index, trial))

        done = cached
        if progress is not None and done:
            progress(done, len(trials))
        for index, row in self._execute(pending):
            rows[index] = row
            self._cache_store(trials[index], row)
            done += 1
            if progress is not None:
                progress(done, len(trials))

        elapsed = time.perf_counter() - started
        return ExperimentReport(
            spec=spec,
            results=ResultsTable.from_rows(spec, rows),
            executed=len(pending),
            cached=cached,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Execution backends
    # ------------------------------------------------------------------ #
    def _payload(self, trial: TrialSpec) -> dict:
        """The trial's canonical payload plus the (unhashed) execution plumbing."""
        payload = trial.canonical()
        if self.backend is not None or self.kernel_workers is not None:
            payload["_execution"] = {
                "backend": self.backend,
                "kernel_workers": self.kernel_workers,
            }
        return payload

    def _execute(self, pending):
        """Yield ``(index, row)`` for every pending trial as it completes."""
        if not pending:
            return
        if self.workers == 1:
            for index, trial in pending:
                yield index, run_trial(self._payload(trial))
            return

        pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        max_workers = min(self.workers, len(pending))
        with pool_cls(max_workers=max_workers) as pool:
            futures = {
                pool.submit(run_trial, self._payload(trial)): index for index, trial in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    yield futures[future], future.result()

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, trial: TrialSpec) -> Path:
        return self.cache_dir / f"{trial.trial_hash}.json"

    def _cache_load(self, trial: TrialSpec) -> dict | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(trial)
        try:
            row = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        # A cached row must match the trial it claims to answer.
        if not isinstance(row, dict) or row.get("hash") != trial.trial_hash:
            return None
        return row

    def _cache_store(self, trial: TrialSpec, row: dict) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(trial)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        temporary.write_text(canonical_json(row), encoding="utf-8")
        os.replace(temporary, path)

    def clear_cache(self, spec: ExperimentSpec) -> int:
        """Delete the cached results of every trial in ``spec``; return count."""
        if self.cache_dir is None:
            return 0
        removed = 0
        for trial in spec.expand():
            path = self._cache_path(trial)
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed


def run_experiment(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    executor: str = "process",
    cache_dir=None,
    progress=None,
    backend: str | None = None,
    kernel_workers: int | None = None,
) -> ExperimentReport:
    """Convenience one-call wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(
        workers=workers,
        executor=executor,
        cache_dir=cache_dir,
        backend=backend,
        kernel_workers=kernel_workers,
    )
    try:
        return runner.run(spec, progress=progress)
    except ReproError:
        raise
    except Exception as exc:  # surface worker failures with the library's error type
        raise ExperimentError(f"experiment {spec.name!r} failed: {exc}") from exc
