"""Declarative experiment grids (datasets × transforms × algorithms × seeds).

The paper's evidence is a grid: every combination of dataset, distortion
method (RBT vs. the additive / multiplicative / swapping / geometric
baselines), clustering algorithm and random seed, scored with the paper's
privacy and quality metrics.  :class:`ExperimentSpec` describes such a grid
declaratively (and round-trips through JSON, so a grid is a reviewable
artifact rather than a script); :meth:`ExperimentSpec.expand` turns it into
the flat list of independent :class:`TrialSpec` objects the runner executes.

Every :class:`TrialSpec` has a *content hash* — a SHA-256 digest of its
canonical JSON form — which keys the on-disk result cache: re-running a grid
after editing one axis only executes the trials whose hashes are new.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ExperimentError

__all__ = [
    "AxisSpec",
    "ExperimentSpec",
    "TrialSpec",
    "canonical_json",
    "content_hash",
]

#: Bump to invalidate every cached trial result when the trial payload or
#: the semantics of its execution change.  2: NN-chain hierarchical default
#: and the k-medoids empty-cluster re-seed fix changed trial execution.
#: 3: the exact bucket-accumulator streaming sketches changed moment-derived
#: numbers at the ulp level, and the grid grew the ``parties`` axis.
CACHE_SCHEMA_VERSION = 3

_NORMALIZERS = ("zscore", "minmax", "none")


def canonical_json(payload) -> str:
    """Serialize ``payload`` to the canonical JSON form used for hashing.

    Keys are sorted and separators are fixed so that logically equal payloads
    always produce byte-identical text (and therefore equal hashes).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _as_params(value, *, context: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ExperimentError(
            f"{context}: params must be a JSON object, got {type(value).__name__}"
        )
    params = dict(value)
    for key in params:
        if not isinstance(key, str):
            raise ExperimentError(f"{context}: param names must be strings, got {key!r}")
    return params


@dataclass(frozen=True)
class AxisSpec:
    """One point on a grid axis: a registry name plus keyword parameters.

    ``AxisSpec("rbt", {"threshold": 0.3})`` names the RBT transform with a
    pairwise-security threshold of 0.3; ``AxisSpec("kmeans",
    {"n_clusters": 3})`` names a 3-cluster k-means.  The same shape is used
    for datasets, transforms and clustering algorithms.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ExperimentError(f"axis entries need a non-empty string name, got {self.name!r}")
        object.__setattr__(self, "params", _as_params(self.params, context=self.name))

    @classmethod
    def parse(cls, value, *, axis: str) -> AxisSpec:
        """Build an :class:`AxisSpec` from JSON (a string or ``{name, params}``)."""
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "params"}
            if unknown:
                raise ExperimentError(f"{axis} entry has unknown keys {sorted(unknown)}")
            if "name" not in value:
                raise ExperimentError(f"{axis} entry is missing its 'name'")
            return cls(value["name"], _as_params(value.get("params"), context=str(value["name"])))
        raise ExperimentError(f"{axis} entries must be strings or objects, got {value!r}")

    def canonical(self) -> dict:
        """JSON-ready ``{name, params}`` dict (params key-sorted via the encoder)."""
        return {"name": self.name, "params": dict(self.params)}

    @property
    def label(self) -> str:
        """Short human-readable form used in tables, e.g. ``rbt(threshold=0.3)``."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={self.params[key]}" for key in sorted(self.params))
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class TrialSpec:
    """One independent cell of the grid: fully determines one trial run."""

    dataset: AxisSpec
    transform: AxisSpec
    algorithm: AxisSpec
    seed: int
    normalizer: str = "zscore"
    attack: AxisSpec = AxisSpec("none")
    parties: int = 1
    versions: int = 1

    def canonical(self) -> dict:
        """The canonical payload that is hashed for caching.

        Includes the cache schema version so that changing the trial
        execution semantics invalidates stale cached results.  The attack
        and parties axes joined the payload later than the others; their
        defaults (``none`` / one party) are omitted so every single-party,
        attack-free trial keeps the hash (and the cached result) it had
        before the axes existed.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "dataset": self.dataset.canonical(),
            "transform": self.transform.canonical(),
            "algorithm": self.algorithm.canonical(),
            "seed": self.seed,
            "normalizer": self.normalizer,
        }
        if self.attack.name != "none":
            payload["attack"] = self.attack.canonical()
        if self.parties != 1:
            payload["parties"] = self.parties
        if self.versions != 1:
            payload["versions"] = self.versions
        return payload

    @property
    def trial_hash(self) -> str:
        """Content hash of the trial (the cache key)."""
        return content_hash(self.canonical())


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of trials.

    Attributes
    ----------
    name:
        Grid name; used for output filenames.
    datasets, transforms, algorithms:
        The grid axes, each a sequence of :class:`AxisSpec`.
    attacks:
        Optional fourth axis: attack simulations (by registry name) run
        against every released dataset of the grid.  Defaults to the single
        pseudo-attack ``none``, which skips the attack stage and keeps the
        trial hashes of attack-free grids unchanged.
    parties:
        Optional fifth axis: party counts for horizontally-federated RBT
        releases (``repro.distributed``).  ``1`` runs the ordinary
        single-owner pipeline and is hash-transparent, so existing grids
        keep their cached trials; ``p > 1`` splits the dataset into ``p``
        near-even shards and releases through
        :class:`~repro.distributed.DistributedReleasePipeline` — which is
        byte-identical to the single-party release, making this axis a
        standing cross-check of the multi-party determinism contract.
    versions:
        Optional sixth axis: release-version counts for *versioned* RBT
        releases (:mod:`repro.pipeline.versioned`).  ``1`` runs the
        ordinary one-shot pipeline and is hash-transparent; ``v > 1``
        releases the first of ``v`` near-even row slices as a bundle and
        appends the rest one release at a time — the incremental releases
        are byte-identical to the frozen-policy from-scratch replay, making
        this axis a standing cross-check of the append determinism
        contract (and the natural home of the ``sequential_release``
        attack).
    seeds:
        Random seeds; the full cross product is run once per seed.
    normalizer:
        Normalization applied before every transform (``zscore``, ``minmax``
        or ``none``); z-score is the paper's choice.
    description:
        Free-text note carried through to the emitted reports.
    """

    name: str
    datasets: tuple[AxisSpec, ...]
    transforms: tuple[AxisSpec, ...]
    algorithms: tuple[AxisSpec, ...]
    seeds: tuple[int, ...] = (0,)
    normalizer: str = "zscore"
    description: str = ""
    attacks: tuple[AxisSpec, ...] = (AxisSpec("none"),)
    parties: tuple[int, ...] = (1,)
    versions: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ExperimentError("an experiment spec needs a non-empty name")
        # The name becomes part of report filenames; keep it a plain identifier
        # so it cannot escape the chosen output directory.
        if any(sep in self.name for sep in ("/", "\\", "..")) or self.name.startswith("."):
            raise ExperimentError(
                f"experiment names must not contain path separators, got {self.name!r}"
            )
        for axis, entries in (
            ("datasets", self.datasets),
            ("transforms", self.transforms),
            ("algorithms", self.algorithms),
            ("attacks", self.attacks),
        ):
            entries = tuple(entries)
            if not entries:
                raise ExperimentError(f"experiment {self.name!r}: {axis} must not be empty")
            cells = [canonical_json(entry.canonical()) for entry in entries]
            if len(set(cells)) != len(cells):
                raise ExperimentError(
                    f"experiment {self.name!r}: {axis} contains duplicate entries"
                )
            object.__setattr__(self, axis, entries)
        for entry in self.attacks:
            # "none" is a hash-transparent placeholder (see TrialSpec.canonical);
            # parameters on it would silently vanish from the cache key.
            if entry.name == "none" and entry.params:
                raise ExperimentError(
                    f"experiment {self.name!r}: the 'none' attack takes no params"
                )
        seeds = tuple(int(seed) for seed in self.seeds)
        if not seeds:
            raise ExperimentError(f"experiment {self.name!r}: seeds must not be empty")
        if len(set(seeds)) != len(seeds):
            raise ExperimentError(f"experiment {self.name!r}: seeds must be unique, got {seeds}")
        object.__setattr__(self, "seeds", seeds)
        parties = tuple(int(count) for count in self.parties)
        if not parties:
            raise ExperimentError(f"experiment {self.name!r}: parties must not be empty")
        if any(count < 1 for count in parties):
            raise ExperimentError(
                f"experiment {self.name!r}: parties must be >= 1, got {parties}"
            )
        if len(set(parties)) != len(parties):
            raise ExperimentError(
                f"experiment {self.name!r}: parties must be unique, got {parties}"
            )
        object.__setattr__(self, "parties", parties)
        versions = tuple(int(count) for count in self.versions)
        if not versions:
            raise ExperimentError(f"experiment {self.name!r}: versions must not be empty")
        if any(count < 1 for count in versions):
            raise ExperimentError(
                f"experiment {self.name!r}: versions must be >= 1, got {versions}"
            )
        if len(set(versions)) != len(versions):
            raise ExperimentError(
                f"experiment {self.name!r}: versions must be unique, got {versions}"
            )
        object.__setattr__(self, "versions", versions)
        if self.normalizer not in _NORMALIZERS:
            raise ExperimentError(
                f"experiment {self.name!r}: normalizer must be one of {_NORMALIZERS}, "
                f"got {self.normalizer!r}"
            )

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    @property
    def n_trials(self) -> int:
        """Size of the expanded grid."""
        return (
            len(self.datasets)
            * len(self.transforms)
            * len(self.algorithms)
            * len(self.attacks)
            * len(self.parties)
            * len(self.versions)
            * len(self.seeds)
        )

    def expand(self) -> tuple[TrialSpec, ...]:
        """Expand the grid into its independent trials, in deterministic order.

        The order is dataset-major, then transform, algorithm, attack,
        parties, versions and seed; the runner preserves it regardless of
        worker count, which is what makes parallel runs byte-identical to
        serial ones.
        """
        return tuple(
            TrialSpec(
                dataset=dataset,
                transform=transform,
                algorithm=algorithm,
                seed=seed,
                normalizer=self.normalizer,
                attack=attack,
                parties=parties,
                versions=versions,
            )
            for dataset in self.datasets
            for transform in self.transforms
            for algorithm in self.algorithms
            for attack in self.attacks
            for parties in self.parties
            for versions in self.versions
            for seed in self.seeds
        )

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def canonical(self) -> dict:
        """JSON-ready form of the whole spec (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "normalizer": self.normalizer,
            "datasets": [axis.canonical() for axis in self.datasets],
            "transforms": [axis.canonical() for axis in self.transforms],
            "algorithms": [axis.canonical() for axis in self.algorithms],
            "attacks": [axis.canonical() for axis in self.attacks],
            "parties": list(self.parties),
            "versions": list(self.versions),
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> ExperimentSpec:
        """Build a spec from parsed JSON, validating the schema."""
        if not isinstance(payload, Mapping):
            raise ExperimentError(f"an experiment spec must be a JSON object, got {payload!r}")
        known = {
            "name",
            "description",
            "normalizer",
            "datasets",
            "transforms",
            "algorithms",
            "attacks",
            "parties",
            "versions",
            "seeds",
        }
        unknown = set(payload) - known
        if unknown:
            raise ExperimentError(f"experiment spec has unknown keys {sorted(unknown)}")
        missing = {"name", "datasets", "transforms", "algorithms"} - set(payload)
        if missing:
            raise ExperimentError(f"experiment spec is missing keys {sorted(missing)}")

        def axis(key: str) -> tuple[AxisSpec, ...]:
            entries = payload[key]
            if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
                raise ExperimentError(f"{key} must be a JSON array")
            return tuple(AxisSpec.parse(entry, axis=key) for entry in entries)

        seeds = payload.get("seeds", (0,))
        if not isinstance(seeds, Sequence) or isinstance(seeds, (str, bytes)):
            raise ExperimentError(f"seeds must be a JSON array of integers, got {seeds!r}")
        if not all(isinstance(seed, int) and not isinstance(seed, bool) for seed in seeds):
            raise ExperimentError(f"seeds must be a JSON array of integers, got {list(seeds)!r}")
        parties = payload.get("parties", (1,))
        if not isinstance(parties, Sequence) or isinstance(parties, (str, bytes)):
            raise ExperimentError(f"parties must be a JSON array of integers, got {parties!r}")
        if not all(isinstance(count, int) and not isinstance(count, bool) for count in parties):
            raise ExperimentError(
                f"parties must be a JSON array of integers, got {list(parties)!r}"
            )
        versions = payload.get("versions", (1,))
        if not isinstance(versions, Sequence) or isinstance(versions, (str, bytes)):
            raise ExperimentError(f"versions must be a JSON array of integers, got {versions!r}")
        if not all(isinstance(count, int) and not isinstance(count, bool) for count in versions):
            raise ExperimentError(
                f"versions must be a JSON array of integers, got {list(versions)!r}"
            )

        return cls(
            name=payload["name"],
            description=str(payload.get("description", "")),
            normalizer=str(payload.get("normalizer", "zscore")),
            datasets=axis("datasets"),
            transforms=axis("transforms"),
            algorithms=axis("algorithms"),
            attacks=axis("attacks") if "attacks" in payload else (AxisSpec("none"),),
            parties=tuple(parties),
            versions=tuple(versions),
            seeds=tuple(seeds),
        )

    @classmethod
    def from_json(cls, text: str) -> ExperimentSpec:
        """Parse a spec from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"invalid experiment spec JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> ExperimentSpec:
        """Load a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path) -> None:
        """Write the spec as indented JSON (the reviewable artifact form)."""
        Path(path).write_text(json.dumps(self.canonical(), indent=2) + "\n", encoding="utf-8")
