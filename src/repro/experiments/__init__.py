"""Experiment orchestration: declarative grids, parallel cached execution.

The paper's evidence is a grid — datasets x distortion methods x clustering
algorithms x metrics.  This package turns every layer of the library into a
reusable workload behind one declarative surface:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec` (a JSON-round-trip
  grid description) and its expansion into content-hashed
  :class:`TrialSpec` cells;
* :mod:`repro.experiments.registry` — name → factory registries resolving
  spec entries against :mod:`repro.data.datasets`, :mod:`repro.core` /
  :mod:`repro.baselines` and :mod:`repro.clustering`;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, a
  ``concurrent.futures`` pool with an on-disk, content-addressed result
  cache (re-runs are incremental; parallel runs are byte-identical to
  serial ones);
* :mod:`repro.experiments.results` — :class:`ResultsTable` aggregation and
  paper-style JSON / Markdown emission;
* :mod:`repro.experiments.builtin` — ready-made grids, notably
  ``paper_grid`` (the Section 5 tables in one command).

Quickstart
----------
>>> from repro.experiments import builtin_spec, run_experiment
>>> report = run_experiment(builtin_spec("smoke"))
>>> report.total
2
"""

from .builtin import BUILTIN_SPECS, builtin_spec
from .registry import (
    available_algorithms,
    available_attacks,
    available_datasets,
    available_transforms,
    register_algorithm,
    register_attack,
    register_dataset,
    register_transform,
)
from .results import ResultsTable
from .runner import ExperimentReport, ExperimentRunner, run_experiment, run_trial
from .spec import AxisSpec, ExperimentSpec, TrialSpec, content_hash

__all__ = [
    "AxisSpec",
    "BUILTIN_SPECS",
    "ExperimentReport",
    "ExperimentRunner",
    "ExperimentSpec",
    "ResultsTable",
    "TrialSpec",
    "available_algorithms",
    "available_attacks",
    "available_datasets",
    "available_transforms",
    "builtin_spec",
    "content_hash",
    "register_algorithm",
    "register_attack",
    "register_dataset",
    "register_transform",
    "run_experiment",
    "run_trial",
]
