"""Metrics: distances and dissimilarity matrices, clustering quality, privacy.

* :mod:`repro.metrics.distance` — the distance functions of Section 3.3
  (Euclidean, Manhattan) plus Minkowski and Chebyshev, pairwise-distance and
  dissimilarity-matrix computation, and metric-axiom checks.
* :mod:`repro.metrics.quality` — clustering agreement and quality measures
  (misclassification error with optimal label matching, Rand / Adjusted Rand
  index, F-measure, purity, silhouette).
* :mod:`repro.metrics.privacy` — the variance-based security measures of
  Sections 4.2 and 5.2 (Var(X−X′), scale-invariant security, pairwise
  threshold checks, privacy reports).
"""

from .distance import (
    DISTANCE_FUNCTIONS,
    chebyshev_distance,
    check_metric_axioms,
    condensed_dissimilarity,
    dissimilarity_matrix,
    euclidean_distance,
    manhattan_distance,
    minkowski_distance,
    pairwise_distances,
)
from .quality import (
    adjusted_rand_index,
    clusters_identical,
    contingency_matrix,
    davies_bouldin_index,
    f_measure,
    matched_accuracy,
    misclassification_error,
    normalized_mutual_information,
    purity,
    rand_index,
    silhouette_score,
)
from .privacy import (
    AttributePrivacy,
    PrivacyReport,
    pairwise_security,
    perturbation_variance,
    privacy_report,
    satisfies_threshold,
    scale_invariant_security,
)

__all__ = [
    "euclidean_distance",
    "manhattan_distance",
    "minkowski_distance",
    "chebyshev_distance",
    "pairwise_distances",
    "dissimilarity_matrix",
    "condensed_dissimilarity",
    "check_metric_axioms",
    "DISTANCE_FUNCTIONS",
    "contingency_matrix",
    "misclassification_error",
    "matched_accuracy",
    "rand_index",
    "adjusted_rand_index",
    "f_measure",
    "purity",
    "silhouette_score",
    "davies_bouldin_index",
    "normalized_mutual_information",
    "clusters_identical",
    "perturbation_variance",
    "scale_invariant_security",
    "pairwise_security",
    "satisfies_threshold",
    "privacy_report",
    "PrivacyReport",
    "AttributePrivacy",
]
