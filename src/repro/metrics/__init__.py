"""Metrics: distances and dissimilarity matrices, clustering quality, privacy.

* :mod:`repro.metrics.distance` — the distance functions of Section 3.3
  (Euclidean, Manhattan) plus Minkowski and Chebyshev, pairwise-distance and
  dissimilarity-matrix computation, and metric-axiom checks.
* :mod:`repro.metrics.quality` — clustering agreement and quality measures
  (misclassification error with optimal label matching, Rand / Adjusted Rand
  index, F-measure, purity, silhouette).
* :mod:`repro.metrics.privacy` — the variance-based security measures of
  Sections 4.2 and 5.2 (Var(X−X′), scale-invariant security, pairwise
  threshold checks, privacy reports).
"""

from .distance import (
    euclidean_distance,
    manhattan_distance,
    minkowski_distance,
    chebyshev_distance,
    pairwise_distances,
    dissimilarity_matrix,
    condensed_dissimilarity,
    check_metric_axioms,
    DISTANCE_FUNCTIONS,
)
from .quality import (
    contingency_matrix,
    misclassification_error,
    matched_accuracy,
    rand_index,
    adjusted_rand_index,
    f_measure,
    purity,
    silhouette_score,
    davies_bouldin_index,
    normalized_mutual_information,
    clusters_identical,
)
from .privacy import (
    perturbation_variance,
    scale_invariant_security,
    pairwise_security,
    satisfies_threshold,
    privacy_report,
    PrivacyReport,
    AttributePrivacy,
)

__all__ = [
    "euclidean_distance",
    "manhattan_distance",
    "minkowski_distance",
    "chebyshev_distance",
    "pairwise_distances",
    "dissimilarity_matrix",
    "condensed_dissimilarity",
    "check_metric_axioms",
    "DISTANCE_FUNCTIONS",
    "contingency_matrix",
    "misclassification_error",
    "matched_accuracy",
    "rand_index",
    "adjusted_rand_index",
    "f_measure",
    "purity",
    "silhouette_score",
    "davies_bouldin_index",
    "normalized_mutual_information",
    "clusters_identical",
    "perturbation_variance",
    "scale_invariant_security",
    "pairwise_security",
    "satisfies_threshold",
    "privacy_report",
    "PrivacyReport",
    "AttributePrivacy",
]
