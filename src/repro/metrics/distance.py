"""Distance measures and dissimilarity matrices (Section 3.3).

The paper's accuracy argument rests entirely on the dissimilarity matrix
(Equation 5): two datasets whose dissimilarity matrices are identical produce
identical clusters under any distance-based algorithm.  This module provides

* the Euclidean (Equation 6) and Manhattan (Equation 7) distances the paper
  defines, plus Minkowski and Chebyshev generalizations,
* vectorized pairwise-distance / dissimilarity-matrix computation,
* the condensed (lower-triangle) representation the paper prints in
  Tables 4–6, and
* :func:`check_metric_axioms`, which verifies the four metric properties the
  paper lists (non-negativity, identity, symmetry, triangle inequality) on a
  concrete dataset — used by the property-based tests.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .._validation import as_float_vector, check_positive
from ..exceptions import ValidationError
from ..perf.kernels import pairwise_distances_blocked

__all__ = [
    "euclidean_distance",
    "manhattan_distance",
    "minkowski_distance",
    "chebyshev_distance",
    "pairwise_distances",
    "dissimilarity_matrix",
    "condensed_dissimilarity",
    "check_metric_axioms",
    "DISTANCE_FUNCTIONS",
]


def euclidean_distance(first, second) -> float:
    """Euclidean distance between two objects (Equation 6)."""
    first, second = _pair(first, second)
    return float(np.sqrt(np.sum((first - second) ** 2)))


def manhattan_distance(first, second) -> float:
    """Manhattan / city-block distance between two objects (Equation 7)."""
    first, second = _pair(first, second)
    return float(np.sum(np.abs(first - second)))


def minkowski_distance(first, second, p: float = 2.0) -> float:
    """Minkowski distance of order ``p`` (p=1 Manhattan, p=2 Euclidean)."""
    p = check_positive(p, name="p")
    first, second = _pair(first, second)
    return float(np.sum(np.abs(first - second) ** p) ** (1.0 / p))


def chebyshev_distance(first, second) -> float:
    """Chebyshev (maximum-coordinate) distance between two objects."""
    first, second = _pair(first, second)
    return float(np.max(np.abs(first - second)))


#: Name → distance function registry used by clustering algorithms and the CLI
#: of the examples.  ``euclidean`` and ``manhattan`` are the paper's metrics.
DISTANCE_FUNCTIONS: Mapping[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
}


def _pair(first, second) -> tuple[np.ndarray, np.ndarray]:
    first = as_float_vector(first, name="first")
    second = as_float_vector(second, name="second")
    if first.shape != second.shape:
        raise ValidationError(
            f"objects must have the same dimensionality, got {first.shape} and {second.shape}"
        )
    return first, second


def pairwise_distances(
    data,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
    backend=None,
) -> np.ndarray:
    """Return the full ``(m, m)`` matrix of pairwise distances between rows of ``data``.

    The computation is chunked (see :mod:`repro.perf.kernels`): the
    non-Euclidean metrics never materialize the ``(m, m, n)`` difference
    tensor, only row blocks of it bounded by ``memory_budget_bytes``.

    Parameters
    ----------
    data:
        ``(m, n)`` matrix-like (or :class:`~repro.data.DataMatrix`).
    metric:
        One of ``euclidean``, ``manhattan``, ``chebyshev`` or ``minkowski``.
    p:
        Order for the Minkowski metric (ignored otherwise).
    memory_budget_bytes:
        Cap on the size of any temporary (default 64 MiB).
    backend:
        Execution backend spec for the row blocks (see
        :mod:`repro.perf.backends`); serial and process-pool matrices are
        bitwise identical.
    """
    return pairwise_distances_blocked(
        data, metric=metric, p=p, memory_budget_bytes=memory_budget_bytes, backend=backend
    )


def dissimilarity_matrix(
    data,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
) -> np.ndarray:
    """Return the dissimilarity matrix of Equation (5) as a full symmetric array.

    ``d(i, j)`` is the distance between objects ``i`` and ``j``; the diagonal
    is zero.  The paper prints only the lower triangle (Tables 4–6); use
    :func:`condensed_dissimilarity` for that representation.
    """
    return pairwise_distances(data, metric=metric, p=p, memory_budget_bytes=memory_budget_bytes)


def condensed_dissimilarity(
    data,
    *,
    metric: str = "euclidean",
    decimals: int | None = None,
    memory_budget_bytes: int | None = None,
) -> list[list[float]]:
    """Return the strictly-lower-triangle rows of the dissimilarity matrix.

    The result mirrors the layout of the paper's Tables 4–6: row ``i``
    contains ``d(i, 0) .. d(i, i-1)`` (row 0 is empty).  When ``decimals`` is
    given the entries are rounded, matching the 4-decimal figures the paper
    prints.
    """
    full = dissimilarity_matrix(data, metric=metric, memory_budget_bytes=memory_budget_bytes)
    m = full.shape[0]
    row_index, col_index = np.tril_indices(m, k=-1)
    values = full[row_index, col_index]
    # tril_indices is row-major, so splitting at the cumulative row lengths
    # (row i holds i entries) recovers the paper's Tables 4–6 layout.
    boundaries = np.arange(m).cumsum()[:-1]
    rows = [chunk.tolist() for chunk in np.split(values, boundaries)]
    if decimals is not None:
        # Python round(), not np.round: its decimal-aware rounding of the
        # scaled value differs on entries like 2.675 and the tables must
        # print the same digits the seed printed.
        rows = [[round(value, decimals) for value in row] for row in rows]
    return rows


def check_metric_axioms(
    data,
    *,
    metric: str = "euclidean",
    atol: float = 1e-9,
) -> dict[str, bool]:
    """Verify the four metric axioms of Section 3.3 on the rows of ``data``.

    Returns a dictionary with one boolean per axiom:
    ``non_negative``, ``identity``, ``symmetric``, ``triangle_inequality``.
    """
    distances = pairwise_distances(data, metric=metric)
    m = distances.shape[0]
    non_negative = bool(np.all(distances >= -atol))
    identity = bool(np.allclose(np.diag(distances), 0.0, atol=atol))
    symmetric = bool(np.allclose(distances, distances.T, atol=atol))
    # Triangle inequality: d(i, j) <= d(i, k) + d(k, j) for all i, j, k.
    triangle = True
    for k in range(m):
        via_k = distances[:, k][:, None] + distances[k, :][None, :]
        if np.any(distances > via_k + atol):
            triangle = False
            break
    return {
        "non_negative": non_negative,
        "identity": identity,
        "symmetric": symmetric,
        "triangle_inequality": triangle,
    }
