"""Distance measures and dissimilarity matrices (Section 3.3).

The paper's accuracy argument rests entirely on the dissimilarity matrix
(Equation 5): two datasets whose dissimilarity matrices are identical produce
identical clusters under any distance-based algorithm.  This module provides

* the Euclidean (Equation 6) and Manhattan (Equation 7) distances the paper
  defines, plus Minkowski and Chebyshev generalizations,
* vectorized pairwise-distance / dissimilarity-matrix computation,
* the condensed (lower-triangle) representation the paper prints in
  Tables 4–6, and
* :func:`check_metric_axioms`, which verifies the four metric properties the
  paper lists (non-negativity, identity, symmetry, triangle inequality) on a
  concrete dataset — used by the property-based tests.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from .._validation import as_float_matrix, as_float_vector, check_positive
from ..exceptions import ValidationError

__all__ = [
    "euclidean_distance",
    "manhattan_distance",
    "minkowski_distance",
    "chebyshev_distance",
    "pairwise_distances",
    "dissimilarity_matrix",
    "condensed_dissimilarity",
    "check_metric_axioms",
    "DISTANCE_FUNCTIONS",
]


def euclidean_distance(first, second) -> float:
    """Euclidean distance between two objects (Equation 6)."""
    first, second = _pair(first, second)
    return float(np.sqrt(np.sum((first - second) ** 2)))


def manhattan_distance(first, second) -> float:
    """Manhattan / city-block distance between two objects (Equation 7)."""
    first, second = _pair(first, second)
    return float(np.sum(np.abs(first - second)))


def minkowski_distance(first, second, p: float = 2.0) -> float:
    """Minkowski distance of order ``p`` (p=1 Manhattan, p=2 Euclidean)."""
    p = check_positive(p, name="p")
    first, second = _pair(first, second)
    return float(np.sum(np.abs(first - second) ** p) ** (1.0 / p))


def chebyshev_distance(first, second) -> float:
    """Chebyshev (maximum-coordinate) distance between two objects."""
    first, second = _pair(first, second)
    return float(np.max(np.abs(first - second)))


#: Name → distance function registry used by clustering algorithms and the CLI
#: of the examples.  ``euclidean`` and ``manhattan`` are the paper's metrics.
DISTANCE_FUNCTIONS: Mapping[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
}


def _pair(first, second) -> tuple[np.ndarray, np.ndarray]:
    first = as_float_vector(first, name="first")
    second = as_float_vector(second, name="second")
    if first.shape != second.shape:
        raise ValidationError(
            f"objects must have the same dimensionality, got {first.shape} and {second.shape}"
        )
    return first, second


def pairwise_distances(data, *, metric: str = "euclidean", p: float = 2.0) -> np.ndarray:
    """Return the full ``(m, m)`` matrix of pairwise distances between rows of ``data``.

    Parameters
    ----------
    data:
        ``(m, n)`` matrix-like (or :class:`~repro.data.DataMatrix`).
    metric:
        One of ``euclidean``, ``manhattan``, ``chebyshev`` or ``minkowski``.
    p:
        Order for the Minkowski metric (ignored otherwise).
    """
    matrix = as_float_matrix(data, name="data")
    metric = metric.lower()
    if metric == "euclidean":
        return _euclidean_pairwise(matrix)
    if metric == "manhattan":
        diff = np.abs(matrix[:, None, :] - matrix[None, :, :])
        return diff.sum(axis=2)
    if metric == "chebyshev":
        diff = np.abs(matrix[:, None, :] - matrix[None, :, :])
        return diff.max(axis=2)
    if metric == "minkowski":
        p = check_positive(p, name="p")
        diff = np.abs(matrix[:, None, :] - matrix[None, :, :])
        return (diff**p).sum(axis=2) ** (1.0 / p)
    raise ValidationError(
        f"unknown metric {metric!r}; expected one of euclidean, manhattan, chebyshev, minkowski"
    )


def _euclidean_pairwise(matrix: np.ndarray) -> np.ndarray:
    """Numerically safe vectorized Euclidean pairwise distances."""
    squared_norms = np.sum(matrix**2, axis=1)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, 0.0)
    return distances


def dissimilarity_matrix(data, *, metric: str = "euclidean", p: float = 2.0) -> np.ndarray:
    """Return the dissimilarity matrix of Equation (5) as a full symmetric array.

    ``d(i, j)`` is the distance between objects ``i`` and ``j``; the diagonal
    is zero.  The paper prints only the lower triangle (Tables 4–6); use
    :func:`condensed_dissimilarity` for that representation.
    """
    return pairwise_distances(data, metric=metric, p=p)


def condensed_dissimilarity(data, *, metric: str = "euclidean", decimals: int | None = None) -> list[list[float]]:
    """Return the strictly-lower-triangle rows of the dissimilarity matrix.

    The result mirrors the layout of the paper's Tables 4–6: row ``i``
    contains ``d(i, 0) .. d(i, i-1)`` (row 0 is empty).  When ``decimals`` is
    given the entries are rounded, matching the 4-decimal figures the paper
    prints.
    """
    full = dissimilarity_matrix(data, metric=metric)
    rows: list[list[float]] = []
    for i in range(full.shape[0]):
        row = [float(full[i, j]) for j in range(i)]
        if decimals is not None:
            row = [round(value, decimals) for value in row]
        rows.append(row)
    return rows


def check_metric_axioms(
    data,
    *,
    metric: str = "euclidean",
    atol: float = 1e-9,
) -> dict[str, bool]:
    """Verify the four metric axioms of Section 3.3 on the rows of ``data``.

    Returns a dictionary with one boolean per axiom:
    ``non_negative``, ``identity``, ``symmetric``, ``triangle_inequality``.
    """
    distances = pairwise_distances(data, metric=metric)
    m = distances.shape[0]
    non_negative = bool(np.all(distances >= -atol))
    identity = bool(np.allclose(np.diag(distances), 0.0, atol=atol))
    symmetric = bool(np.allclose(distances, distances.T, atol=atol))
    # Triangle inequality: d(i, j) <= d(i, k) + d(k, j) for all i, j, k.
    triangle = True
    for k in range(m):
        via_k = distances[:, k][:, None] + distances[k, :][None, :]
        if np.any(distances > via_k + atol):
            triangle = False
            break
    return {
        "non_negative": non_negative,
        "identity": identity,
        "symmetric": symmetric,
        "triangle_inequality": triangle,
    }
