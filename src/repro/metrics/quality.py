"""Clustering agreement and quality measures.

Corollary 1 claims that the clusters mined from the original and the
RBT-transformed data are *exactly the same*; the prior-work baselines the
paper criticizes instead cause *misclassification* — points moving between
clusters.  This module quantifies both notions:

* :func:`misclassification_error` / :func:`matched_accuracy` — fraction of
  objects assigned to a different cluster, after optimally matching cluster
  labels with the Hungarian algorithm (labels are arbitrary, so a raw
  element-wise comparison would over-count).
* :func:`rand_index`, :func:`adjusted_rand_index`, :func:`f_measure`,
  :func:`purity` — standard external agreement indices.
* :func:`silhouette_score` — internal quality, used to show that the
  transformed data supports the same structure.
* :func:`clusters_identical` — the strict predicate behind Corollary 1.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from .._validation import as_label_vector
from ..exceptions import ValidationError
from .distance import pairwise_distances

__all__ = [
    "contingency_matrix",
    "misclassification_error",
    "matched_accuracy",
    "rand_index",
    "adjusted_rand_index",
    "f_measure",
    "purity",
    "silhouette_score",
    "davies_bouldin_index",
    "normalized_mutual_information",
    "clusters_identical",
]


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Return the ``(n_true_clusters, n_pred_clusters)`` co-occurrence matrix."""
    labels_true = as_label_vector(labels_true, name="labels_true")
    labels_pred = as_label_vector(labels_pred, name="labels_pred", n_expected=labels_true.size)
    true_classes, true_indices = np.unique(labels_true, return_inverse=True)
    pred_classes, pred_indices = np.unique(labels_pred, return_inverse=True)
    matrix = np.zeros((true_classes.size, pred_classes.size), dtype=np.int64)
    np.add.at(matrix, (true_indices, pred_indices), 1)
    return matrix


def matched_accuracy(labels_true, labels_pred) -> float:
    """Fraction of objects on the optimal one-to-one cluster-label matching.

    Cluster labels are arbitrary identifiers, so the two labelings are first
    aligned with the Hungarian algorithm (maximum-weight matching on the
    contingency matrix); the returned accuracy is the fraction of objects
    that agree under that alignment.
    """
    matrix = contingency_matrix(labels_true, labels_pred)
    n_objects = int(matrix.sum())
    row_indices, col_indices = linear_sum_assignment(-matrix)
    matched = int(matrix[row_indices, col_indices].sum())
    return matched / n_objects


def misclassification_error(labels_true, labels_pred) -> float:
    """Fraction of objects that change cluster (1 − :func:`matched_accuracy`).

    This is the notion of *misclassification* the paper uses when arguing
    that additive-noise distortion "moves data points from one cluster to
    another" while RBT does not.
    """
    return 1.0 - matched_accuracy(labels_true, labels_pred)


def rand_index(labels_true, labels_pred) -> float:
    """Rand index: fraction of object pairs on which the two labelings agree."""
    matrix = contingency_matrix(labels_true, labels_pred)
    n_objects = int(matrix.sum())
    if n_objects < 2:
        raise ValidationError("rand_index requires at least two objects")
    sum_squares = float((matrix.astype(float) ** 2).sum())
    row_sums = matrix.sum(axis=1).astype(float)
    col_sums = matrix.sum(axis=0).astype(float)
    total_pairs = n_objects * (n_objects - 1) / 2.0
    same_same = (sum_squares - n_objects) / 2.0
    same_true = float((row_sums * (row_sums - 1)).sum()) / 2.0
    same_pred = float((col_sums * (col_sums - 1)).sum()) / 2.0
    disagreements = (same_true - same_same) + (same_pred - same_same)
    return (total_pairs - disagreements) / total_pairs


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index (chance-corrected pair-counting agreement)."""
    matrix = contingency_matrix(labels_true, labels_pred).astype(float)
    n_objects = matrix.sum()
    if n_objects < 2:
        raise ValidationError("adjusted_rand_index requires at least two objects")
    sum_comb_cells = (matrix * (matrix - 1) / 2.0).sum()
    row_sums = matrix.sum(axis=1)
    col_sums = matrix.sum(axis=0)
    sum_comb_rows = (row_sums * (row_sums - 1) / 2.0).sum()
    sum_comb_cols = (col_sums * (col_sums - 1) / 2.0).sum()
    total_pairs = n_objects * (n_objects - 1) / 2.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    maximum = (sum_comb_rows + sum_comb_cols) / 2.0
    if np.isclose(maximum, expected):
        # Both labelings are single-cluster (or otherwise degenerate): agreement is perfect
        # if the labelings are identical partitions, which the formula cannot distinguish.
        return 1.0
    return float((sum_comb_cells - expected) / (maximum - expected))


def f_measure(labels_true, labels_pred, *, beta: float = 1.0) -> float:
    """Pairwise F-measure between two labelings.

    Precision / recall are computed over object pairs: a true positive is a
    pair placed together by both labelings.
    """
    if beta <= 0:
        raise ValidationError(f"beta must be positive, got {beta}")
    matrix = contingency_matrix(labels_true, labels_pred).astype(float)
    pairs_together_both = (matrix * (matrix - 1) / 2.0).sum()
    row_sums = matrix.sum(axis=1)
    col_sums = matrix.sum(axis=0)
    pairs_together_true = (row_sums * (row_sums - 1) / 2.0).sum()
    pairs_together_pred = (col_sums * (col_sums - 1) / 2.0).sum()
    if pairs_together_pred == 0 or pairs_together_true == 0:
        return 1.0 if pairs_together_pred == pairs_together_true else 0.0
    precision = pairs_together_both / pairs_together_pred
    recall = pairs_together_both / pairs_together_true
    if precision + recall == 0:
        return 0.0
    beta_sq = beta * beta
    return float((1 + beta_sq) * precision * recall / (beta_sq * precision + recall))


def purity(labels_true, labels_pred) -> float:
    """Purity: each predicted cluster is credited with its dominant true class."""
    matrix = contingency_matrix(labels_true, labels_pred)
    return float(matrix.max(axis=0).sum() / matrix.sum())


def silhouette_score(data, labels, *, metric: str = "euclidean") -> float:
    """Mean silhouette coefficient of a labeling over ``data``.

    For each object, ``a`` is its mean distance to the other members of its
    cluster and ``b`` the smallest mean distance to another cluster; the
    silhouette is ``(b - a) / max(a, b)``.  Objects in singleton clusters get
    a silhouette of 0, following the usual convention.
    """
    labels = as_label_vector(labels, name="labels")
    distances = pairwise_distances(data, metric=metric)
    if distances.shape[0] != labels.size:
        raise ValidationError(
            f"labels must have one entry per object ({distances.shape[0]}), got {labels.size}"
        )
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValidationError("silhouette_score requires at least two clusters")
    scores = np.zeros(labels.size)
    for index in range(labels.size):
        own_mask = labels == labels[index]
        own_size = int(own_mask.sum())
        if own_size == 1:
            scores[index] = 0.0
            continue
        a = distances[index, own_mask].sum() / (own_size - 1)
        b = np.inf
        for cluster in unique:
            if cluster == labels[index]:
                continue
            other_mask = labels == cluster
            b = min(b, float(distances[index, other_mask].mean()))
        denominator = max(a, b)
        scores[index] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())


def davies_bouldin_index(data, labels) -> float:
    """Davies–Bouldin index: lower values indicate better-separated clusters.

    For each cluster the within-cluster scatter is its mean distance to the
    centroid; the index averages, over clusters, the worst ratio of summed
    scatters to centroid separation.  Like the silhouette it is an *internal*
    measure: RBT leaves it unchanged because it depends only on Euclidean
    geometry.
    """
    from .._validation import as_float_matrix

    labels = as_label_vector(labels, name="labels")
    matrix = as_float_matrix(data, name="data")
    if matrix.shape[0] != labels.size:
        raise ValidationError(
            f"labels must have one entry per object ({matrix.shape[0]}), got {labels.size}"
        )
    clusters = np.unique(labels[labels >= 0])
    if clusters.size < 2:
        raise ValidationError("davies_bouldin_index requires at least two clusters")
    centroids = np.vstack([matrix[labels == cluster].mean(axis=0) for cluster in clusters])
    scatters = np.array(
        [
            float(np.mean(np.linalg.norm(matrix[labels == cluster] - centroids[index], axis=1)))
            for index, cluster in enumerate(clusters)
        ]
    )
    separations = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
    index_sum = 0.0
    for i in range(clusters.size):
        ratios = [
            (scatters[i] + scatters[j]) / separations[i, j]
            for j in range(clusters.size)
            if j != i and separations[i, j] > 0
        ]
        index_sum += max(ratios) if ratios else 0.0
    return float(index_sum / clusters.size)


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """Normalized mutual information (arithmetic normalization) between two labelings.

    Returns 1.0 for identical partitions (up to label renaming) and values
    near 0 for independent labelings.
    """
    matrix = contingency_matrix(labels_true, labels_pred).astype(float)
    n_objects = matrix.sum()
    joint = matrix / n_objects
    marginal_true = joint.sum(axis=1)
    marginal_pred = joint.sum(axis=0)
    nonzero = joint > 0
    outer = np.outer(marginal_true, marginal_pred)
    mutual_information = float(np.sum(joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])))
    positive_true = marginal_true[marginal_true > 0]
    positive_pred = marginal_pred[marginal_pred > 0]
    entropy_true = float(-np.sum(positive_true * np.log(positive_true)))
    entropy_pred = float(-np.sum(positive_pred * np.log(positive_pred)))
    if entropy_true == 0.0 and entropy_pred == 0.0:
        # Both labelings are single-cluster: trivially identical partitions.
        return 1.0
    normalizer = (entropy_true + entropy_pred) / 2.0
    if normalizer == 0.0:
        return 0.0
    return float(mutual_information / normalizer)


def clusters_identical(labels_a, labels_b) -> bool:
    """Whether two labelings induce exactly the same partition (Corollary 1).

    Labels themselves may differ (cluster 0 in one run may be cluster 2 in
    another); the partitions are identical when the misclassification error
    under optimal matching is zero.
    """
    return misclassification_error(labels_a, labels_b) == 0.0
