"""Privacy / security measures (Sections 4.2 and 5.2).

The paper measures the security of a perturbation method "as the variance
between the actual and the perturbed values":

* ``Var(X − Y)`` for an original attribute ``X`` and its distorted version
  ``Y`` (:func:`perturbation_variance`), using the sample variance by default
  (the estimator that reproduces the paper's printed numbers; Equation 8 as
  written is the population form, available via ``ddof=0``);
* the scale-invariant form ``Sec = Var(X − Y) / Var(X)``
  (:func:`scale_invariant_security`);
* the *pairwise-security threshold* ``PST(ρ1, ρ2)`` of Definition 2, which
  requires both attributes of a rotated pair to clear their respective
  variance thresholds (:func:`satisfies_threshold`, :func:`pairwise_security`).

:func:`privacy_report` rolls these up into a per-attribute
:class:`PrivacyReport` for the pipeline and the benchmarks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import as_float_vector
from ..data import DataMatrix
from ..exceptions import ThresholdError, ValidationError

__all__ = [
    "perturbation_variance",
    "scale_invariant_security",
    "pairwise_security",
    "satisfies_threshold",
    "privacy_report",
    "AttributePrivacy",
    "PrivacyReport",
]


def perturbation_variance(original, perturbed, *, ddof: int = 1) -> float:
    """``Var(X − Y)`` between an original and a perturbed attribute (Eq. 8).

    The paper's Equation (8) states the population variance, but its worked
    example reproduces with the sample estimator, so ``ddof=1`` is the
    default; pass ``ddof=0`` for the population form.
    """
    original = as_float_vector(original, name="original")
    perturbed = as_float_vector(perturbed, name="perturbed")
    if original.shape != perturbed.shape:
        raise ValidationError(
            f"original and perturbed must have the same length, got {original.size} and {perturbed.size}"
        )
    return float(np.var(original - perturbed, ddof=ddof))


def scale_invariant_security(original, perturbed, *, ddof: int = 1) -> float:
    """``Sec = Var(X − Y) / Var(X)`` — the scale-invariant security of Section 4.2."""
    original = as_float_vector(original, name="original")
    base_variance = float(np.var(original, ddof=ddof))
    if np.isclose(base_variance, 0.0):
        raise ValidationError("scale-invariant security is undefined for a constant attribute")
    return perturbation_variance(original, perturbed, ddof=ddof) / base_variance


def pairwise_security(
    original_pair: tuple[np.ndarray, np.ndarray] | Sequence,
    perturbed_pair: tuple[np.ndarray, np.ndarray] | Sequence,
    *,
    ddof: int = 1,
) -> tuple[float, float]:
    """Return ``(Var(A_i − A_i'), Var(A_j − A_j'))`` for a rotated attribute pair."""
    if len(original_pair) != 2 or len(perturbed_pair) != 2:
        raise ValidationError("pairwise_security expects exactly two attributes per argument")
    return (
        perturbation_variance(original_pair[0], perturbed_pair[0], ddof=ddof),
        perturbation_variance(original_pair[1], perturbed_pair[1], ddof=ddof),
    )


def satisfies_threshold(
    original_pair,
    perturbed_pair,
    threshold: tuple[float, float],
    *,
    ddof: int = 1,
) -> bool:
    """Whether a rotated pair meets its pairwise-security threshold PST(ρ1, ρ2)."""
    rho1, rho2 = _validate_threshold(threshold)
    var1, var2 = pairwise_security(original_pair, perturbed_pair, ddof=ddof)
    return var1 >= rho1 and var2 >= rho2


def _validate_threshold(threshold: tuple[float, float]) -> tuple[float, float]:
    if len(threshold) != 2:
        raise ThresholdError(
            f"a pairwise-security threshold needs exactly two values, got {threshold}"
        )
    rho1, rho2 = float(threshold[0]), float(threshold[1])
    if rho1 <= 0 or rho2 <= 0:
        raise ThresholdError(
            f"threshold values must be strictly positive (ρ1, ρ2 > 0), got {threshold}"
        )
    return rho1, rho2


@dataclass(frozen=True)
class AttributePrivacy:
    """Privacy measurements for a single attribute after perturbation."""

    #: Attribute name.
    name: str
    #: ``Var(X − X')`` — the paper's primary security measure.
    variance_difference: float
    #: ``Var(X − X') / Var(X)`` — scale-invariant security.
    scale_invariant: float
    #: Variance of the original (normalized) attribute.
    original_variance: float
    #: Variance of the released attribute.
    released_variance: float


@dataclass(frozen=True)
class PrivacyReport:
    """Per-attribute privacy measurements plus aggregate summaries."""

    attributes: tuple[AttributePrivacy, ...]

    @property
    def minimum_variance_difference(self) -> float:
        """The weakest per-attribute ``Var(X − X')`` — the binding security level."""
        return min(item.variance_difference for item in self.attributes)

    @property
    def mean_variance_difference(self) -> float:
        """Average ``Var(X − X')`` across attributes."""
        return float(np.mean([item.variance_difference for item in self.attributes]))

    @property
    def mean_scale_invariant(self) -> float:
        """Average scale-invariant security across attributes."""
        return float(np.mean([item.scale_invariant for item in self.attributes]))

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Return the report as a nested plain dictionary (JSON-friendly)."""
        return {
            item.name: {
                "variance_difference": item.variance_difference,
                "scale_invariant": item.scale_invariant,
                "original_variance": item.original_variance,
                "released_variance": item.released_variance,
            }
            for item in self.attributes
        }

    def satisfies(self, thresholds: Mapping[str, float]) -> bool:
        """Whether every named attribute clears its variance threshold."""
        by_name = {item.name: item for item in self.attributes}
        for name, threshold in thresholds.items():
            if name not in by_name:
                raise ValidationError(f"unknown attribute {name!r} in thresholds")
            if by_name[name].variance_difference < float(threshold):
                return False
        return True


def privacy_report(original: DataMatrix, released: DataMatrix, *, ddof: int = 1) -> PrivacyReport:
    """Build a :class:`PrivacyReport` comparing an original matrix and its release.

    Both matrices must have the same columns (order-insensitive) and the same
    number of objects.
    """
    if set(original.columns) != set(released.columns):
        raise ValidationError(
            "original and released matrices must have the same columns, "
            f"got {original.columns} and {released.columns}"
        )
    if original.n_objects != released.n_objects:
        raise ValidationError(
            f"original has {original.n_objects} object(s) but released has {released.n_objects}"
        )
    measurements = []
    for name in original.columns:
        original_column = original.column(name)
        released_column = released.column(name)
        original_variance = float(np.var(original_column, ddof=ddof))
        measurements.append(
            AttributePrivacy(
                name=name,
                variance_difference=perturbation_variance(
                    original_column, released_column, ddof=ddof
                ),
                scale_invariant=(
                    perturbation_variance(original_column, released_column, ddof=ddof)
                    / original_variance
                    if not np.isclose(original_variance, 0.0)
                    else float("nan")
                ),
                original_variance=original_variance,
                released_variance=float(np.var(released_column, ddof=ddof)),
            )
        )
    return PrivacyReport(tuple(measurements))
