"""Vectorized CSV codec and pipelined chunk I/O for the streamed matrix paths.

PRs 1–8 vectorized every compute hot path, which left the streamed release
dominated by :mod:`repro.data.io`'s scalar loops: ``csv.reader`` plus a
per-cell ``float(...)`` on decode and a per-cell ``repr(...)`` row loop on
encode.  This module supplies the fast path behind the ``codec="fast"``
seam of :func:`repro.data.io.iter_matrix_csv` and
:class:`repro.data.io.MatrixCsvWriter`:

* **Block decode** — the file is read as raw byte blocks cut at line
  boundaries, lines are split in bulk, and whole blocks are converted with
  numpy's correctly-rounded string→float64 tokenizer (:func:`numpy.loadtxt`
  over the payload lines).  Any block the fast lane cannot prove it parses
  identically — quoted fields, bare-CR line endings, ragged rows, tokens the
  numpy tokenizer rejects (``float`` accepts ``"1_5"``, numpy does not) —
  is re-parsed through the seed ``csv.reader`` + ``float`` lane, so error
  semantics and every parsed bit match the python codec exactly.
* **Block encode** — batch shortest-round-trip formatting via ``%r`` row
  templates over column lists, byte-identical to the ``csv.writer`` +
  ``repr`` seed writer (``\\r\\n`` terminators included).  Blocks whose ids
  need CSV quoting (or are not strings) fall back to ``csv.writer``.
* **Pipelined chunk I/O** — a bounded prefetch iterator
  (:func:`prefetch_chunks`) and a double-buffered background writer sink
  (:class:`PipelinedTextSink`) let decode, compute and encode overlap across
  chunks.  Both preserve order structurally, so the bitwise chunk-invariance
  and serial≡parallel contracts are untouched.
* **Decoded-chunk spill cache** — :class:`DecodedChunkCache` spills the
  decoded float blocks (and ids) of the first pass to a binary scratch file;
  the multi-pass release pipeline replays later passes from it instead of
  re-parsing CSV text.  Replay returns the identical doubles, so every
  downstream statistic and released byte is unchanged.

The python codec remains the cross-check oracle: for every input, the fast
lane either produces bitwise-identical chunks (and byte-identical encoded
files) or routes through the oracle's own code path.
"""

from __future__ import annotations

import csv
import io
import os
import pickle
import queue
import re
import shutil
import tempfile
import threading
from collections.abc import Iterable, Iterator, Sequence
from io import StringIO
from pathlib import Path

import numpy as np

from ..exceptions import SerializationError, ValidationError

__all__ = [
    "DEFAULT_CODEC",
    "DecodedChunkCache",
    "PipelinedTextSink",
    "decode_matrix_csv",
    "encode_matrix_block",
    "prefetch_chunks",
    "resolve_codec",
]

#: Codec used when none is requested explicitly.
DEFAULT_CODEC = "fast"

#: Recognized codec names: ``"fast"`` (this module) and ``"python"`` (the
#: seed ``csv.reader``/``csv.writer`` lane in :mod:`repro.data.io`).
_CODECS = ("fast", "python")

#: Byte-block ceiling for the fast reader.  Purely a throughput knob: blocks
#: are re-cut at line boundaries and regrouped into ``chunk_rows`` chunks,
#: so the value never affects parsed results.
_BLOCK_BYTES = 1 << 22

#: Byte-block floor — below this the per-block Python overhead dominates.
_MIN_BLOCK_BYTES = 1 << 15


def _block_bytes(chunk_rows: int) -> int:
    """Read-block size scaled to the consumer's chunk size.

    The streamed pipelines derive ``chunk_rows`` from a memory budget, so the
    reader's transient buffers (raw block, decoded text, line list) must stay
    proportional to one chunk rather than a fixed multi-MiB block — a small
    budget keeps its promise (even with two decoders zipped, as in the
    audit's released-vs-original scan), a large one still gets large blocks.
    """
    return min(_BLOCK_BYTES, max(_MIN_BLOCK_BYTES, chunk_rows * 32))


#: Characters that force ``csv.writer`` to quote a field (QUOTE_MINIMAL with
#: the default dialect: delimiter, quotechar, or any lineterminator char).
_NEEDS_QUOTING = re.compile(r'[",\r\n]')


def resolve_codec(spec: str | None = None) -> str:
    """Normalize a codec spec: ``None`` means :data:`DEFAULT_CODEC`."""
    if spec is None:
        return DEFAULT_CODEC
    name = str(spec).strip().lower()
    if name not in _CODECS:
        raise ValidationError(
            f"unknown CSV codec {spec!r}; expected one of {', '.join(_CODECS)}"
        )
    return name


# --------------------------------------------------------------------------- #
# Fast block decode
# --------------------------------------------------------------------------- #
class _ChunkAssembler:
    """Regroup parsed row blocks into exactly ``chunk_rows``-sized chunks.

    Fast-parsed arrays and python-fallback rows interleave freely; emitted
    chunks never share mutable storage with each other (consumers are
    allowed to transform chunk values in place).
    """

    def __init__(self, chunk_rows: int, n_columns: int, has_ids: bool) -> None:
        self._chunk_rows = chunk_rows
        self._n_columns = n_columns
        self._has_ids = has_ids
        self._parts: list[np.ndarray] = []
        self._ids: list = []
        self._python_rows: list[list[float]] = []
        self._buffered = 0
        self.start_row = 0

    def add_array(self, values: np.ndarray, ids: list | None) -> None:
        self._flush_python_rows()
        self._parts.append(values)
        if self._has_ids:
            self._ids.extend(ids)  # type: ignore[arg-type]
        self._buffered += values.shape[0]

    def add_python_row(self, row_id, payload: list[float]) -> None:
        self._python_rows.append(payload)
        if self._has_ids:
            self._ids.append(row_id)
        self._buffered += 1

    def _flush_python_rows(self) -> None:
        if self._python_rows:
            block = np.asarray(self._python_rows, dtype=float).reshape(
                len(self._python_rows), self._n_columns
            )
            self._parts.append(block)
            self._python_rows = []

    def _take(self, n_rows: int) -> tuple[np.ndarray, tuple | None]:
        self._flush_python_rows()
        taken: list[np.ndarray] = []
        got = 0
        while got < n_rows:
            part = self._parts[0]
            need = n_rows - got
            if part.shape[0] <= need:
                taken.append(part)
                self._parts.pop(0)
                got += part.shape[0]
            else:
                # Copy the emitted head so the chunk owns its rows; the
                # retained tail view shares storage with nothing emitted.
                taken.append(part[:need].copy())
                self._parts[0] = part[need:]
                got = n_rows
        values = taken[0] if len(taken) == 1 else np.concatenate(taken, axis=0)
        ids: tuple | None = None
        if self._has_ids:
            ids = tuple(self._ids[:n_rows])
            del self._ids[:n_rows]
        self._buffered -= n_rows
        return values, ids

    def ready(self) -> bool:
        return self._buffered >= self._chunk_rows

    def emit_ready(self, columns: tuple[str, ...]) -> Iterator:
        from ..data.io import MatrixCsvChunk

        while self._buffered >= self._chunk_rows:
            values, ids = self._take(self._chunk_rows)
            chunk = MatrixCsvChunk(
                values=values, ids=ids, columns=columns, start_row=self.start_row
            )
            self.start_row += values.shape[0]
            yield chunk

    def emit_final(self, columns: tuple[str, ...]) -> Iterator:
        from ..data.io import MatrixCsvChunk

        if self._buffered:
            values, ids = self._take(self._buffered)
            chunk = MatrixCsvChunk(
                values=values, ids=ids, columns=columns, start_row=self.start_row
            )
            self.start_row += values.shape[0]
            yield chunk


class _HeaderState:
    """Header metadata shared by the fast lane and its python fallbacks."""

    def __init__(self, path: Path, id_column: str | None) -> None:
        self.path = path
        self.id_column = id_column
        self.header: list[str] | None = None
        self.has_ids = False
        self.columns: tuple[str, ...] = ()

    def accept(self, header: list[str]) -> None:
        from ..data.io import _check_unique_header

        _check_unique_header(header, self.path)
        self.header = header
        self.has_ids = (
            self.id_column is not None and bool(header) and header[0] == self.id_column
        )
        self.columns = tuple(header[1:] if self.has_ids else header)


def _parse_python_row(row: list[str], state: _HeaderState) -> tuple[object, list[float]]:
    """Validate and type one ``csv.reader`` row exactly like the python codec."""
    if len(row) != len(state.header):  # type: ignore[arg-type]
        raise SerializationError(
            f"CSV row has {len(row)} field(s) but the header declares {len(state.header)}"
        )
    if state.has_ids:
        row_id, payload = row[0], row[1:]
    else:
        row_id, payload = None, row
    try:
        return row_id, [float(value) for value in payload]
    except ValueError as exc:
        raise SerializationError(
            f"non-numeric value in matrix CSV {state.path}: {exc}"
        ) from exc


def _parse_block_lines(
    lines: list[str], state: _HeaderState, assembler: _ChunkAssembler
) -> Iterator:
    """Parse one quote-free block of lines, falling back per block on doubt.

    The fast lane is trusted only when the numpy tokenizer accepts every
    payload line *and* the resulting shape matches the line and header
    counts exactly; anything else — ragged rows, non-numeric cells, tokens
    ``float()`` accepts but numpy rejects — reruns the block through the
    ``csv.reader`` lane, reproducing the oracle's values and errors.  The
    fallback yields chunks as rows accumulate so a row-level error still
    surfaces after every complete preceding chunk, exactly like the oracle.
    """
    if state.has_ids:
        parts = [line.partition(",") for line in lines]
        ids: list | None = [part[0] for part in parts]
        payload = [part[2] for part in parts]
    else:
        ids = None
        payload = lines
    values: np.ndarray | None = None
    try:
        values = np.loadtxt(
            payload, delimiter=",", dtype=np.float64, comments=None, ndmin=2
        )
    except Exception:  # repro-lint: disable=RPR010 -- any tokenizer doubt reruns the block through the oracle lane below
        values = None
    if values is not None and values.shape == (len(lines), len(state.columns)):
        assembler.add_array(values, ids)
        yield from assembler.emit_ready(state.columns)
        return
    for row in csv.reader(lines):
        if not row:
            continue
        row_id, floats = _parse_python_row(row, state)
        assembler.add_python_row(row_id, floats)
        if assembler.ready():
            yield from assembler.emit_ready(state.columns)


def _python_tail(handle, offset: int) -> Iterator[list[str]]:
    """Yield ``csv.reader`` rows for the stream's remainder from ``offset``.

    Entered when the fast lane sees bytes it cannot tokenize safely (quoted
    fields may span line boundaries, bare-CR terminators re-cut lines);
    from here on the seed parser owns the stream.
    """
    handle.seek(offset)
    encoding = "utf-8-sig" if offset == 0 else "utf-8"
    text_handle = io.TextIOWrapper(handle, encoding=encoding, newline="")
    return csv.reader(text_handle)


def decode_matrix_csv(
    path: str | Path,
    *,
    chunk_rows: int,
    id_column: str | None = "id",
    allow_empty: bool = False,
) -> Iterator:
    """Fast-codec implementation of :func:`repro.data.io.iter_matrix_csv`.

    Yields the same :class:`~repro.data.io.MatrixCsvChunk` blocks — bitwise
    identical values, identical ids/columns/start_row, identical
    :class:`~repro.exceptions.SerializationError` semantics — for any
    ``chunk_rows`` ≥ 1.
    """
    path = Path(path)
    state = _HeaderState(path, id_column)
    assembler: _ChunkAssembler | None = None
    n_yielded = 0
    with path.open("rb") as handle:
        pending = b""
        consumed = 0
        first_text = True
        python_rows: Iterator[list[str]] | None = None
        block_bytes = _block_bytes(chunk_rows)
        while python_rows is None:
            raw_read = handle.read(block_bytes)
            at_eof = not raw_read
            pending += raw_read
            if at_eof:
                raw, pending = pending, b""
            else:
                cut = pending.rfind(b"\n")
                if cut < 0:
                    continue
                raw, pending = pending[: cut + 1], pending[cut + 1 :]
            if raw:
                if b'"' in raw:
                    python_rows = _python_tail(handle, consumed)
                    break
                text = raw.decode("utf-8")
                if first_text:
                    text = text.removeprefix("\ufeff")
                    first_text = False
                newline = "\n"
                if "\r" in text:
                    crlf = text.count("\r\n")
                    if text.count("\r") != crlf:
                        # A bare CR is a row terminator for csv.reader but
                        # not for the byte-block line cutter — hand over.
                        python_rows = _python_tail(handle, consumed)
                        break
                    if text.count("\n") == crlf:
                        # Uniform CRLF terminators: split on them directly
                        # instead of building a normalized copy first.
                        newline = "\r\n"
                    else:
                        text = text.replace("\r\n", "\n")
                consumed += len(raw)
                lines = text.split(newline)
                if raw.endswith(b"\n"):
                    lines.pop()
                if "" in lines:
                    lines = [line for line in lines if line]
                if state.header is None and lines:
                    state.accept(lines[0].split(","))
                    lines = lines[1:]
                    assembler = _ChunkAssembler(
                        chunk_rows, len(state.columns), state.has_ids
                    )
                if lines:
                    for chunk in _parse_block_lines(lines, state, assembler):
                        n_yielded += chunk.n_rows
                        yield chunk
            if at_eof:
                break
        if python_rows is not None:
            # Tail lane: the block sizing above only affects performance;
            # from here csv.reader sees the identical remaining character
            # stream the python codec would.
            for row in python_rows:
                if not row:
                    continue
                if state.header is None:
                    state.accept(row)
                    assembler = _ChunkAssembler(
                        chunk_rows, len(state.columns), state.has_ids
                    )
                    continue
                row_id, floats = _parse_python_row(row, state)
                assembler.add_python_row(row_id, floats)
                if assembler.ready():
                    for chunk in assembler.emit_ready(state.columns):
                        n_yielded += chunk.n_rows
                        yield chunk
        if assembler is not None:
            for chunk in assembler.emit_final(state.columns):
                n_yielded += chunk.n_rows
                yield chunk
    if state.header is None or (n_yielded == 0 and not allow_empty):
        raise SerializationError(f"CSV file {path} does not contain a header and data rows")


# --------------------------------------------------------------------------- #
# Fast block encode
# --------------------------------------------------------------------------- #
def encode_matrix_block(values: np.ndarray, ids: Sequence | None) -> str | None:
    """Encode one row block as CSV text, byte-identical to the seed writer.

    Returns ``None`` when the block is outside the fast lane's proven-equal
    domain — ids that are not plain strings or that ``csv.writer`` would
    quote, or a zero-width block — in which case the caller must use the
    ``csv.writer`` lane.  ``%r`` formats each cell with ``repr(float)``,
    the exact shortest-round-trip formatter of
    :func:`repro.data.io.format_value`, and rows end with the ``csv``
    default ``\\r\\n`` terminator.
    """
    n_columns = values.shape[1]
    if n_columns == 0:
        return None
    if ids is not None:
        for row_id in ids:
            if type(row_id) is not str:
                return None
        if _NEEDS_QUOTING.search("\x00".join(ids)) is not None:
            return None
    columns = values.T.tolist()
    template = ",".join(["%r"] * n_columns)
    if ids is not None:
        template = "%s," + template
        rows = map(template.__mod__, zip(ids, *columns))
    else:
        rows = map(template.__mod__, zip(*columns))
    return "\r\n".join(rows) + "\r\n"


def encode_block_via_csv_writer(
    values: np.ndarray, ids: Sequence | None, float_format: str | None
) -> str:
    """Oracle-lane block encode: ``csv.writer`` into a string buffer.

    Produces exactly the bytes the seed per-row writer emits — used for
    blocks :func:`encode_matrix_block` declines and for the pipelined
    python codec, where rows must become text before crossing the queue.
    """
    from ..data.io import format_value

    buffer = StringIO()
    writer = csv.writer(buffer)
    for row_index in range(values.shape[0]):
        row: list = []
        if ids is not None:
            row.append(ids[row_index])
        row.extend(format_value(value, float_format) for value in values[row_index])
        writer.writerow(row)
    return buffer.getvalue()


# --------------------------------------------------------------------------- #
# Pipelined chunk I/O
# --------------------------------------------------------------------------- #
_STOP = object()


def prefetch_chunks(iterable: Iterable, depth: int = 2) -> Iterator:
    """Iterate ``iterable`` through a bounded background-thread prefetch.

    Up to ``depth`` items are decoded ahead of the consumer, overlapping
    read/decode with compute.  Order is the queue order — structurally
    identical to serial iteration — and producer exceptions re-raise at the
    consumer's position, so determinism and error semantics are unchanged.
    """
    depth = int(depth)
    if depth < 1:
        raise ValidationError(f"prefetch depth must be >= 1, got {depth}")
    buffer: queue.Queue = queue.Queue(maxsize=depth)
    cancelled = threading.Event()

    def _produce() -> None:
        try:
            for item in iterable:
                while not cancelled.is_set():
                    try:
                        buffer.put((item, None), timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if cancelled.is_set():
                    return
            payload: tuple = (_STOP, None)
        except BaseException as exc:  # repro-lint: disable=RPR010 -- carried across the thread and re-raised at the consumer
            payload = (_STOP, exc)
        while not cancelled.is_set():
            try:
                buffer.put(payload, timeout=0.1)
                return
            except queue.Full:
                continue

    producer = threading.Thread(target=_produce, name="repro-csv-prefetch", daemon=True)
    producer.start()
    try:
        while True:
            item, error = buffer.get()
            if item is _STOP:
                if error is not None:
                    raise error
                return
            yield item
    finally:
        cancelled.set()
        producer.join(timeout=5.0)


class PipelinedTextSink:
    """Double-buffered background writer for encoded CSV text blocks.

    The caller encodes on its own thread and hands finished text here; a
    single background thread performs the ``handle.write`` calls in arrival
    order (a bounded two-slot queue — one block writing, one block queued —
    overlaps encode with disk I/O).  Writer-thread failures re-raise on the
    next :meth:`write` or :meth:`close`, so disk errors surface exactly
    where the serial writer would raise them.
    """

    def __init__(self, handle, *, depth: int = 2) -> None:
        self._handle = handle
        self._queue: queue.Queue = queue.Queue(maxsize=int(depth))
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="repro-csv-write", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        while True:
            text = self._queue.get()
            if text is _STOP:
                return
            if self._error is not None:
                continue  # swallow queued blocks after a failure; close() re-raises
            try:
                self._handle.write(text)
            except BaseException as exc:  # repro-lint: disable=RPR010 -- stored and re-raised on the caller's next write/close
                self._error = exc

    def _check(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            self._closed = True
            raise error

    def write(self, text: str) -> None:
        if self._closed:
            raise SerializationError("pipelined CSV sink is already closed")
        self._check()
        self._queue.put(text)

    def close(self) -> None:
        """Flush queued blocks and stop the writer thread (idempotent)."""
        if not self._closed:
            self._queue.put(_STOP)
            self._thread.join()
            self._closed = True
        if self._error is not None:
            error, self._error = self._error, None
            raise error


# --------------------------------------------------------------------------- #
# Decoded-chunk spill cache
# --------------------------------------------------------------------------- #
class DecodedChunkCache:
    """Spill decoded ``(values, ids)`` blocks so later passes skip the parse.

    The multi-pass streaming release reads its input CSV once per pass; with
    the fast codec the first pass tees every decoded block into a binary
    scratch file (raw float64 bytes plus pickled ids) and subsequent passes
    replay from it.  Replay restores the identical doubles and id strings,
    so statistics, planning and released bytes are unchanged — the cache is
    purely an I/O-cost optimization.  The scratch file is process-local and
    removed by :meth:`close`; an interrupted first pass leaves the cache
    incomplete and later passes fall back to re-streaming the CSV.
    """

    def __init__(self) -> None:
        self._directory = tempfile.mkdtemp(prefix="repro-csv-spill-")
        self._values_path = os.path.join(self._directory, "values.f64")
        self._ids_path = os.path.join(self._directory, "ids.pkl")
        self._chunks: list[int] = []
        self._complete = False
        self._closed = False

    @property
    def complete(self) -> bool:
        """Whether a full first pass has been spilled and replay is valid."""
        return self._complete

    def tee(self, iterator: Iterable) -> Iterator:
        """Pass chunks through, spilling each one; marks complete at the end."""
        if self._closed:
            raise ValidationError("DecodedChunkCache is already closed")
        self._chunks = []
        self._complete = False
        with open(self._values_path, "wb") as values_handle, open(
            self._ids_path, "wb"
        ) as ids_handle:
            for values, ids in iterator:
                block = np.ascontiguousarray(values, dtype=np.float64)
                values_handle.write(block.tobytes())
                pickle.dump(ids, ids_handle, protocol=pickle.HIGHEST_PROTOCOL)
                self._chunks.append((block.shape[0], block.shape[1]))
                yield values, ids
        self._complete = True

    def replay(self) -> Iterator:
        """Yield the spilled ``(values, ids)`` blocks, bitwise identical."""
        if not self._complete:
            raise ValidationError("DecodedChunkCache has no complete spilled pass")
        with open(self._values_path, "rb") as values_handle, open(
            self._ids_path, "rb"
        ) as ids_handle:
            for n_rows, n_columns in self._chunks:
                values = np.fromfile(
                    values_handle, dtype=np.float64, count=n_rows * n_columns
                ).reshape(n_rows, n_columns)
                ids = pickle.load(ids_handle)
                yield values, ids

    def close(self) -> None:
        """Remove the scratch directory (idempotent)."""
        if not self._closed:
            self._closed = True
            self._complete = False
            shutil.rmtree(self._directory, ignore_errors=True)

    def __enter__(self) -> DecodedChunkCache:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
