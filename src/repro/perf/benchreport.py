"""Diffing for the ``BENCH_perf*.json`` benchmark reports.

``repro bench diff OLD.json NEW.json`` compares two reports produced by the
``benchmarks/bench_*.py`` scripts and prints a per-scenario table of speedup
changes, timing changes and contract flags.  The metric classification
mirrors ``benchmarks/check_bench_regression.py`` — the CI gate — so a diff
that prints ``REGRESSED`` rows is exactly a diff the gate would reject:

* ``speedup*`` / ``*_speedup`` / ``*_ratio`` — gated ratios; a fractional
  drop beyond ``max_regression`` (default 30%) fails the diff.
* ``*_within_budget`` / ``*identical*`` booleans — hard contracts; a
  baseline ``true`` that turns ``false`` (or disappears) always fails.
* ``*_seconds`` — informational wall-clock; reported, never gating, because
  absolute seconds are machine-dependent while same-run ratios are not.

Everything else numeric is listed as an informational metric.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import ValidationError

__all__ = [
    "DEFAULT_MAX_REGRESSION",
    "diff_bench_reports",
    "format_bench_diff",
    "has_regressions",
    "load_bench_report",
]

#: Fractional drop in a gated ratio treated as a regression (matches the
#: default of ``benchmarks/check_bench_regression.py``).
DEFAULT_MAX_REGRESSION = 0.30


def load_bench_report(path: Path | str) -> dict:
    """Load a ``BENCH_perf*.json`` report, validating the outer shape."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValidationError(f"bench report {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"bench report {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValidationError(f"bench report {path} must be a JSON object")
    return payload


def _leaves(node, prefix: str = "") -> dict[str, bool | int | float]:
    """Flatten numeric and boolean leaves into ``dotted.path -> value``."""
    found: dict[str, bool | int | float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else key
            found.update(_leaves(node[key], path))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            found.update(_leaves(value, f"{prefix}[{index}]"))
    elif isinstance(node, (bool, int, float)):
        found[prefix] = node
    return found


def _classify(path: str, value) -> str:
    """``ratio`` (gated), ``contract`` (gated boolean), ``seconds`` or ``metric``."""
    leaf = path.rsplit(".", 1)[-1]
    if isinstance(value, bool):
        return "contract" if (leaf.endswith("_within_budget") or "identical" in leaf) else "metric"
    if leaf.startswith("speedup") or leaf.endswith(("_speedup", "_ratio")):
        return "ratio"
    if leaf == "seconds" or leaf.endswith("_seconds"):
        return "seconds"
    return "metric"


def diff_bench_reports(
    old: dict, new: dict, *, max_regression: float = DEFAULT_MAX_REGRESSION
) -> list[dict]:
    """Diff two loaded reports into a list of row dicts.

    Each row has ``path``, ``kind``, ``old``, ``new`` (either side ``None``
    when missing), ``status`` and ``gate`` — ``gate`` is ``True`` exactly
    when the row would fail the CI regression gate.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValidationError(f"max_regression must be in [0, 1), got {max_regression}")
    old_leaves = _leaves(old.get("hot_paths", old))
    new_leaves = _leaves(new.get("hot_paths", new))
    rows: list[dict] = []
    for path in sorted(old_leaves.keys() | new_leaves.keys()):
        old_value = old_leaves.get(path)
        new_value = new_leaves.get(path)
        kind = _classify(path, old_value if old_value is not None else new_value)
        row = {"path": path, "kind": kind, "old": old_value, "new": new_value}
        if old_value is None:
            row["status"], row["gate"] = "new", False
        elif new_value is None:
            gated = kind in ("ratio", "contract") and old_value
            row["status"] = "MISSING" if gated else "missing"
            row["gate"] = bool(gated)
        elif kind == "contract":
            if old_value and not new_value:
                row["status"], row["gate"] = "BROKEN", True
            elif not old_value and new_value:
                row["status"], row["gate"] = "fixed", False
            else:
                row["status"], row["gate"] = "holds" if new_value else "unestablished", False
        elif kind == "ratio":
            change = (new_value - old_value) / old_value if old_value > 0 else 0.0
            row["change"] = change
            if -change > max_regression:
                row["status"], row["gate"] = "REGRESSED", True
            elif change > max_regression:
                row["status"], row["gate"] = "improved", False
            else:
                row["status"], row["gate"] = "ok", False
        elif kind == "seconds":
            change = (new_value - old_value) / old_value if old_value > 0 else 0.0
            row["change"] = change
            row["status"] = "slower" if change > 0.05 else ("faster" if change < -0.05 else "ok")
            row["gate"] = False
        else:
            row["status"] = "ok" if new_value == old_value else "changed"
            row["gate"] = False
        rows.append(row)
    return rows


def has_regressions(rows: list[dict]) -> bool:
    """Whether any diff row fails the regression gate."""
    return any(row["gate"] for row in rows)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_bench_diff(rows: list[dict], *, verbose: bool = False) -> str:
    """Render diff rows as a fixed-width table.

    Without ``verbose``, unchanged informational metrics are elided so the
    table stays focused on the gated ratios, contracts and timing shifts.
    """
    shown = [
        row
        for row in rows
        if verbose or row["kind"] in ("ratio", "contract", "seconds") or row["status"] != "ok"
    ]
    if not shown:
        return "no comparable metrics found"
    width = max(len(row["path"]) for row in shown)
    lines = [f"{'metric'.ljust(width)}  {'old':>12}  {'new':>12}  {'change':>8}  status"]
    for row in shown:
        change = row.get("change")
        change_text = f"{change:+.1%}" if change is not None else "-"
        lines.append(
            f"{row['path'].ljust(width)}  {_fmt(row['old']):>12}  "
            f"{_fmt(row['new']):>12}  {change_text:>8}  {row['status']}"
        )
    n_gating = len([row for row in shown if row["gate"]])
    if n_gating:
        lines.append(f"\nFAIL: {n_gating} metric(s) regressed beyond the gate")
    else:
        lines.append("\nOK: no gated metric regressed")
    return "\n".join(lines)
