"""Per-stage wall-clock / peak-RSS profiling for the streamed commands.

``repro transform --profile`` and ``repro audit --profile`` attach a
:class:`StageProfiler` to the streamed pipeline; the pipeline brackets its
read / compute / write work with :meth:`StageProfiler.section` (or wraps a
chunk iterator with :meth:`StageProfiler.wrap_iter`) and the CLI prints
:meth:`StageProfiler.format_table` when the command finishes.  The numbers
exist so that I/O-vs-compute claims about the release path come from
measurements, not folklore.

Profiling is observational only: it never changes chunk order, produced
bytes, or error behavior, and it costs two ``perf_counter`` calls per
bracketed region.  Wall-clock readings are intentionally outside the
repository's determinism contract (RPR002 allows this module explicitly) —
profiles describe the machine, not the release.
"""

from __future__ import annotations

import math
import resource
import sys
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

__all__ = ["StageProfiler"]

#: Order in which known stages are reported; unknown names follow, in first-
#: use order, so ad-hoc sections still show up.
_STAGE_ORDER = ("read", "compute", "write")


def _peak_rss_bytes() -> int:
    """Process-wide peak resident set size, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalize to
    bytes with the conventional platform check.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class StageProfiler:
    """Accumulate wall-clock seconds and peak RSS per named pipeline stage.

    The profiler is cumulative across every pass of a multi-pass run: a
    ``read`` section entered once per chunk per pass reports the total time
    spent parsing input over the whole command.  ``peak_rss`` per stage is
    the high-water mark *observed while that stage was running* — a
    process-wide monotone, so later stages can only report equal or larger
    values.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._peak_rss: dict[str, int] = {}
        self._started = time.perf_counter()

    @contextmanager
    def section(self, stage: str):
        """Time one bracketed region, attributing it to ``stage``."""
        began = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - began
            self._seconds[stage] = self._seconds.get(stage, 0.0) + elapsed
            self._peak_rss[stage] = max(self._peak_rss.get(stage, 0), _peak_rss_bytes())

    def wrap_iter(self, stage: str, iterable: Iterable) -> Iterator:
        """Yield from ``iterable``, attributing each ``next()`` to ``stage``."""
        iterator = iter(iterable)
        while True:
            with self.section(stage):
                try:
                    item = next(iterator)
                except StopIteration:
                    return
            yield item

    def report(self) -> dict:
        """Stage breakdown as plain data (also the ``--profile`` JSON shape)."""
        total = time.perf_counter() - self._started
        known = [name for name in _STAGE_ORDER if name in self._seconds]
        extra = [name for name in self._seconds if name not in _STAGE_ORDER]
        accounted = math.fsum(self._seconds[name] for name in known + extra)
        stages = [
            {
                "stage": name,
                "seconds": self._seconds[name],
                "share": (self._seconds[name] / total) if total > 0 else 0.0,
                "peak_rss_bytes": self._peak_rss[name],
            }
            for name in known + extra
        ]
        stages.append(
            {
                "stage": "other",
                "seconds": max(total - accounted, 0.0),
                "share": (max(total - accounted, 0.0) / total) if total > 0 else 0.0,
                "peak_rss_bytes": _peak_rss_bytes(),
            }
        )
        return {"total_seconds": total, "stages": stages}

    def format_table(self) -> str:
        """Human-oriented fixed-width table of :meth:`report`."""
        report = self.report()
        lines = [
            "stage      seconds    share   peak RSS",
            "-------    -------    -----   --------",
        ]
        for entry in report["stages"]:
            lines.append(
                "%-7s    %7.3f    %4.1f%%   %7.1fM"
                % (
                    entry["stage"],
                    entry["seconds"],
                    100.0 * entry["share"],
                    entry["peak_rss_bytes"] / (1024.0 * 1024.0),
                )
            )
        lines.append("total      %7.3f" % report["total_seconds"])
        return "\n".join(lines)
