"""Shared high-performance compute kernels used by the library's hot paths.

Every expensive inner loop of the reproduction funnels through this package:

* :mod:`repro.perf.kernels` — chunked pairwise-distance kernels with a
  configurable memory budget, block-wise maximum distance distortion
  (the Theorem 2 check), the ``‖x‖² + ‖c‖² − 2x·c`` cross-distance trick
  used by k-means assignment, and batched inverse rotations for the
  brute-force attack's angle grid.
* :mod:`repro.perf.analytic` — the closed-form solver for the variance-vs-θ
  threshold crossings behind the security range (Figures 2/3), replacing the
  dense-grid + bisection search with quartic root finding plus Newton polish.
* :mod:`repro.perf.cache` — a content-addressed LRU cache of pairwise
  distance matrices, shared by every distance-based clustering consumer so
  each (dataset, metric) matrix is computed exactly once per pipeline run.
* :mod:`repro.perf.streaming` — chunk-size-invariant tiled moment
  accumulators (fsum-combined per-tile partials) that make the streaming
  release pipeline's statistics bitwise identical to the in-memory path.
* :mod:`repro.perf.backends` — pluggable execution backends (serial,
  shared-memory process pool, optional numba) behind which every chunked
  kernel above fans its blocks out; merge order is fixed, so serial and
  process-pool results are bitwise identical.

The kernels operate on plain ``numpy`` arrays and know nothing about the
domain objects (``DataMatrix``, ``SecurityRange``, …); the domain modules in
:mod:`repro.metrics`, :mod:`repro.core`, :mod:`repro.clustering`,
:mod:`repro.attacks` and :mod:`repro.pipeline` own the semantics and delegate
the arithmetic here.
"""

from .backends import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    ExecutionBackend,
    NumbaBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    default_backend,
    get_backend,
    is_numba_available,
)
from .analytic import (
    curve_admissible_intervals,
    intersect_circular_intervals,
    pair_moments,
    solve_admissible_angles,
    threshold_crossings,
    variance_curves_from_moments,
)
from .cache import DistanceCache
from .streaming import STREAM_TILE_ROWS, StreamingMoments, streamed_pair_moments
from .kernels import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    assign_nearest_center,
    batched_inverse_rotations,
    best_inverse_rotation,
    cross_squared_distances,
    euclidean_pairwise,
    max_abs_distance_difference,
    pairwise_distances_blocked,
    radius_neighbors_blocked,
    radius_neighbors_from_distances,
    resolve_block_size,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "STREAM_TILE_ROWS",
    "WORKERS_ENV_VAR",
    "DistanceCache",
    "ExecutionBackend",
    "NumbaBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "StreamingMoments",
    "available_backends",
    "best_inverse_rotation",
    "default_backend",
    "get_backend",
    "is_numba_available",
    "streamed_pair_moments",
    "assign_nearest_center",
    "batched_inverse_rotations",
    "cross_squared_distances",
    "euclidean_pairwise",
    "max_abs_distance_difference",
    "pairwise_distances_blocked",
    "radius_neighbors_blocked",
    "radius_neighbors_from_distances",
    "resolve_block_size",
    "curve_admissible_intervals",
    "intersect_circular_intervals",
    "pair_moments",
    "solve_admissible_angles",
    "threshold_crossings",
    "variance_curves_from_moments",
]
