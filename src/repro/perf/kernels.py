"""Chunked, vectorized array kernels for the library's hot paths.

The seed implementation computed Manhattan/Chebyshev/Minkowski pairwise
distances through a single ``matrix[:, None, :] - matrix[None, :, :]``
broadcast, which materializes an ``(m, m, n)`` temporary — 1.6 GB for
``m = 5000, n = 8`` — before reducing it to the ``(m, m)`` result.  The
kernels here do the same arithmetic block-by-block under a configurable
memory budget, so peak memory is ``O(m²) + budget`` instead of ``O(m²·n)``,
and each block's reduction is performed element-for-element identically to
the full broadcast (the results are bitwise equal, not merely close).

All functions take and return plain ``numpy`` arrays.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_integer_in_range,
    check_positive,
)
from ..exceptions import ValidationError
from .backends import get_backend

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "resolve_block_size",
    "euclidean_pairwise",
    "pairwise_distances_blocked",
    "cross_squared_distances",
    "assign_nearest_center",
    "max_abs_distance_difference",
    "batched_inverse_rotations",
    "best_inverse_rotation",
    "radius_neighbors_blocked",
    "radius_neighbors_from_distances",
]

#: Default cap on the size of any temporary a chunked kernel materializes.
#: 64 MiB keeps blocks comfortably inside L3-ish working sets while still
#: being large enough that the per-block Python overhead is negligible.
DEFAULT_MEMORY_BUDGET_BYTES: int = 64 * 1024 * 1024


def resolve_block_size(
    n_rows: int,
    bytes_per_row: int,
    memory_budget_bytes: int | None = None,
    *,
    n_consumers: int = 1,
) -> int:
    """Number of rows a chunked kernel may process per block.

    ``bytes_per_row`` is the size of the temporary one row of the block
    generates; the block size is clamped to ``[1, n_rows]`` so a budget
    smaller than a single row still makes progress one row at a time.

    ``n_consumers`` is the number of blocks that may be live concurrently —
    parallel backends pass their worker count — and divides the budget, so
    ``n_consumers`` in-flight blocks together still materialize at most one
    budget's worth of temporaries (down to the one-row-per-block floor).
    """
    budget = (
        DEFAULT_MEMORY_BUDGET_BYTES if memory_budget_bytes is None else int(memory_budget_bytes)
    )
    if budget <= 0:
        raise ValidationError(f"memory_budget_bytes must be positive, got {budget}")
    n_consumers = check_integer_in_range(n_consumers, name="n_consumers", minimum=1)
    if bytes_per_row <= 0:
        return n_rows
    return max(1, min(n_rows, (budget // n_consumers) // bytes_per_row))


def euclidean_pairwise(matrix: np.ndarray) -> np.ndarray:
    """Numerically safe vectorized Euclidean pairwise distances (Equation 6).

    Dense one-shot form built on a full GEMM.  The blocked kernel
    (:func:`pairwise_distances_blocked`) uses the per-row products of
    ``_euclidean_block`` instead: GEMM reduction bits vary with operand
    shape, so this form is numerically equivalent to the kernel but not
    bit-identical to it.
    """
    squared_norms = np.sum(matrix**2, axis=1)
    # repro-lint: disable=RPR007 -- dense one-shot form, documented non-bitwise vs the kernel
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, 0.0)
    return distances


def _metric_rows(
    matrix: np.ndarray, start: int, stop: int, metric: str, p: float, scratch=None
) -> np.ndarray:
    """One block of non-Euclidean distance rows.

    The arithmetic is elementwise per ``(i, j)`` cell, so reusing a caller
    scratch buffer or allocating a fresh difference block produces the same
    bits — which is what lets serial scratch reuse and per-worker fresh
    allocation coexist under the bitwise contract.
    """
    if scratch is None:
        diff = matrix[start:stop, None, :] - matrix[None, :, :]
    else:
        diff = scratch[: stop - start]
        np.subtract(matrix[start:stop, None, :], matrix[None, :, :], out=diff)
    np.abs(diff, out=diff)
    if metric == "manhattan":
        return diff.sum(axis=2)
    if metric == "chebyshev":
        return diff.max(axis=2)
    np.power(diff, p, out=diff)
    return diff.sum(axis=2) ** (1.0 / p)


def _distance_rows_worker(arrays, start: int, stop: int, *, metric: str, p: float) -> np.ndarray:
    """Distance rows ``start:stop`` (module level so process backends can ship it)."""
    matrix = arrays["matrix"]
    if metric == "euclidean":
        distances = _euclidean_block(matrix, arrays["squared_norms"], start, stop)
        # The dense path zeroes the diagonal; mirror that per block.
        rows = np.arange(start, stop)
        distances[rows - start, rows] = 0.0
        return distances
    return _metric_rows(matrix, start, stop, metric, p)


_NUMBA_DISTANCE_ROWS = None


def _ensure_numba_distance_rows():
    global _NUMBA_DISTANCE_ROWS
    if _NUMBA_DISTANCE_ROWS is None:
        import numba

        @numba.njit(cache=False)
        def _rows(matrix, start, stop, metric_code, p):  # pragma: no cover - needs numba
            m = matrix.shape[0]
            n = matrix.shape[1]
            out = np.empty((stop - start, m), dtype=np.float64)
            for a in range(start, stop):
                for b in range(m):
                    if metric_code == 0:
                        total = 0.0
                        for k in range(n):
                            # repro-lint: disable=RPR004 -- jitted path documented non-bitwise
                            total += abs(matrix[a, k] - matrix[b, k])
                        out[a - start, b] = total
                    elif metric_code == 1:
                        largest = 0.0
                        for k in range(n):
                            value = abs(matrix[a, k] - matrix[b, k])
                            if value > largest:
                                largest = value
                        out[a - start, b] = largest
                    else:
                        total = 0.0
                        for k in range(n):
                            # repro-lint: disable=RPR004 -- jitted path documented non-bitwise
                            total += abs(matrix[a, k] - matrix[b, k]) ** p
                        out[a - start, b] = total ** (1.0 / p)
            return out

        _NUMBA_DISTANCE_ROWS = _rows
    return _NUMBA_DISTANCE_ROWS


def _distance_rows_numba(arrays, start: int, stop: int, *, metric: str, p: float) -> np.ndarray:
    """Jitted variant of :func:`_distance_rows_worker` (``NumbaBackend`` only).

    The sequential per-cell accumulation reassociates the reduction, so the
    rows are numerically close to — not bitwise equal to — the reference
    kernel; the Euclidean path is BLAS-dominated and simply delegates.
    """
    if metric == "euclidean":
        return _distance_rows_worker(arrays, start, stop, metric=metric, p=p)
    codes = {"manhattan": 0, "chebyshev": 1, "minkowski": 2}
    rows = _ensure_numba_distance_rows()
    return rows(np.ascontiguousarray(arrays["matrix"]), start, stop, codes[metric], float(p))


_distance_rows_worker.numba_variant = _distance_rows_numba


def pairwise_distances_blocked(
    data,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
    backend=None,
) -> np.ndarray:
    """Full ``(m, m)`` pairwise-distance matrix, computed block-by-block.

    Supported metrics: ``euclidean`` (Gram-matrix trick, never needs the
    3-D temporary), ``manhattan``, ``chebyshev`` and ``minkowski`` (order
    ``p``).  The non-Euclidean metrics process row blocks sized so that the
    ``(block, m, n)`` difference temporary stays within
    ``memory_budget_bytes``.

    ``backend`` selects the execution backend for the row blocks (see
    :mod:`repro.perf.backends`); the serial and process-pool backends are
    bitwise identical because each row block's arithmetic is unchanged and
    blocks are merged in row order.
    """
    matrix = as_float_matrix(data, name="data")
    metric = metric.lower()
    if metric not in ("euclidean", "manhattan", "chebyshev", "minkowski"):
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of euclidean, manhattan, chebyshev, minkowski"
        )
    if metric == "minkowski":
        p = check_positive(p, name="p")
    backend = get_backend(backend)

    m, n = matrix.shape
    out = np.empty((m, m), dtype=float)
    if metric == "euclidean":
        # Per-block Gram rows merged in row order; ``_euclidean_block``'s
        # per-row products make every block size — and therefore every
        # backend — produce the same bits.
        block = backend.resolve_block_size(m, 3 * matrix.itemsize * m, memory_budget_bytes)
        arrays = {"matrix": matrix, "squared_norms": np.sum(matrix**2, axis=1)}
        for start, stop, rows in backend.imap_blocks(
            _distance_rows_worker, m, block, arrays=arrays, kwargs={"metric": metric, "p": p}
        ):
            out[start:stop] = rows
        return out
    block = backend.resolve_block_size(m, m * n * matrix.itemsize, memory_budget_bytes)
    if backend.name == "serial":
        scratch = np.empty((block, m, n), dtype=float)
        for start in range(0, m, block):
            stop = min(start + block, m)
            out[start:stop] = _metric_rows(matrix, start, stop, metric, p, scratch=scratch)
        return out
    for start, stop, rows in backend.imap_blocks(
        _distance_rows_worker, m, block, arrays={"matrix": matrix}, kwargs={"metric": metric, "p": p}
    ):
        out[start:stop] = rows
    return out


def _neighbor_rows_worker(
    arrays, start: int, stop: int, *, metric: str, p: float, eps: float
) -> tuple[np.ndarray, np.ndarray]:
    """One block's CSR pieces: per-row neighbor counts + ascending columns."""
    matrix = arrays["matrix"]
    if metric == "euclidean":
        distances = _euclidean_block(matrix, arrays["squared_norms"], start, stop)
        # The dense path zeroes the diagonal; mirror that so round-off on
        # d(i, i) cannot drop an object from its own neighborhood.
        rows = np.arange(start, stop)
        distances[rows - start, rows] = 0.0
    else:
        distances = _metric_rows(matrix, start, stop, metric, p)
    local_rows, local_cols = np.nonzero(distances <= eps)
    counts = np.bincount(local_rows, minlength=stop - start).astype(np.intp, copy=False)
    return counts, local_cols.astype(np.intp, copy=False)


def radius_neighbors_blocked(
    data,
    eps: float,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compressed neighbor lists ``{j : d(i, j) <= eps}`` for every row ``i``.

    Returns CSR-style ``(indptr, indices)``: row ``i``'s neighbors (self
    included, since ``d(i, i) = 0``) are ``indices[indptr[i]:indptr[i + 1]]``
    in ascending order.  Distances are computed block-row-wise under
    ``memory_budget_bytes``, so neither the full ``(m, m)`` distance matrix
    nor a dense boolean adjacency is ever materialized — peak memory is the
    budget plus the neighbor lists themselves.  Per-element arithmetic is
    identical to :func:`pairwise_distances_blocked`, so the neighbor sets
    match a dense threshold of that matrix.

    Row blocks may execute on any ``backend``; neighbor sets are a pure
    elementwise threshold per block and blocks are concatenated in row
    order, so every backend returns identical CSR arrays.
    """
    matrix = as_float_matrix(data, name="data")
    eps = float(eps)
    metric = metric.lower()
    if metric not in ("euclidean", "manhattan", "chebyshev", "minkowski"):
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of euclidean, manhattan, chebyshev, minkowski"
        )
    if metric == "minkowski":
        p = check_positive(p, name="p")
    backend = get_backend(backend)

    m, n = matrix.shape
    arrays = {"matrix": matrix}
    if metric == "euclidean":
        # ``_euclidean_block`` rows, exactly as in
        # ``pairwise_distances_blocked``, so the thresholded sets match a
        # dense threshold of that matrix bitwise.  Live per block: two
        # (block, m) float temporaries inside ``_euclidean_block``, the
        # distance block itself, and the boolean threshold mask.
        arrays["squared_norms"] = np.sum(matrix**2, axis=1)
        block = backend.resolve_block_size(m, (3 * matrix.itemsize + 1) * m, memory_budget_bytes)
    else:
        block = backend.resolve_block_size(m, (n + 2) * m * matrix.itemsize, memory_budget_bytes)

    counts = np.empty(m, dtype=np.intp)
    chunks: list[np.ndarray] = []
    for start, stop, (block_counts, block_cols) in backend.imap_blocks(
        _neighbor_rows_worker, m, block, arrays=arrays, kwargs={"metric": metric, "p": p, "eps": eps}
    ):
        counts[start:stop] = block_counts
        chunks.append(block_cols)

    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
    return indptr, indices


def radius_neighbors_from_distances(
    distances,
    eps: float,
    *,
    memory_budget_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR neighbor lists from a precomputed distance matrix.

    Same contract as :func:`radius_neighbors_blocked`, but thresholds an
    existing ``(m, m)`` matrix block-row-wise so only one boolean block is
    live at a time (the matrix's own diagonal decides self-membership,
    matching a dense ``distances <= eps`` comparison exactly).
    """
    distances = as_float_matrix(distances, name="distances")
    if distances.shape[0] != distances.shape[1]:
        raise ValidationError(f"distances must be square, got {distances.shape}")
    eps = float(eps)
    m = distances.shape[0]
    block = resolve_block_size(
        m, bytes_per_row=2 * m * distances.itemsize, memory_budget_bytes=memory_budget_bytes
    )
    counts = np.empty(m, dtype=np.intp)
    chunks: list[np.ndarray] = []
    for start in range(0, m, block):
        stop = min(start + block, m)
        local_rows, local_cols = np.nonzero(distances[start:stop] <= eps)
        counts[start:stop] = np.bincount(local_rows, minlength=stop - start)
        chunks.append(local_cols.astype(np.intp, copy=False))
    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
    return indptr, indices


def cross_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``(m, k)`` squared Euclidean distances via ``‖x‖² + ‖c‖² − 2x·c``.

    Replaces the ``(m, k, n)`` broadcast the seed k-means assignment used
    with one matrix product; negative round-off is clamped to zero.
    """
    # repro-lint: disable=RPR007 -- full-array norms, never blocked
    point_norms = np.einsum("ij,ij->i", points, points)
    # repro-lint: disable=RPR007 -- full-array norms, never blocked
    center_norms = np.einsum("ij,ij->i", centers, centers)
    # repro-lint: disable=RPR007 -- one full (m, n) x (n, k) product, shapes fixed per call
    squared = point_norms[:, None] + center_norms[None, :] - 2.0 * (points @ centers.T)
    np.maximum(squared, 0.0, out=squared)
    return squared


def assign_nearest_center(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for every point (ties go to the lowest index).

    Unlike the explicit ``(m, k, n)`` difference broadcast, the Gram-matrix
    form loses precision when ``‖x‖²`` dwarfs the squared distances (data far
    from the origin), which could flip assignments between near-equidistant
    centers.  Distances are translation-invariant, so both operands are
    shifted by the center mean first — that keeps the norms on the order of
    the distances themselves and makes the fast path safe for un-normalized
    inputs too.
    """
    shift = centers.mean(axis=0)
    return cross_squared_distances(points - shift, centers - shift).argmin(axis=1)


def _distance_difference_worker(arrays, start: int, stop: int) -> float:
    """Block maximum of ``|d(i,j) − d'(i,j)|`` for rows ``start:stop``."""
    first = arrays["first"]
    second = arrays["second"]
    rows = np.arange(start, stop)
    distances_first = _euclidean_block(first, arrays["first_norms"], start, stop)
    distances_second = _euclidean_block(second, arrays["second_norms"], start, stop)
    # The full-matrix computation zeroes the diagonal; mirror that here so
    # round-off on d(i, i) cannot masquerade as distortion.
    distances_first[rows - start, rows] = 0.0
    distances_second[rows - start, rows] = 0.0
    np.abs(distances_first - distances_second, out=distances_first)
    return float(distances_first.max())


def max_abs_distance_difference(
    first,
    second,
    *,
    memory_budget_bytes: int | None = None,
    backend=None,
) -> float:
    """``max |d(i,j) − d'(i,j)|`` over all pairs, without two full matrices.

    This is the Theorem 2 isometry check: the seed pipeline materialized the
    complete dissimilarity matrices of both datasets (two ``(m, m)`` arrays
    plus their difference) just to take one maximum.  Here each row block's
    Euclidean distances are computed for both datasets, compared, and
    discarded, so peak memory is bounded by the budget regardless of ``m``.

    The running ``max`` over per-block maxima is merged in block order on
    every ``backend``, matching the serial scan exactly.
    """
    first = as_float_matrix(first, name="first")
    second = as_float_matrix(second, name="second")
    if first.shape[0] != second.shape[0]:
        raise ValidationError(
            f"first and second must describe the same objects, got {first.shape[0]} "
            f"and {second.shape[0]} rows"
        )
    backend = get_backend(backend)
    m = first.shape[0]
    arrays = {
        "first": first,
        "second": second,
        # repro-lint: disable=RPR007 -- full-array norms staged once, block-size independent
        "first_norms": np.einsum("ij,ij->i", first, first),
        # repro-lint: disable=RPR007 -- full-array norms staged once, block-size independent
        "second_norms": np.einsum("ij,ij->i", second, second),
    }
    # Each block materializes ~4 (block, m) temporaries (two squared-distance
    # blocks and scratch); size the block accordingly.
    block = backend.resolve_block_size(m, 4 * m * first.itemsize, memory_budget_bytes)
    worst = 0.0
    for _start, _stop, value in backend.imap_blocks(
        _distance_difference_worker, m, block, arrays=arrays
    ):
        worst = max(worst, value)
    return worst


def _euclidean_block(
    matrix: np.ndarray, squared_norms: np.ndarray, start: int, stop: int
) -> np.ndarray:
    # In-place staging of ‖x‖² + ‖y‖² − 2x·y, with the cross terms computed
    # as one fixed-shape (m, n)·(n,) product per row.  A (block, m) GEMM
    # would be faster, but BLAS reduction bits depend on the operand shapes,
    # so its last-ulp output would change with the block decomposition; the
    # per-row form depends only on (m, n), which is what keeps every block
    # size — and therefore every backend — bitwise identical.
    cross = np.empty((stop - start, matrix.shape[0]), dtype=float)
    for row in range(start, stop):
        # repro-lint: disable=RPR007 -- fixed-shape per-row matvec, the contract's exemplar
        np.dot(matrix, matrix[row], out=cross[row - start])
    squared = squared_norms[start:stop, None] + squared_norms[None, :]
    cross *= 2.0
    squared -= cross
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared, out=squared)


def batched_inverse_rotations(
    column_i,
    column_j,
    angles_degrees,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply ``R(θ)⁻¹ = R(θ)ᵀ`` to a column pair for a whole grid of angles.

    Returns two ``(n_angles, m)`` arrays — the candidate restorations of the
    pair under every angle — replacing the brute-force attack's per-θ Python
    loop with one stacked matrix product.  The stacked product goes through
    the same BLAS kernel as the per-θ ``R(θ)ᵀ @ stacked`` products it
    replaces, so the restorations are bitwise identical and exact score
    ties (which arise structurally, e.g. θ vs θ+90° under column
    swap/negation) resolve to the same angle as the seed scan.
    """
    column_i = as_float_vector(column_i, name="column_i")
    column_j = as_float_vector(column_j, name="column_j")
    if column_i.shape != column_j.shape:
        raise ValidationError(
            f"column_i and column_j must have the same length, got {column_i.size} and {column_j.size}"
        )
    theta = np.deg2rad(np.asarray(angles_degrees, dtype=float).ravel())
    cos = np.cos(theta)
    sin = np.sin(theta)
    # The paper's R(θ) is clockwise, [[c, s], [−s, c]], so R(θ)ᵀ = [[c, −s], [s, c]].
    transposed = np.empty((theta.size, 2, 2), dtype=float)
    transposed[:, 0, 0] = cos
    transposed[:, 0, 1] = -sin
    transposed[:, 1, 0] = sin
    transposed[:, 1, 1] = cos
    # repro-lint: disable=RPR007 -- stacked (k, 2, 2) @ (2, m) products, shapes fixed per call
    restored = transposed @ np.vstack([column_i, column_j])
    return restored[:, 0, :], restored[:, 1, :]


def _angle_scan_worker(
    arrays,
    start: int,
    stop: int,
    *,
    scorer: str,
    candidate_variances=None,
    targets=None,
    pair_indices=None,
):
    """Best angle within one grid block: ``(local index, score, restored pair)``."""
    restored_i, restored_j = batched_inverse_rotations(
        arrays["column_i"], arrays["column_j"], arrays["angles"][start:stop]
    )
    if scorer == "unit_moments":
        # Summation order mirrors the seed per-θ scorer (variance terms
        # first, then mean terms).
        scores = (
            (restored_i.var(axis=1, ddof=1) - 1.0) ** 2
            + (restored_j.var(axis=1, ddof=1) - 1.0) ** 2
        ) + (restored_i.mean(axis=1) ** 2 + restored_j.mean(axis=1) ** 2)
    else:
        # (block, m, 2) → var over the row axis: per-column strided
        # reductions, identical bits to a trial matrix materialized per θ.
        pair_variances = np.stack((restored_i, restored_j), axis=2).var(axis=1, ddof=1)
        index_i, index_j = pair_indices
        trial_variances = np.repeat(
            np.asarray(candidate_variances, dtype=float)[None, :], stop - start, axis=0
        )
        trial_variances[:, index_i] = pair_variances[:, 0]
        trial_variances[:, index_j] = pair_variances[:, 1]
        scores = np.sum((trial_variances - np.asarray(targets, dtype=float)) ** 2, axis=1)
    local = int(scores.argmin())
    return local, float(scores[local]), restored_i[local].copy(), restored_j[local].copy()


def best_inverse_rotation(
    column_i,
    column_j,
    angles_degrees,
    *,
    scorer: str = "unit_moments",
    candidate_variances=None,
    targets=None,
    pair_indices=None,
    memory_budget_bytes: int | None = None,
    backend=None,
) -> tuple[int, float, np.ndarray, np.ndarray]:
    """First-minimum scan of an inverse-rotation angle grid, block by block.

    Evaluates :func:`batched_inverse_rotations` over ``angles_degrees`` in
    blocks sized under ``memory_budget_bytes`` (per block the live
    temporaries are the two ``(block, m)`` restored arrays, the stacked
    matmul operands and the score vector — ~6 row-length floats per angle)
    and returns ``(angle_index, score, restored_i, restored_j)`` for the
    first angle attaining the minimum score.

    Scorers
    -------
    ``"unit_moments"``
        The brute-force attack's public-statistics score: squared deviation
        of both restored columns from unit variance and zero mean.
    ``"variance_profile"``
        The variance-fingerprint score: squared deviation of the full trial
        variance vector from ``targets``, where ``candidate_variances`` are
        the unrotated column variances and ``pair_indices`` names the two
        columns being re-measured.

    Per-angle restorations and scores depend only on that angle's rows, and
    per-block ``(argmin, min)`` partials merged with a strict ``<`` in block
    order reproduce the first-occurrence tie-break of the sequential scan —
    so any block size on any backend (serial or process-pool) returns the
    same bits, exact ties included.
    """
    column_i = as_float_vector(column_i, name="column_i")
    column_j = as_float_vector(column_j, name="column_j")
    if column_i.shape != column_j.shape:
        raise ValidationError(
            f"column_i and column_j must have the same length, got {column_i.size} and {column_j.size}"
        )
    angles = np.asarray(angles_degrees, dtype=float).ravel()
    if angles.size == 0:
        raise ValidationError("angles_degrees must not be empty")
    if scorer not in ("unit_moments", "variance_profile"):
        raise ValidationError(
            f"unknown scorer {scorer!r}; expected 'unit_moments' or 'variance_profile'"
        )
    if scorer == "variance_profile" and (
        candidate_variances is None or targets is None or pair_indices is None
    ):
        raise ValidationError(
            "the variance_profile scorer needs candidate_variances, targets and pair_indices"
        )
    backend = get_backend(backend)
    block = backend.resolve_block_size(
        angles.size, 6 * column_i.size * column_i.itemsize, memory_budget_bytes
    )
    kwargs = {"scorer": scorer}
    if scorer == "variance_profile":
        kwargs.update(
            candidate_variances=np.asarray(candidate_variances, dtype=float),
            targets=np.asarray(targets, dtype=float),
            pair_indices=(int(pair_indices[0]), int(pair_indices[1])),
        )
    best_index = -1
    best_score = np.inf
    best_restored: tuple[np.ndarray, np.ndarray] | None = None
    fallback = None
    for start, _stop, (local, score, restored_i, restored_j) in backend.imap_blocks(
        _angle_scan_worker,
        angles.size,
        block,
        arrays={"column_i": column_i, "column_j": column_j, "angles": angles},
        kwargs=kwargs,
    ):
        if fallback is None:
            fallback = (start + local, score, restored_i, restored_j)
        if score < best_score:
            best_score = score
            best_index = start + local
            best_restored = (restored_i, restored_j)
    if best_restored is None:
        # Every score was NaN (degenerate single-row input): return the first
        # block's argmin so the scan stays deterministic instead of crashing.
        best_index, best_score, *rest = fallback
        best_restored = (rest[0], rest[1])
    return best_index, best_score, best_restored[0], best_restored[1]
