"""Chunked, vectorized array kernels for the library's hot paths.

The seed implementation computed Manhattan/Chebyshev/Minkowski pairwise
distances through a single ``matrix[:, None, :] - matrix[None, :, :]``
broadcast, which materializes an ``(m, m, n)`` temporary — 1.6 GB for
``m = 5000, n = 8`` — before reducing it to the ``(m, m)`` result.  The
kernels here do the same arithmetic block-by-block under a configurable
memory budget, so peak memory is ``O(m²) + budget`` instead of ``O(m²·n)``,
and each block's reduction is performed element-for-element identically to
the full broadcast (the results are bitwise equal, not merely close).

All functions take and return plain ``numpy`` arrays.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_matrix, as_float_vector, check_positive
from ..exceptions import ValidationError

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "resolve_block_size",
    "euclidean_pairwise",
    "pairwise_distances_blocked",
    "cross_squared_distances",
    "assign_nearest_center",
    "max_abs_distance_difference",
    "batched_inverse_rotations",
    "radius_neighbors_blocked",
    "radius_neighbors_from_distances",
]

#: Default cap on the size of any temporary a chunked kernel materializes.
#: 64 MiB keeps blocks comfortably inside L3-ish working sets while still
#: being large enough that the per-block Python overhead is negligible.
DEFAULT_MEMORY_BUDGET_BYTES: int = 64 * 1024 * 1024


def resolve_block_size(
    n_rows: int,
    bytes_per_row: int,
    memory_budget_bytes: int | None = None,
) -> int:
    """Number of rows a chunked kernel may process per block.

    ``bytes_per_row`` is the size of the temporary one row of the block
    generates; the block size is clamped to ``[1, n_rows]`` so a budget
    smaller than a single row still makes progress one row at a time.
    """
    budget = (
        DEFAULT_MEMORY_BUDGET_BYTES if memory_budget_bytes is None else int(memory_budget_bytes)
    )
    if budget <= 0:
        raise ValidationError(f"memory_budget_bytes must be positive, got {budget}")
    if bytes_per_row <= 0:
        return n_rows
    return max(1, min(n_rows, budget // bytes_per_row))


def euclidean_pairwise(matrix: np.ndarray) -> np.ndarray:
    """Numerically safe vectorized Euclidean pairwise distances (Equation 6)."""
    squared_norms = np.sum(matrix**2, axis=1)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, 0.0)
    return distances


def pairwise_distances_blocked(
    data,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
) -> np.ndarray:
    """Full ``(m, m)`` pairwise-distance matrix, computed block-by-block.

    Supported metrics: ``euclidean`` (Gram-matrix trick, never needs the
    3-D temporary), ``manhattan``, ``chebyshev`` and ``minkowski`` (order
    ``p``).  The non-Euclidean metrics process row blocks sized so that the
    ``(block, m, n)`` difference temporary stays within
    ``memory_budget_bytes``.
    """
    matrix = as_float_matrix(data, name="data")
    metric = metric.lower()
    if metric == "euclidean":
        return euclidean_pairwise(matrix)
    if metric not in ("manhattan", "chebyshev", "minkowski"):
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of euclidean, manhattan, chebyshev, minkowski"
        )
    if metric == "minkowski":
        p = check_positive(p, name="p")

    m, n = matrix.shape
    out = np.empty((m, m), dtype=float)
    block = resolve_block_size(
        m, bytes_per_row=m * n * matrix.itemsize, memory_budget_bytes=memory_budget_bytes
    )
    scratch = np.empty((block, m, n), dtype=float)
    for start in range(0, m, block):
        stop = min(start + block, m)
        diff = scratch[: stop - start]
        np.subtract(matrix[start:stop, None, :], matrix[None, :, :], out=diff)
        np.abs(diff, out=diff)
        if metric == "manhattan":
            out[start:stop] = diff.sum(axis=2)
        elif metric == "chebyshev":
            out[start:stop] = diff.max(axis=2)
        else:
            np.power(diff, p, out=diff)
            out[start:stop] = diff.sum(axis=2) ** (1.0 / p)
    return out


def radius_neighbors_blocked(
    data,
    eps: float,
    *,
    metric: str = "euclidean",
    p: float = 2.0,
    memory_budget_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compressed neighbor lists ``{j : d(i, j) <= eps}`` for every row ``i``.

    Returns CSR-style ``(indptr, indices)``: row ``i``'s neighbors (self
    included, since ``d(i, i) = 0``) are ``indices[indptr[i]:indptr[i + 1]]``
    in ascending order.  Distances are computed block-row-wise under
    ``memory_budget_bytes``, so neither the full ``(m, m)`` distance matrix
    nor a dense boolean adjacency is ever materialized — peak memory is the
    budget plus the neighbor lists themselves.  Per-element arithmetic is
    identical to :func:`pairwise_distances_blocked`, so the neighbor sets
    match a dense threshold of that matrix.
    """
    matrix = as_float_matrix(data, name="data")
    eps = float(eps)
    metric = metric.lower()
    if metric not in ("euclidean", "manhattan", "chebyshev", "minkowski"):
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of euclidean, manhattan, chebyshev, minkowski"
        )
    if metric == "minkowski":
        p = check_positive(p, name="p")

    m, n = matrix.shape
    if metric == "euclidean":
        # Same expression as ``euclidean_pairwise`` (not einsum — the two
        # reductions differ in the last ulp) so the thresholded sets match
        # the dense path bitwise.
        squared_norms = np.sum(matrix**2, axis=1)
        # Live per block: two (block, m) float temporaries inside
        # ``_euclidean_block``, the distance block itself, and the boolean
        # threshold mask.
        block = resolve_block_size(
            m,
            bytes_per_row=(3 * matrix.itemsize + 1) * m,
            memory_budget_bytes=memory_budget_bytes,
        )
    else:
        block = resolve_block_size(
            m,
            bytes_per_row=(n + 2) * m * matrix.itemsize,
            memory_budget_bytes=memory_budget_bytes,
        )
        scratch = np.empty((block, m, n), dtype=float)

    counts = np.empty(m, dtype=np.intp)
    chunks: list[np.ndarray] = []
    for start in range(0, m, block):
        stop = min(start + block, m)
        if metric == "euclidean":
            distances = _euclidean_block(matrix, squared_norms, start, stop)
            # The dense path zeroes the diagonal; mirror that so round-off on
            # d(i, i) cannot drop an object from its own neighborhood.
            rows = np.arange(start, stop)
            distances[rows - start, rows] = 0.0
        else:
            diff = scratch[: stop - start]
            np.subtract(matrix[start:stop, None, :], matrix[None, :, :], out=diff)
            np.abs(diff, out=diff)
            if metric == "manhattan":
                distances = diff.sum(axis=2)
            elif metric == "chebyshev":
                distances = diff.max(axis=2)
            else:
                np.power(diff, p, out=diff)
                distances = diff.sum(axis=2) ** (1.0 / p)
        local_rows, local_cols = np.nonzero(distances <= eps)
        counts[start:stop] = np.bincount(local_rows, minlength=stop - start)
        chunks.append(local_cols.astype(np.intp, copy=False))
        # Drop the block before the next one is built — otherwise the old
        # distances overlap the new temporaries and the peak grows by a block.
        del distances, local_rows, local_cols

    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
    return indptr, indices


def radius_neighbors_from_distances(
    distances,
    eps: float,
    *,
    memory_budget_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR neighbor lists from a precomputed distance matrix.

    Same contract as :func:`radius_neighbors_blocked`, but thresholds an
    existing ``(m, m)`` matrix block-row-wise so only one boolean block is
    live at a time (the matrix's own diagonal decides self-membership,
    matching a dense ``distances <= eps`` comparison exactly).
    """
    distances = as_float_matrix(distances, name="distances")
    if distances.shape[0] != distances.shape[1]:
        raise ValidationError(f"distances must be square, got {distances.shape}")
    eps = float(eps)
    m = distances.shape[0]
    block = resolve_block_size(
        m, bytes_per_row=2 * m * distances.itemsize, memory_budget_bytes=memory_budget_bytes
    )
    counts = np.empty(m, dtype=np.intp)
    chunks: list[np.ndarray] = []
    for start in range(0, m, block):
        stop = min(start + block, m)
        local_rows, local_cols = np.nonzero(distances[start:stop] <= eps)
        counts[start:stop] = np.bincount(local_rows, minlength=stop - start)
        chunks.append(local_cols.astype(np.intp, copy=False))
    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
    return indptr, indices


def cross_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``(m, k)`` squared Euclidean distances via ``‖x‖² + ‖c‖² − 2x·c``.

    Replaces the ``(m, k, n)`` broadcast the seed k-means assignment used
    with one matrix product; negative round-off is clamped to zero.
    """
    point_norms = np.einsum("ij,ij->i", points, points)
    center_norms = np.einsum("ij,ij->i", centers, centers)
    squared = point_norms[:, None] + center_norms[None, :] - 2.0 * (points @ centers.T)
    np.maximum(squared, 0.0, out=squared)
    return squared


def assign_nearest_center(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for every point (ties go to the lowest index).

    Unlike the explicit ``(m, k, n)`` difference broadcast, the Gram-matrix
    form loses precision when ``‖x‖²`` dwarfs the squared distances (data far
    from the origin), which could flip assignments between near-equidistant
    centers.  Distances are translation-invariant, so both operands are
    shifted by the center mean first — that keeps the norms on the order of
    the distances themselves and makes the fast path safe for un-normalized
    inputs too.
    """
    shift = centers.mean(axis=0)
    return cross_squared_distances(points - shift, centers - shift).argmin(axis=1)


def max_abs_distance_difference(
    first,
    second,
    *,
    memory_budget_bytes: int | None = None,
) -> float:
    """``max |d(i,j) − d'(i,j)|`` over all pairs, without two full matrices.

    This is the Theorem 2 isometry check: the seed pipeline materialized the
    complete dissimilarity matrices of both datasets (two ``(m, m)`` arrays
    plus their difference) just to take one maximum.  Here each row block's
    Euclidean distances are computed for both datasets, compared, and
    discarded, so peak memory is bounded by the budget regardless of ``m``.
    """
    first = as_float_matrix(first, name="first")
    second = as_float_matrix(second, name="second")
    if first.shape[0] != second.shape[0]:
        raise ValidationError(
            f"first and second must describe the same objects, got {first.shape[0]} "
            f"and {second.shape[0]} rows"
        )
    m = first.shape[0]
    first_norms = np.einsum("ij,ij->i", first, first)
    second_norms = np.einsum("ij,ij->i", second, second)
    # Each block materializes ~4 (block, m) temporaries (two squared-distance
    # blocks and scratch); size the block accordingly.
    block = resolve_block_size(
        m, bytes_per_row=4 * m * first.itemsize, memory_budget_bytes=memory_budget_bytes
    )
    worst = 0.0
    for start in range(0, m, block):
        stop = min(start + block, m)
        rows = np.arange(start, stop)
        distances_first = _euclidean_block(first, first_norms, start, stop)
        distances_second = _euclidean_block(second, second_norms, start, stop)
        # The full-matrix computation zeroes the diagonal; mirror that here so
        # round-off on d(i, i) cannot masquerade as distortion.
        distances_first[rows - start, rows] = 0.0
        distances_second[rows - start, rows] = 0.0
        np.abs(distances_first - distances_second, out=distances_first)
        worst = max(worst, float(distances_first.max()))
    return worst


def _euclidean_block(
    matrix: np.ndarray, squared_norms: np.ndarray, start: int, stop: int
) -> np.ndarray:
    # In-place staging of ‖x‖² + ‖y‖² − 2x·y: bitwise identical to the
    # one-expression form (scaling by 2 is exact, the subtraction sees the
    # same operands) but keeps only two (block, m) temporaries live.
    cross = matrix[start:stop] @ matrix.T
    squared = squared_norms[start:stop, None] + squared_norms[None, :]
    cross *= 2.0
    squared -= cross
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared, out=squared)


def batched_inverse_rotations(
    column_i,
    column_j,
    angles_degrees,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply ``R(θ)⁻¹ = R(θ)ᵀ`` to a column pair for a whole grid of angles.

    Returns two ``(n_angles, m)`` arrays — the candidate restorations of the
    pair under every angle — replacing the brute-force attack's per-θ Python
    loop with one stacked matrix product.  The stacked product goes through
    the same BLAS kernel as the per-θ ``R(θ)ᵀ @ stacked`` products it
    replaces, so the restorations are bitwise identical and exact score
    ties (which arise structurally, e.g. θ vs θ+90° under column
    swap/negation) resolve to the same angle as the seed scan.
    """
    column_i = as_float_vector(column_i, name="column_i")
    column_j = as_float_vector(column_j, name="column_j")
    if column_i.shape != column_j.shape:
        raise ValidationError(
            f"column_i and column_j must have the same length, got {column_i.size} and {column_j.size}"
        )
    theta = np.deg2rad(np.asarray(angles_degrees, dtype=float).ravel())
    cos = np.cos(theta)
    sin = np.sin(theta)
    # The paper's R(θ) is clockwise, [[c, s], [−s, c]], so R(θ)ᵀ = [[c, −s], [s, c]].
    transposed = np.empty((theta.size, 2, 2), dtype=float)
    transposed[:, 0, 0] = cos
    transposed[:, 0, 1] = -sin
    transposed[:, 1, 0] = sin
    transposed[:, 1, 1] = cos
    restored = transposed @ np.vstack([column_i, column_j])
    return restored[:, 0, :], restored[:, 1, :]
