"""Pluggable execution backends for the perf-layer kernels.

Every chunked kernel in :mod:`repro.perf` reduces a sequence of independent
blocks — distance row-blocks, streamed moment tiles, angle-grid blocks — and
merges the per-block partials in block order.  PRs 1–5 made each of those
reductions *chunk-invariant*: the same bits come out for any block size,
because per-block arithmetic is elementwise (or exactly rounded) and the
merge order is fixed.  That property is exactly what makes the blocks safe
to fan out to workers: compute each block anywhere, merge in block order,
and the result is bitwise identical to the serial scan.

This module owns the fan-out.  An :class:`ExecutionBackend` turns
``(worker fn, n_items, block size)`` into an ordered stream of
``(start, stop, result)`` triples:

* :class:`SerialBackend` — runs every block inline; the default and the
  reference behaviour.
* :class:`ProcessPoolBackend` — ships the input arrays to worker processes
  through :mod:`multiprocessing.shared_memory` (one publication per call,
  no per-task array pickling), runs one task per block on a persistent
  process pool, and yields results in ascending block order regardless of
  completion order.  Because the merge order is fixed and the per-block
  arithmetic is untouched, its results are **bitwise equal** to
  :class:`SerialBackend` for every routed kernel.
* :class:`NumbaBackend` — an optional serial backend that dispatches to a
  worker function's ``numba_variant`` when one exists.  Guarded by an
  import check; jitted variants reassociate reductions and are therefore
  *outside* the bitwise contract (see PERFORMANCE.md).

Memory contract
---------------
``ExecutionBackend.resolve_block_size`` divides the caller's
``memory_budget_bytes`` by the number of active workers
(``n_consumers`` in :func:`repro.perf.kernels.resolve_block_size`), so N
blocks being reduced concurrently never materialize more temporary bytes
than the serial envelope.  The in-flight submission window is bounded
(``2 × workers``), so queued results cannot pile up past the same order of
magnitude.

Defaults and the environment
----------------------------
Kernels resolve ``backend=None`` through :func:`default_backend`, which
reads ``REPRO_BACKEND`` (``serial`` | ``process-pool`` | ``numba``) and
``REPRO_KERNEL_WORKERS``.  Inside a worker process the default is always
serial — a kernel running in a pool worker must never recursively fan out.
Backends returned for string specs are shared per-process singletons; only
explicitly constructed :class:`ProcessPoolBackend` instances need
:meth:`~ProcessPoolBackend.close`.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from importlib.util import find_spec
from itertools import islice
from multiprocessing import shared_memory

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ValidationError

__all__ = [
    "BACKEND_ENV_VAR",
    "WORKERS_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "NumbaBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "is_numba_available",
    "iter_block_bounds",
    "normalize_backend_name",
]

#: Environment variable naming the default backend for ``backend=None`` calls.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Environment variable with the default worker count for parallel backends.
WORKERS_ENV_VAR = "REPRO_KERNEL_WORKERS"


def iter_block_bounds(n_items: int, block_items: int):
    """Yield ``(start, stop)`` bounds covering ``range(n_items)`` in blocks."""
    block_items = max(1, int(block_items))
    for start in range(0, int(n_items), block_items):
        yield start, min(start + block_items, int(n_items))


# --------------------------------------------------------------------------- #
# Worker-side plumbing (module level so process pools can pickle it)
# --------------------------------------------------------------------------- #
def _materialize(value):
    """Deep-copy any array view in ``value`` so it owns its buffer.

    Worker results may be views into the shared-memory segments; those
    segments are closed before the result is pickled back, so every
    non-owning array must be copied first.
    """
    if isinstance(value, np.ndarray):
        return value if value.flags.owndata else value.copy()
    if isinstance(value, tuple):
        return tuple(_materialize(item) for item in value)
    if isinstance(value, list):
        return [_materialize(item) for item in value]
    if isinstance(value, dict):
        return {key: _materialize(item) for key, item in value.items()}
    return value


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the segment with the resource tracker (until the
    # ``track=`` parameter of 3.13), but the tracker is shared with the
    # parent under fork and the parent already registered the segment at
    # creation — a second registration per worker means duplicate
    # unregisters and tracker KeyErrors at unlink.  The parent owns the
    # segment's lifetime outright, so suppress registration while attaching.
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach_and_run(fn, specs: dict, start: int, stop: int, kwargs: dict):
    """Attach the published arrays and run one block task in a pool worker."""
    arrays: dict[str, np.ndarray] = {}
    segments: list[shared_memory.SharedMemory] = []
    try:
        for name, spec in specs.items():
            if spec["shm"] is None:
                arrays[name] = spec["data"]
                continue
            segment = _attach_segment(spec["shm"])
            segments.append(segment)
            view = np.ndarray(spec["shape"], dtype=np.dtype(spec["dtype"]), buffer=segment.buf)
            view.setflags(write=False)
            arrays[name] = view
        result = _materialize(fn(arrays, start, stop, **kwargs))
    finally:
        arrays.clear()
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a leaked view; freed at exit
                pass
    return result


def _worker_initializer() -> None:
    # A kernel running inside a pool worker must never recursively fan out:
    # pin the environment default to serial for this process and its
    # children (default_backend() also checks parent_process() directly).
    os.environ[BACKEND_ENV_VAR] = "serial"


def _publish_arrays(arrays: dict) -> tuple[dict, list[shared_memory.SharedMemory]]:
    """Copy the input arrays into shared memory; return attach specs + segments."""
    specs: dict[str, dict] = {}
    segments: list[shared_memory.SharedMemory] = []
    for name, value in arrays.items():
        array = np.ascontiguousarray(value)
        if array.nbytes == 0:
            # Zero-byte segments are invalid; ship the (empty) array itself.
            specs[name] = {"shm": None, "data": array}
            continue
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[...] = array
        segments.append(segment)
        specs[name] = {
            "shm": segment.name,
            "shape": array.shape,
            "dtype": array.dtype.str,
            "data": None,
        }
    return specs, segments


def _release_segments(segments) -> None:
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a leaked view; freed at exit
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# --------------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------------- #
class ExecutionBackend:
    """How a chunked kernel executes its blocks.

    A worker function has the signature
    ``fn(arrays: dict[str, np.ndarray], start: int, stop: int, **kwargs)``
    and must be a module-level callable (process backends pickle it by
    reference).  ``arrays`` are shared read-only inputs; ``start:stop`` is
    the item range of one block; the return value must be picklable.

    :meth:`imap_blocks` yields ``(start, stop, result)`` in **ascending
    block order** — the fixed merge order that keeps every routed reduction
    bitwise equal to its serial scan.
    """

    name = "base"

    @property
    def workers(self) -> int:
        """Number of blocks this backend reduces concurrently."""
        return 1

    def resolve_block_size(
        self,
        n_items: int,
        bytes_per_item: int,
        memory_budget_bytes: int | None = None,
    ) -> int:
        """Block size under the budget, divided across this backend's workers.

        With N workers each holding one block's temporaries, dividing the
        budget by N keeps the *summed* live bytes within the serial
        envelope — the global ``memory_budget_bytes`` contract.
        """
        from .kernels import resolve_block_size

        return resolve_block_size(
            n_items, bytes_per_item, memory_budget_bytes, n_consumers=self.workers
        )

    def imap_blocks(self, fn, n_items: int, block_items: int, *, arrays=None, kwargs=None):
        """Yield ``(start, stop, fn(arrays, start, stop, **kwargs))`` in order."""
        arrays = arrays or {}
        kwargs = kwargs or {}
        for start, stop in iter_block_bounds(n_items, block_items):
            yield start, stop, self._call(fn, arrays, start, stop, kwargs)

    def map_blocks(self, fn, n_items: int, block_items: int, *, arrays=None, kwargs=None):
        """List of per-block results, in block order."""
        return [
            result
            for _, _, result in self.imap_blocks(
                fn, n_items, block_items, arrays=arrays, kwargs=kwargs
            )
        ]

    def _call(self, fn, arrays, start, stop, kwargs):
        return fn(arrays, start, stop, **kwargs)

    def close(self) -> None:
        """Release any pooled resources (no-op for inline backends)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Run every block inline in the calling process (the default)."""

    name = "serial"


class ProcessPoolBackend(ExecutionBackend):
    """Fan blocks out to a persistent process pool via shared memory.

    Input arrays are published to :mod:`multiprocessing.shared_memory` once
    per call; each task ships only the segment descriptors, the block bounds
    and the (small) ``kwargs`` — never the arrays themselves.  Results are
    yielded in ascending block order, so every reduction built on
    :meth:`imap_blocks` merges exactly like the serial scan and stays
    bitwise identical to it.

    The pool is created lazily on the first multi-block call and reused
    until :meth:`close`.  Single-block calls run inline — tiny inputs never
    pay the round-trip.
    """

    name = "process-pool"

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self._workers = check_integer_in_range(workers, name="workers", minimum=1)
        self._pool: ProcessPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers, initializer=_worker_initializer
            )
        return self._pool

    def imap_blocks(self, fn, n_items: int, block_items: int, *, arrays=None, kwargs=None):
        arrays = arrays or {}
        kwargs = kwargs or {}
        bounds = list(iter_block_bounds(n_items, block_items))
        if len(bounds) <= 1 or self._workers == 1:
            for start, stop in bounds:
                yield start, stop, fn(arrays, start, stop, **kwargs)
            return
        specs, segments = _publish_arrays(arrays)
        pending: deque = deque()
        try:
            pool = self._ensure_pool()
            iterator = iter(bounds)
            # Bounded in-flight window: enough tasks to keep the workers
            # busy, few enough that queued results stay within the same
            # order of magnitude as one budget's worth of blocks.
            for start, stop in islice(iterator, 2 * self._workers):
                pending.append(
                    (start, stop, pool.submit(_attach_and_run, fn, specs, start, stop, kwargs))
                )
            while pending:
                start, stop, future = pending.popleft()
                for next_start, next_stop in islice(iterator, 1):
                    pending.append(
                        (
                            next_start,
                            next_stop,
                            pool.submit(
                                _attach_and_run, fn, specs, next_start, next_stop, kwargs
                            ),
                        )
                    )
                # Consuming strictly in submission (= block) order fixes the
                # merge order, whatever order the workers finish in.
                yield start, stop, future.result()
        finally:
            # On early exit (error or abandoned generator) let in-flight
            # tasks drain before the segments are unlinked under them.
            if pending:
                for _, _, future in pending:
                    future.cancel()
                wait([future for _, _, future in pending])
            _release_segments(segments)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def is_numba_available() -> bool:
    """Whether the optional ``numba`` package can be imported."""
    try:
        return find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - broken installs
        return False


class NumbaBackend(SerialBackend):
    """Serial execution that prefers a worker's jitted ``numba_variant``.

    Raises :class:`~repro.exceptions.ValidationError` when ``numba`` is not
    installed, so callers can fall back explicitly instead of crashing at
    first use.  Jitted variants reassociate their reductions, so this
    backend is **not** part of the serial/process-pool bitwise contract —
    results are numerically close, not bit-equal (see PERFORMANCE.md).
    """

    name = "numba"

    def __init__(self) -> None:
        if not is_numba_available():
            raise ValidationError(
                "the 'numba' backend requires the optional numba package, which is not "
                "installed; use backend='serial' or backend='process-pool' instead"
            )

    def _call(self, fn, arrays, start, stop, kwargs):
        variant = getattr(fn, "numba_variant", None)
        if variant is not None:
            return variant(arrays, start, stop, **kwargs)
        return fn(arrays, start, stop, **kwargs)


# --------------------------------------------------------------------------- #
# Registry and defaults
# --------------------------------------------------------------------------- #
_BACKEND_NAMES = ("serial", "process-pool", "numba")

#: Per-process shared instances for string specs, keyed by (name, workers).
_SHARED: dict[tuple, ExecutionBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (availability not implied for numba)."""
    return _BACKEND_NAMES


def normalize_backend_name(name: str) -> str:
    """Canonical backend name for ``name``; raises on unknown specs."""
    normalized = str(name).strip().lower().replace("_", "-")
    if normalized == "process":
        normalized = "process-pool"
    if normalized not in _BACKEND_NAMES:
        known = ", ".join(_BACKEND_NAMES)
        raise ValidationError(f"unknown backend {name!r}; expected one of {known}")
    return normalized


def _shared_instance(name: str, workers: int | None) -> ExecutionBackend:
    if name == "process-pool":
        resolved = (
            check_integer_in_range(workers, name="workers", minimum=1)
            if workers is not None
            else (os.cpu_count() or 1)
        )
        key = (name, resolved)
        if key not in _SHARED:
            _SHARED[key] = ProcessPoolBackend(workers=resolved)
        return _SHARED[key]
    # Serial and numba run inline; a worker count is meaningless and ignored.
    key = (name, 1)
    if key not in _SHARED:
        _SHARED[key] = SerialBackend() if name == "serial" else NumbaBackend()
    return _SHARED[key]


def default_backend() -> ExecutionBackend:
    """The backend used when a kernel is called with ``backend=None``.

    Resolution order: inside a pool worker → always serial (no recursive
    fan-out); otherwise ``$REPRO_BACKEND`` (with ``$REPRO_KERNEL_WORKERS``)
    when set; otherwise serial.  Re-read on every call, so tests and
    long-lived processes may flip the environment at any time.
    """
    if multiprocessing.parent_process() is not None:
        return _shared_instance("serial", None)
    name = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if not name:
        return _shared_instance("serial", None)
    workers_env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    workers = None
    if workers_env:
        try:
            workers = int(workers_env)
        except ValueError:
            raise ValidationError(
                f"${WORKERS_ENV_VAR} must be an integer, got {workers_env!r}"
            ) from None
    return _shared_instance(normalize_backend_name(name), workers)


def get_backend(backend=None, *, workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend spec to an :class:`ExecutionBackend`.

    ``backend`` may be an instance (returned as-is), a name from
    :func:`available_backends`, or ``None``.  ``None`` resolves through
    :func:`default_backend` — unless ``workers`` is given, which implies
    ``process-pool`` (the CLI's ``--kernel-workers`` shorthand).  String
    specs return shared per-process instances; don't ``close()`` them.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if workers is not None:
            return _shared_instance("process-pool", workers)
        return default_backend()
    if isinstance(backend, str):
        return _shared_instance(normalize_backend_name(backend), workers)
    raise ValidationError(
        f"backend must be an ExecutionBackend, a name or None, got {type(backend).__name__}"
    )
