"""A shared cache for pairwise-distance matrices.

Every distance-based consumer in the library — k-medoids, hierarchical
clustering, DBSCAN, the pipeline's Corollary 1 equivalence checks — starts
from the same ``(m, m)`` dissimilarity matrix of some dataset under some
metric.  A pipeline run that verifies three algorithms therefore used to
compute the identical matrix six times (three algorithms × the normalized
and the released data).  :class:`DistanceCache` keys each matrix on the
*content* of the data plus the metric, computes it once through the chunked
kernels, and hands the same read-only array to every consumer.

Content keying (a SHA-256 of the raw buffer) costs O(m·n) — noise next to
the O(m²·n) distance computation it saves — and makes the cache safe across
copies: the released ``DataMatrix`` and a fresh ``.values.copy()`` of it hit
the same entry.  Cached results are byte-identical to what the uncached path
computes, because chunking never changes the per-element arithmetic (see
:mod:`repro.perf.kernels`).

Entries are kept in an LRU of ``max_entries`` matrices so a long-lived cache
(e.g. one attached to a pipeline that runs many datasets) cannot grow
without bound.  All operations are thread-safe, and misses compute *outside*
the lock so unrelated consumers never serialize behind a long distance
computation (two threads missing the same key may both compute it; the
first insert wins and both observe the same stored array).

The cache itself is strictly **per-process**: it sits *above* the execution
backend seam (:mod:`repro.perf.backends`), so a cache built with
``backend="process-pool"`` stays in the parent and only the blocked kernel
underneath a miss fans out.  Kernel workers never see a cache object, and
shipping one across processes would silently fork its contents into
independent copies — so pickling a :class:`DistanceCache` raises rather
than double-computing behind your back.  Process-pool *trial* executors
(:mod:`repro.experiments.runner`, :mod:`repro.pipeline.audit`) give each
worker its own cache instead.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from .._validation import as_float_matrix
from ..exceptions import ValidationError
from .kernels import pairwise_distances_blocked

__all__ = ["DistanceCache"]


class DistanceCache:
    """Content-addressed LRU cache of pairwise-distance matrices.

    Parameters
    ----------
    max_entries:
        Maximum number of matrices kept (least-recently-used eviction);
        ``None`` disables eviction.
    memory_budget_bytes:
        Budget forwarded to the chunked distance kernels on a miss.
    backend:
        Execution backend spec forwarded to the chunked kernels on a miss
        (see :mod:`repro.perf.backends`).  Cached bytes are identical for
        every backend, so consumers cannot observe which one filled an
        entry.  The cache object itself always stays in this process.
    """

    def __init__(
        self,
        *,
        max_entries: int | None = 8,
        memory_budget_bytes: int | None = None,
        backend=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self.memory_budget_bytes = memory_budget_bytes
        self.backend = backend
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __reduce__(self):
        # A cache that crossed a process boundary would silently split into
        # independent copies, each recomputing what the other already holds.
        # Fail loudly instead; kernel workers below the backend seam never
        # need a cache, and trial pools build one per worker.
        raise TypeError(
            "DistanceCache is per-process and cannot be pickled; build one cache per "
            "worker process instead (see repro.perf.cache)"
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def fingerprint(data) -> str:
        """SHA-256 content digest of a matrix (shape/dtype-qualified)."""
        matrix = np.ascontiguousarray(as_float_matrix(data, name="data"))
        digest = hashlib.sha256()
        digest.update(str((matrix.shape, matrix.dtype.str)).encode())
        digest.update(matrix.tobytes())
        return digest.hexdigest()

    def pairwise(self, data, *, metric: str = "euclidean", p: float = 2.0) -> np.ndarray:
        """The ``(m, m)`` distance matrix of ``data`` under ``metric``.

        The returned array is shared and marked read-only — ``.copy()`` it
        before mutating.  Byte-identical to
        :func:`repro.metrics.distance.pairwise_distances` on the same input.
        """
        matrix = as_float_matrix(data, name="data")
        key = self._key(matrix, metric, p)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
        # Compute outside the lock: a slow miss must not block hits (or
        # other misses) on unrelated keys.
        distances = pairwise_distances_blocked(
            matrix,
            metric=key[0],
            p=p,
            memory_budget_bytes=self.memory_budget_bytes,
            backend=self.backend,
        )
        distances.setflags(write=False)
        with self._lock:
            stored = self._entries.setdefault(key, distances)
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            return stored

    def peek(self, data, *, metric: str = "euclidean", p: float = 2.0) -> np.ndarray | None:
        """The cached matrix for ``data`` under ``metric``, or ``None``.

        Never computes.  Consumers with a cheaper matrix-free path (DBSCAN's
        chunked neighborhoods) use this to reuse a matrix another consumer
        already paid for without forcing the O(m²) materialization
        themselves.
        """
        matrix = as_float_matrix(data, name="data")
        key = self._key(matrix, metric, p)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            return cached

    @staticmethod
    def _key(matrix: np.ndarray, metric: str, p: float) -> tuple:
        metric = str(metric).lower()
        order = float(p) if metric == "minkowski" else None
        return (metric, order, DistanceCache.fingerprint(matrix))

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> dict:
        """Cache counters: ``hits``, ``misses`` (= matrices computed), ``entries``."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses, "entries": len(self._entries)}

    @property
    def nbytes(self) -> int:
        """Total bytes held by the cached matrices."""
        with self._lock:
            return int(sum(entry.nbytes for entry in self._entries.values()))

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
