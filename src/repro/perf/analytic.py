"""Closed-form solver for the variance-vs-θ threshold crossings (Figures 2/3).

Both difference-variance curves of a rotated attribute pair have the form

.. math::

    f(\\theta) = A\\,(1-\\cos\\theta)^2 + B\\,\\sin^2\\theta
               + C\\,(1-\\cos\\theta)\\sin\\theta

with ``(A, B, C) = (σ_i², σ_j², −2σ_ij)`` for ``Var(A_i − A_i')`` and
``(σ_j², σ_i², +2σ_ij)`` for ``Var(A_j − A_j')``.  Substituting the
half-angle parameter ``t = tan(θ/2)`` (so ``1 − cosθ = 2t²/(1+t²)`` and
``sinθ = 2t/(1+t²)``) collapses the curve to a rational function:

.. math::

    f(\\theta) = \\frac{4t^2\\,(A t^2 + C t + B)}{(1+t^2)^2}

so the threshold crossings ``f(θ) = ρ`` are exactly the real roots of the
quartic

.. math::

    (4A-\\rho)\\,t^4 + 4C\\,t^3 + (4B-2\\rho)\\,t^2 - \\rho = 0

(θ = 180°, i.e. ``t → ∞``, is a crossing precisely when the leading
coefficient vanishes).  The roots are found via the companion matrix
(:func:`numpy.roots`) and polished to machine precision with a few Newton
steps on ``f(θ) − ρ`` directly, so the reported interval end points agree
with the seed grid-plus-bisection solver to ≤ 1e-12 degrees while costing
two 4×4 eigenvalue problems instead of a 7200-point grid sweep plus ~80
bisection probes that each re-estimated the column variances.

The admissible set ``{θ : f(θ) ≥ ρ}`` is assembled by midpoint-testing the
arcs between consecutive crossings, and the security range is the circular
intersection of the two curves' admissible sets.  Intervals are circular:
an interval ``(start, end)`` with ``end > 360`` wraps through 0°.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_vector
from ..exceptions import ValidationError

__all__ = [
    "pair_moments",
    "variance_curves_from_moments",
    "threshold_crossings",
    "curve_admissible_intervals",
    "intersect_circular_intervals",
    "solve_admissible_angles",
]

#: Two crossing candidates closer than this (degrees) are treated as one.
_MERGE_TOLERANCE_DEGREES = 1e-9


def pair_moments(attribute_i, attribute_j, *, ddof: int = 1) -> tuple[float, float, float]:
    """``(σ_i², σ_j², σ_ij)`` of an attribute pair, computed once.

    These three scalars fully determine both variance-difference curves
    (Eq. 8), so every downstream evaluation — curve sampling, threshold
    crossings, grid probes — can reuse them instead of re-reducing the
    columns.  The reduction goes through the chunk-invariant tiled
    accumulator of :mod:`repro.perf.streaming`, so the streaming release
    pipeline obtains bitwise-identical moments (and therefore identical
    security ranges and sampled angles) from row chunks of any size.
    """
    from .streaming import streamed_pair_moments

    attribute_i = as_float_vector(attribute_i, name="attribute_i")
    attribute_j = as_float_vector(attribute_j, name="attribute_j")
    if attribute_i.shape != attribute_j.shape:
        raise ValidationError(
            "attribute_i and attribute_j must have the same length, "
            f"got {attribute_i.size} and {attribute_j.size}"
        )
    if attribute_i.size - ddof <= 0:
        raise ValidationError("not enough observations for the requested ddof")
    return streamed_pair_moments(attribute_i, attribute_j, ddof=ddof)


def variance_curves_from_moments(
    variance_i: float,
    variance_j: float,
    covariance: float,
    theta_degrees,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate both closed-form curves of Eq. 8 from cached moments."""
    theta = np.deg2rad(np.asarray(theta_degrees, dtype=float))
    one_minus_cos = 1.0 - np.cos(theta)
    sin_theta = np.sin(theta)
    cross = one_minus_cos * sin_theta * covariance
    curve_i = one_minus_cos**2 * variance_i + sin_theta**2 * variance_j - 2.0 * cross
    curve_j = sin_theta**2 * variance_i + one_minus_cos**2 * variance_j + 2.0 * cross
    return curve_i, curve_j


def _curve(a: float, b: float, c: float, theta_radians):
    """``f(θ) = A(1−cosθ)² + B sin²θ + C(1−cosθ)sinθ``."""
    one_minus_cos = 1.0 - np.cos(theta_radians)
    sin_theta = np.sin(theta_radians)
    return a * one_minus_cos**2 + b * sin_theta**2 + c * one_minus_cos * sin_theta


def _curve_derivative(a: float, b: float, c: float, theta_radians):
    """``f'(θ)`` in radians: 2A(1−c)s + 2Bsc + C(s² + c − c²)."""
    cos_theta = np.cos(theta_radians)
    sin_theta = np.sin(theta_radians)
    return (
        2.0 * a * (1.0 - cos_theta) * sin_theta
        + 2.0 * b * sin_theta * cos_theta
        + c * (sin_theta**2 + cos_theta - cos_theta**2)
    )


def threshold_crossings(a: float, b: float, c: float, rho: float) -> np.ndarray:
    """All angles (degrees, in ``[0, 360)``) where ``f(θ) = ρ``.

    Solves the half-angle quartic and polishes every real root with Newton
    iterations on ``f(θ) − ρ``; tangencies (double roots) are kept — they
    partition the circle without changing the admissible set's measure.
    """
    scale = max(abs(a), abs(b), abs(c), abs(rho), 1e-300)
    coefficients = np.array([4.0 * a - rho, 4.0 * c, 4.0 * b - 2.0 * rho, 0.0, -rho], dtype=float)

    candidates: list[float] = []
    # t → ∞ (θ = 180°) is a root exactly when the quartic degenerates.
    if abs(coefficients[0]) <= 1e-12 * scale:
        candidates.append(np.pi)
    leading = np.flatnonzero(np.abs(coefficients) > 1e-300)
    if leading.size:
        roots = np.roots(coefficients[leading[0] :])
        real = roots[np.abs(roots.imag) <= 1e-8 * (1.0 + np.abs(roots.real))].real
        candidates.extend(2.0 * np.arctan(real))

    polished: list[float] = []
    for theta in candidates:
        theta = _newton_polish(a, b, c, rho, float(theta))
        # Keep only genuine crossings (np.roots noise on near-degenerate
        # quartics can produce points that never touch the threshold).
        if abs(_curve(a, b, c, theta) - rho) <= 1e-9 * scale:
            polished.append(np.degrees(theta) % 360.0)
    if not polished:
        return np.empty(0, dtype=float)
    ordered = np.sort(np.asarray(polished, dtype=float))
    keep = np.ones(ordered.size, dtype=bool)
    keep[1:] = np.diff(ordered) > _MERGE_TOLERANCE_DEGREES
    # 0 and 360 are the same angle.
    if keep.sum() > 1 and (ordered[-1] - ordered[0]) >= 360.0 - _MERGE_TOLERANCE_DEGREES:
        keep[-1] = False
    return ordered[keep]


def _newton_polish(
    a: float, b: float, c: float, rho: float, theta: float, *, iterations: int = 50
) -> float:
    for _ in range(iterations):
        residual = _curve(a, b, c, theta) - rho
        if residual == 0.0:
            break
        slope = _curve_derivative(a, b, c, theta)
        if slope == 0.0:
            break
        step = residual / slope
        if abs(step) > 0.1:  # stay in this root's basin (radians)
            step = np.copysign(0.1, step)
        theta -= step
        if abs(step) <= 1e-16 * max(abs(theta), 1.0):
            break
    return theta


def curve_admissible_intervals(
    a: float, b: float, c: float, rho: float
) -> list[tuple[float, float]]:
    """Circular intervals where ``f(θ) ≥ ρ``; an end > 360 wraps through 0°."""
    crossings = threshold_crossings(a, b, c, rho)
    if crossings.size == 0:
        # No crossing: f − ρ keeps one sign over the whole circle.
        if float(_curve(a, b, c, np.pi)) >= rho:
            return [(0.0, 360.0)]
        return []
    boundaries = np.append(crossings, crossings[0] + 360.0)
    intervals: list[tuple[float, float]] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end - start <= _MERGE_TOLERANCE_DEGREES:
            continue
        midpoint = np.deg2rad((start + end) / 2.0)
        if float(_curve(a, b, c, midpoint)) >= rho:
            if intervals and abs(intervals[-1][1] - start) <= _MERGE_TOLERANCE_DEGREES:
                intervals[-1] = (intervals[-1][0], float(end))
            else:
                intervals.append((float(start), float(end)))
    # A crossing where f only *touches* ρ from below (a tangency, e.g. ρ
    # equal to the curve maximum) sits between two inadmissible arcs but is
    # itself admissible: keep it as a degenerate zero-measure interval so an
    # exact-threshold pair still has a security range.
    for crossing in crossings:
        contained = any(
            start - _MERGE_TOLERANCE_DEGREES <= candidate <= end + _MERGE_TOLERANCE_DEGREES
            for start, end in intervals
            for candidate in (crossing, crossing + 360.0)
        )
        if not contained:
            intervals.append((float(crossing), float(crossing)))
    intervals.sort()
    # The arc crossing the 0°/360° seam was walked with end = first + 360;
    # normalize every interval to start in [0, 360).
    return [(start % 360.0, start % 360.0 + (end - start)) for start, end in intervals]


def intersect_circular_intervals(
    first: list[tuple[float, float]],
    second: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Intersection of two circular interval sets (wrapping handled)."""
    segments_first = _unroll(first)
    segments_second = _unroll(second)
    overlaps: list[tuple[float, float]] = []
    for start_a, end_a in segments_first:
        for start_b, end_b in segments_second:
            start = max(start_a, start_b)
            end = min(end_a, end_b)
            # Inclusive intervals: a zero-length overlap is a genuine shared
            # angle (it only arises from tangencies or exactly coincident
            # end points, e.g. ρ at the curve maximum).
            if end >= start:
                overlaps.append((start, end))
    overlaps.sort()
    merged: list[tuple[float, float]] = []
    for start, end in overlaps:
        if merged and start - merged[-1][1] <= _MERGE_TOLERANCE_DEGREES:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return _rewrap(merged)


def _unroll(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Split wrapped circular intervals into plain segments inside [0, 360]."""
    segments: list[tuple[float, float]] = []
    for start, end in intervals:
        if end <= 360.0:
            segments.append((start, end))
        else:
            segments.append((start, 360.0))
            segments.append((0.0, end - 360.0))
    return sorted(segments)


def _rewrap(segments: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Re-join a leading [0, x] and trailing [y, 360] segment across the seam."""
    if (
        len(segments) >= 2
        and segments[0][0] <= _MERGE_TOLERANCE_DEGREES
        and segments[-1][1] >= 360.0 - _MERGE_TOLERANCE_DEGREES
    ):
        head = segments[0]
        tail = segments[-1]
        return segments[1:-1] + [(tail[0], 360.0 + head[1])]
    return segments


def solve_admissible_angles(
    variance_i: float,
    variance_j: float,
    covariance: float,
    rho1: float,
    rho2: float,
) -> list[tuple[float, float]]:
    """The security range ``{θ : Var(A_i−A_i') ≥ ρ1 and Var(A_j−A_j') ≥ ρ2}``.

    Returns circular intervals in degrees (an end > 360 wraps through 0°);
    an empty list means no rotation angle satisfies the threshold.
    """
    admissible_i = curve_admissible_intervals(variance_i, variance_j, -2.0 * covariance, rho1)
    admissible_j = curve_admissible_intervals(variance_j, variance_i, 2.0 * covariance, rho2)
    return intersect_circular_intervals(admissible_i, admissible_j)
