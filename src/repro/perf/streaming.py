"""Exact, mergeable streaming moments for the release and distributed paths.

The streaming release pipeline (:mod:`repro.pipeline.streaming`) promises that
the bytes it writes are *identical* to the in-memory owner workflow, for any
chunk size.  The distributed release (:mod:`repro.distributed`) extends that
promise across machines: each party accumulates moments over its own
horizontal shard and only the accumulator states cross the (simulated) wire,
yet the multi-party release must be byte-identical to a single party owning
the concatenated rows — for **any** shard split.  Everything downstream of
the statistics (normalization, the security-range solve, the rotation) is
elementwise or closed-form, so both promises reduce to one requirement: the
accumulated moments must not depend on how the rows were grouped.

Naive chunked accumulation cannot deliver that — floating-point addition is
not associative.  Earlier revisions pinned the grouping instead (fixed
1024-row tiles aligned to absolute row indices), which makes the moments
chunk-invariant but *not* shard-invariant: a shard boundary in the middle of
a tile would need raw rows from two parties to compute that tile's partial.
:class:`StreamingMoments` therefore switches to **exact summation**: the
exact sum of a multiset of reals does not depend on grouping at all.

How the exact accumulator works
-------------------------------
Every input value is split into a high and a low piece of at most 26
significant bits each (``hi = rint(m * 2**26) * 2**(e-26)`` from ``frexp``,
``lo = v - hi``; both splits are exact).  Pieces are scattered into an array
of *exponent buckets*: bucket ``j`` only ever receives pieces whose
``frexp`` exponent is ``j - _BUCKET_OFFSET``, so everything in the bucket is
a multiple of one quantum ``2**(j - _BUCKET_OFFSET - 26)`` and — as long as
fewer than ``2**27`` pieces have been deposited since the bucket was last
compressed — every intermediate float addition is **exact** (the running sum
stays a representable multiple of the quantum).  The scatter is a vectorized
``np.bincount``; a periodic *compress* re-splits each bucket's sum back into
two ≤26-bit pieces, restoring the headroom without changing the exact total.

Squared values are accumulated through the exact product split
``x² = hi² + 2·hi·lo + lo²`` (all three terms exact at ≤26-bit factors), and
cross products through the four-term split ``hi_i·hi_j + hi_i·lo_j +
lo_i·hi_j + lo_i·lo_j`` — so the sums of squares and cross products are the
exact real sums of per-element, deterministically-rounded terms.  Reading a
statistic drains the buckets through :class:`fractions.Fraction` arithmetic,
so the returned mean/variance/covariance is the **correctly rounded** value
of the exact accumulated rationals.

Because the exact bucket totals are a function of the value *multiset* only:

* feeding rows in any chunk sizes yields identical bits (chunk invariance);
* :meth:`StreamingMoments.merge` of per-shard accumulators equals one
  accumulator over the concatenated rows (shard invariance);
* fanning row blocks out to a parallel backend and merging the per-block
  states is bitwise identical to the serial scan (backend invariance);
* the masked secure-sum of :mod:`repro.distributed.federated` — whose masks
  are integer multiples of each bucket's quantum — cancels exactly, so even
  the privacy-preserving aggregation preserves the bits.

Supported domain (documented contract): finite values with
``|x| < 2**480``.  Non-finite or larger-magnitude values are routed to a
deterministic per-column poison channel and drain to ``nan``/``±inf`` like
``np.var`` would, still independent of grouping.  Pieces smaller than
``2**-1040`` in magnitude are flushed to zero during the per-element split
(an error below ``n · 2**-1040`` on a sum — far beneath one ulp of any
representable statistic of such data).

The accumulators operate on plain ``(rows, n_columns)`` float arrays and
know nothing about CSV files or :class:`~repro.data.DataMatrix` — the I/O
layer in :mod:`repro.data.io` and the pipelines own those concerns.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .backends import get_backend

__all__ = [
    "STREAM_TILE_ROWS",
    "StreamingMoments",
    "bucket_quantum_exponents",
    "correlation_from_moments",
    "state_from_jsonable",
    "state_to_jsonable",
    "streamed_correlation",
    "streamed_pair_moments",
]

#: Rows per vectorized scatter batch.  Purely a batching knob now — the exact
#: bucket accumulation makes the statistics independent of how rows are
#: grouped, so (unlike the old fixed-tile design) this value is *not* part of
#: any bitwise contract and only trades Python overhead against peak memory.
STREAM_TILE_ROWS: int = 4096

#: Bucket index of a piece = its ``frexp`` exponent + this offset.  Sized so
#: the low pieces produced by compressing the deepest deposit buckets
#: (exponents down to −1064) still land at a non-negative index.
_BUCKET_OFFSET: int = 1066

#: Number of exponent buckets.  Deposits span indices ~[2, 2080] given the
#: poison limit below; the round size leaves headroom on both ends.
_N_BUCKETS: int = 2112

#: ``2**26`` — the high/low split point.  Two 26-bit factors multiply exactly
#: in a double, which is what makes the square and cross-product splits exact.
_SPLIT: float = float(2**26)

#: Pieces smaller than this are flushed to zero at deposit time.  The flush is
#: a per-element deterministic function of the input value, so it cannot break
#: grouping invariance; it keeps every bucket quantum at or above ``2**-1065``
#: where all intermediate sums remain exactly representable.
_PIECE_FLOOR: float = 2.0**-1040

#: Values at or above this magnitude (or non-finite) go to the poison channel
#: instead of the buckets: their squares would overflow the exact-split range.
_POISON_LIMIT: float = 2.0**480

#: Compress when this many pieces have been deposited since the last
#: compress.  Exactness holds up to ``2**27`` pieces per bucket; the margin
#: covers the largest single scatter batch (``_MAX_SLICE_PIECES``).
_COMPRESS_DEPOSITS: int = 2**24

#: Upper bound on pieces scattered by one batch; row slices are sized so one
#: batch stays under it even for very wide cross-moment accumulators.  Sized
#: so a batch's transient arrays stay cache-resident — measured on the bench
#: host, ``2**14`` (≈128 KiB of pieces) runs the 500k-row moment passes ~2x
#: faster than ``2**16`` because every scatter batch stays in L2.  It also
#: keeps the sketch's scratch space far inside the streamed pipelines' memory
#: budgets.  (Grouping is not part of any bitwise contract: bucket sums are
#: exact, so the batch size only trades per-call overhead against locality.)
_MAX_SLICE_PIECES: int = 2**14

#: Quantum floor exponent: every value in the system is a multiple of
#: ``2**-1065`` (a deposit piece has ≥ ``2**-1040`` magnitude and ≤26
#: significant bits), so no bucket's effective quantum is ever finer.
_QUANTUM_FLOOR_EXPONENT: int = -1065

#: Extra buckets allocated on each side when the occupied window grows, so a
#: slowly widening exponent range does not reallocate on every deposit.
_WINDOW_MARGIN: int = 8


def bucket_quantum_exponents(bucket_indices) -> np.ndarray:
    """Base-2 exponents of the quanta of ``bucket_indices``.

    Every value bucket ``j`` can hold is an integer multiple of
    ``2**bucket_quantum_exponents(j)``.  The secure-sum protocol of
    :mod:`repro.distributed.federated` draws its masks as bounded integer
    multiples of these quanta, which is what makes the masking cancel
    **exactly** and keeps the multi-party release byte-identical.
    """
    indices = np.asarray(bucket_indices, dtype=np.int64)
    return np.maximum(indices - _BUCKET_OFFSET - 26, _QUANTUM_FLOOR_EXPONENT)


def _split_pieces(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split finite doubles into exact high/low pieces of ≤26 significant bits."""
    mantissa, exponent = np.frexp(values)
    hi = np.ldexp(np.rint(mantissa * _SPLIT), exponent - 26)
    lo = values - hi
    return hi, lo


def _bucket_partials_worker(arrays, start: int, stop: int, *, n_columns: int, cross: bool):
    """Accumulate rows ``start:stop`` into a fresh accumulator; return its state.

    Module level so process backends can ship it.  Exact summation makes the
    row split irrelevant: merging the per-block states in any order yields
    the same bucket totals as the serial scan, hence the same bits.
    """
    accumulator = StreamingMoments(n_columns, cross=cross)
    accumulator.update(arrays["rows"][start:stop])
    return accumulator.state()


class StreamingMoments:
    """Single-pass column moments, invariant to chunking, sharding and merging.

    Feed row chunks with :meth:`update`; read statistics through
    :meth:`means` / :meth:`variances` / :meth:`covariance` /
    :meth:`pair_moments`.  Feeding the same rows split at *any* chunk
    boundaries — one row at a time, or the whole matrix in a single call —
    yields bitwise-identical statistics, and :meth:`merge`-ing accumulators
    built over row shards equals one accumulator over the concatenated rows.

    Parameters
    ----------
    n_columns:
        Width of the row chunks.
    cross:
        When ``True`` also accumulate the pairwise cross products of every
        column pair ``i < j`` (needed for covariances).  Off by default
        because the normalizer fit only needs per-column moments.
    tile_rows:
        Rows per vectorized scatter batch; exposed for tests, keep the
        default otherwise (it does not affect the statistics).
    backend:
        Execution backend spec for large updates (see
        :mod:`repro.perf.backends`).  Row blocks are fanned out and the
        per-block bucket states merged exactly, so every backend yields
        bitwise-identical statistics.  May also be assigned after
        construction (``accumulator.backend = ...``); the attribute is
        re-resolved on every :meth:`update`.
    """

    def __init__(
        self,
        n_columns: int,
        *,
        cross: bool = False,
        tile_rows: int = STREAM_TILE_ROWS,
        backend=None,
    ):
        self.backend = backend
        self._n_columns = check_integer_in_range(n_columns, name="n_columns", minimum=1)
        self._tile_rows = check_integer_in_range(tile_rows, name="tile_rows", minimum=1)
        self._cross = bool(cross)
        n = self._n_columns
        self._pairs = [(i, j) for i in range(n) for j in range(i + 1, n)] if self._cross else []
        if self._pairs:
            self._pair_i = np.array([i for i, _ in self._pairs], dtype=np.intp)
            self._pair_j = np.array([j for _, j in self._pairs], dtype=np.intp)
        # Quantity layout: [0, n) column sums, [n, 2n) sums of squares,
        # [2n, 2n + len(pairs)) cross-product sums in (i < j) order.
        self._n_quantities = 2 * n + len(self._pairs)
        # Occupied exponent-bucket window: row ``k`` holds bucket index
        # ``_window_low + k``.  Real data occupies a few dozen of the ~2100
        # possible buckets, so a contiguous window grown on demand keeps the
        # table at kilobytes instead of full-range megabytes — the streamed
        # pipelines bill the sketch's memory against their budget.
        self._window_low = 0
        self._buckets = np.zeros((0, self._n_quantities), dtype=float)
        self._deposits = 0
        self._count = 0
        self._poison_nan = np.zeros(self._n_quantities, dtype=np.int64)
        self._poison_pos = np.zeros(self._n_quantities, dtype=np.int64)
        self._poison_neg = np.zeros(self._n_quantities, dtype=np.int64)
        self._finalized: list | None = None
        # Per-row-count quantity-index pattern for the batched slice deposit;
        # at most two entries live at once (full slices plus one tail).
        self._quantity_indices_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of rows accumulated so far."""
        return self._count

    @property
    def n_columns(self) -> int:
        """Width of the accumulated rows."""
        return self._n_columns

    @property
    def cross(self) -> bool:
        """Whether pairwise cross products are accumulated."""
        return self._cross

    def update(self, chunk) -> StreamingMoments:
        """Accumulate a ``(rows, n_columns)`` chunk of values."""
        if self._finalized is not None:
            raise ValidationError("StreamingMoments cannot be updated after statistics were read")
        array = np.asarray(chunk, dtype=float)
        if array.ndim != 2 or array.shape[1] != self._n_columns:
            raise ValidationError(
                f"chunk must be a 2-D array with {self._n_columns} column(s), "
                f"got shape {array.shape}"
            )
        if array.shape[0] == 0:
            return self
        backend = get_backend(self.backend)
        slice_rows = self._slice_rows()
        if backend.workers > 1 and array.shape[0] >= 4 * slice_rows:
            block_rows = max(slice_rows, -(-array.shape[0] // (2 * backend.workers)))
            for _start, _stop, state in backend.imap_blocks(
                _bucket_partials_worker,
                array.shape[0],
                block_rows,
                arrays={"rows": array},
                kwargs={"n_columns": self._n_columns, "cross": self._cross},
            ):
                self._merge_state(state)
            return self
        for start in range(0, array.shape[0], slice_rows):
            self._accumulate_slice(array[start : start + slice_rows])
        self._count += array.shape[0]
        return self

    def _slice_rows(self) -> int:
        """Rows per scatter batch, capped so one batch fits the deposit margin."""
        n = self._n_columns
        pieces_per_row = 8 * n + 8 * len(self._pairs)
        return max(1, min(self._tile_rows, _MAX_SLICE_PIECES // pieces_per_row))

    def _accumulate_slice(self, rows: np.ndarray) -> None:
        finite = np.isfinite(rows) & (np.abs(rows) < _POISON_LIMIT)
        if finite.all():
            clean = rows
        else:
            clean = np.where(finite, rows, 0.0)
            self._record_poison(rows, finite)
        hi, lo = _split_pieces(clean)
        # Collect every split term of the slice and scatter them in ONE
        # deposit: bucket sums are exact, so grouping cannot change any
        # statistic, and a single bincount over the concatenated pieces
        # replaces sixteen small scatters' worth of per-call overhead.  The
        # slice sizing keeps the whole batch under _MAX_SLICE_PIECES, so
        # the transient concatenation stays at a few hundred kilobytes.
        blocks = [hi, lo]
        # x² = hi² + 2·hi·lo + lo²: every term exact at ≤26-bit factors, then
        # itself split into two ≤26-bit pieces for the bucket invariant.
        for term in (hi * hi, (2.0 * hi) * lo, lo * lo):
            blocks.extend(_split_pieces(term))
        if self._pairs:
            hi_i, lo_i = hi[:, self._pair_i], lo[:, self._pair_i]
            hi_j, lo_j = hi[:, self._pair_j], lo[:, self._pair_j]
            for term in (hi_i * hi_j, hi_i * lo_j, lo_i * hi_j, lo_i * lo_j):
                blocks.extend(_split_pieces(term))
        pieces = np.concatenate([block.ravel() for block in blocks])
        self._deposit(pieces, self._slice_quantity_indices(rows.shape[0]))

    def _slice_quantity_indices(self, n_rows: int) -> np.ndarray:
        """Quantity indices matching ``_accumulate_slice``'s piece layout.

        The pattern depends only on the slice's row count (column pieces,
        then square pieces, then cross pieces, each row-major), so it is
        cached — a pass re-uses one array for every full-size slice.
        """
        cached = self._quantity_indices_cache.get(n_rows)
        if cached is not None:
            return cached
        # int32 keeps the cached pattern half the size of the piece array it
        # pairs with — the audit path runs three accumulators against one
        # small memory budget, so the persistent footprint matters here.
        n = self._n_columns
        column_base = np.arange(n, dtype=np.int32)
        square_base = np.arange(n, 2 * n, dtype=np.int32)
        parts = [np.tile(column_base, n_rows)] * 2 + [np.tile(square_base, n_rows)] * 6
        if self._pairs:
            cross_base = np.arange(2 * n, self._n_quantities, dtype=np.int32)
            parts += [np.tile(cross_base, n_rows)] * 8
        indices = np.concatenate(parts)
        self._quantity_indices_cache[n_rows] = indices
        return indices

    def _deposit(self, pieces: np.ndarray, quantities: np.ndarray) -> None:
        """Scatter ≤26-significant-bit pieces into the exponent buckets."""
        keep = np.abs(pieces) >= _PIECE_FLOOR
        kept = int(np.count_nonzero(keep))
        if kept == 0:
            return
        if kept != pieces.size:
            # Fancy-indexing copies only when some piece is floored; the
            # common all-kept case scatters the inputs directly, which
            # deposits the identical pieces in the identical order.
            pieces = pieces[keep]
            quantities = quantities[keep]
        if self._deposits + pieces.size > _COMPRESS_DEPOSITS:
            self._compress()
        _, exponents = np.frexp(pieces)
        self._scatter(exponents.astype(np.int64) + _BUCKET_OFFSET, quantities, pieces)
        self._deposits += int(pieces.size)

    def _ensure_window(self, lo: int, hi: int) -> None:
        """Grow the bucket window to cover bucket indices ``[lo, hi)``."""
        if self._buckets.shape[0] == 0:
            self._window_low = max(lo - _WINDOW_MARGIN, 0)
            rows = min(hi + _WINDOW_MARGIN, _N_BUCKETS) - self._window_low
            self._buckets = np.zeros((rows, self._n_quantities), dtype=float)
            return
        current_hi = self._window_low + self._buckets.shape[0]
        if lo >= self._window_low and hi <= current_hi:
            return
        new_low = min(self._window_low, max(lo - _WINDOW_MARGIN, 0))
        new_hi = max(current_hi, min(hi + _WINDOW_MARGIN, _N_BUCKETS))
        grown = np.zeros((new_hi - new_low, self._n_quantities), dtype=float)
        offset = self._window_low - new_low
        grown[offset : offset + self._buckets.shape[0]] = self._buckets
        self._window_low = new_low
        self._buckets = grown

    def _scatter(self, buckets: np.ndarray, quantities: np.ndarray, pieces: np.ndarray) -> None:
        """Sum ``pieces`` into bucket rows ``buckets`` at columns ``quantities``."""
        lo_bucket = int(buckets.min())
        self._ensure_window(lo_bucket, int(buckets.max()) + 1)
        flat = (buckets - self._window_low) * self._n_quantities + quantities
        # The first occupied row bounds the flat indices from below, so the
        # bincount window starts there — no extra pass over ``flat`` for its
        # exact minimum (per-index sums, and hence the buckets, are the same).
        low = (lo_bucket - self._window_low) * self._n_quantities
        spread = np.bincount(flat - low, weights=pieces)
        self._buckets.reshape(-1)[low : low + spread.size] += spread

    def _compress(self) -> None:
        """Re-split every bucket sum into ≤26-bit pieces; exact total unchanged."""
        flat_view = self._buckets.reshape(-1)
        nonzero = np.flatnonzero(flat_view)
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        if nonzero.size:
            values = flat_view[nonzero]
            quantities = nonzero % self._n_quantities
            # No piece floor here: compress pieces are multiples of their
            # source quantum (≥ 2**-1065), so flooring would *change* the
            # exact totals at grouping-dependent moments and break the
            # invariance contract.  The quantum floor keeps them exact.
            for piece in _split_pieces(values):
                live = piece != 0.0
                part, quantity = piece[live], quantities[live]
                if part.size == 0:
                    continue
                _, exponents = np.frexp(part)
                parts.append((exponents.astype(np.int64) + _BUCKET_OFFSET, quantity, part))
        if parts:
            lo = min(int(buckets.min()) for buckets, _, _ in parts)
            hi = max(int(buckets.max()) for buckets, _, _ in parts) + 1
            self._window_low = lo
            self._buckets = np.zeros((hi - lo, self._n_quantities), dtype=float)
            for buckets, quantity, part in parts:
                self._scatter(buckets, quantity, part)
        else:
            self._window_low = 0
            self._buckets = np.zeros((0, self._n_quantities), dtype=float)
        self._deposits = 2 * _N_BUCKETS

    def _record_poison(self, rows: np.ndarray, finite: np.ndarray) -> None:
        """Count non-finite / out-of-range contributions per affected quantity."""
        n = self._n_columns
        poisoned = ~finite
        row_index, column = np.nonzero(poisoned)
        values = rows[row_index, column]
        is_nan = np.isnan(values)
        np.add.at(self._poison_nan, column[is_nan], 1)
        np.add.at(self._poison_pos, column[~is_nan & (values > 0)], 1)
        np.add.at(self._poison_neg, column[~is_nan & (values < 0)], 1)
        # Squares of poisoned values: nan stays nan, everything else is +∞.
        np.add.at(self._poison_nan, n + column[is_nan], 1)
        np.add.at(self._poison_pos, n + column[~is_nan], 1)
        if self._pairs:
            # Cross products with ≥1 poisoned member follow IEEE extended
            # arithmetic on sign(x)·∞ — deterministic, grouping-independent.
            extended = np.where(
                poisoned & ~np.isnan(rows), np.copysign(np.inf, rows), rows
            )
            affected = poisoned[:, self._pair_i] | poisoned[:, self._pair_j]
            rows_hit, pair_hit = np.nonzero(affected)
            with np.errstate(invalid="ignore"):
                products = (
                    extended[rows_hit, self._pair_i[pair_hit]]
                    * extended[rows_hit, self._pair_j[pair_hit]]
                )
            product_nan = np.isnan(products)
            np.add.at(self._poison_nan, 2 * n + pair_hit[product_nan], 1)
            np.add.at(self._poison_pos, 2 * n + pair_hit[~product_nan & (products > 0)], 1)
            np.add.at(self._poison_neg, 2 * n + pair_hit[~product_nan & (products < 0)], 1)

    # ------------------------------------------------------------------ #
    # Merging and serialization (the distributed wire format)
    # ------------------------------------------------------------------ #
    def merge(self, other: StreamingMoments) -> StreamingMoments:
        """Fold another accumulator's rows into this one, exactly.

        The result is bitwise identical to accumulating the concatenation of
        both row streams in one accumulator — the property the multi-party
        release pipeline is built on.
        """
        if not isinstance(other, StreamingMoments):
            raise ValidationError(
                f"merge expects a StreamingMoments, got {type(other).__name__}"
            )
        if other._n_columns != self._n_columns or other._cross != self._cross:
            raise ValidationError(
                "cannot merge StreamingMoments with different shapes: "
                f"({self._n_columns}, cross={self._cross}) vs "
                f"({other._n_columns}, cross={other._cross})"
            )
        if self._finalized is not None or other._finalized is not None:
            raise ValidationError("StreamingMoments cannot be merged after statistics were read")
        if self._deposits + other._deposits > _COMPRESS_DEPOSITS:
            self._compress()
            other._compress()
        if other._buckets.shape[0]:
            other_hi = other._window_low + other._buckets.shape[0]
            self._ensure_window(other._window_low, other_hi)
            offset = other._window_low - self._window_low
            self._buckets[offset : offset + other._buckets.shape[0]] += other._buckets
        self._deposits += other._deposits
        self._count += other._count
        self._poison_nan += other._poison_nan
        self._poison_pos += other._poison_pos
        self._poison_neg += other._poison_neg
        return self

    def state(self) -> dict:
        """Serializable sketch state (the distributed wire payload).

        The payload size is ``O(occupied buckets × quantities)`` —
        independent of the number of accumulated rows, which is what keeps
        the distributed protocol free of O(rows) transfers.
        """
        if self._finalized is not None:
            raise ValidationError(
                "StreamingMoments state cannot be exported after statistics were read"
            )
        self._compress()
        occupied = np.flatnonzero(np.any(self._buckets != 0.0, axis=1))
        return {
            "format": 1,
            "n_columns": self._n_columns,
            "cross": self._cross,
            "count": self._count,
            "deposits": self._deposits,
            "bucket_indices": (occupied + self._window_low).astype(np.int64),
            "bucket_values": self._buckets[occupied].copy(),
            "poison_nan": self._poison_nan.copy(),
            "poison_pos": self._poison_pos.copy(),
            "poison_neg": self._poison_neg.copy(),
        }

    @classmethod
    def from_state(cls, state: dict, *, backend=None) -> StreamingMoments:
        """Rebuild an accumulator from :meth:`state` (exact round trip)."""
        if not isinstance(state, dict) or state.get("format") != 1:
            raise ValidationError("unrecognized StreamingMoments state payload")
        accumulator = cls(
            int(state["n_columns"]), cross=bool(state["cross"]), backend=backend
        )
        accumulator._merge_state(state)
        return accumulator

    def _merge_state(self, state: dict) -> None:
        """Fold a :meth:`state` payload into this accumulator, exactly."""
        if int(state["n_columns"]) != self._n_columns or bool(state["cross"]) != self._cross:
            raise ValidationError(
                "cannot merge a StreamingMoments state with a different shape"
            )
        deposits = int(state["deposits"])
        if self._deposits + deposits > _COMPRESS_DEPOSITS:
            self._compress()
        indices = np.asarray(state["bucket_indices"], dtype=np.int64)
        if indices.size:
            self._ensure_window(int(indices.min()), int(indices.max()) + 1)
            values = np.asarray(state["bucket_values"], dtype=float)
            self._buckets[indices - self._window_low] += values
        self._deposits += deposits
        self._count += int(state["count"])
        self._poison_nan += np.asarray(state["poison_nan"], dtype=np.int64)
        self._poison_pos += np.asarray(state["poison_pos"], dtype=np.int64)
        self._poison_neg += np.asarray(state["poison_neg"], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def _drain(self) -> list:
        """Exact per-quantity totals: :class:`Fraction`, or a poison float."""
        if self._finalized is not None:
            return self._finalized
        if self._count == 0:
            raise ValidationError("StreamingMoments received no rows")
        buckets = self._buckets
        totals: list = []
        for quantity in range(self._n_quantities):
            if self._poison_nan[quantity] or (
                self._poison_pos[quantity] and self._poison_neg[quantity]
            ):
                totals.append(float("nan"))
                continue
            if self._poison_pos[quantity]:
                totals.append(float("inf"))
                continue
            if self._poison_neg[quantity]:
                totals.append(float("-inf"))
                continue
            column = buckets[:, quantity]
            exact = Fraction(0)
            for value in column[column != 0.0].tolist():
                exact += Fraction(value)
            totals.append(exact)
        self._finalized = totals
        return totals

    def means(self) -> np.ndarray:
        """Per-column arithmetic means (correctly rounded)."""
        totals = self._drain()
        out = np.empty(self._n_columns, dtype=float)
        for index in range(self._n_columns):
            total = totals[index]
            if isinstance(total, Fraction):
                out[index] = float(total / self._count)
            else:
                out[index] = total / self._count
        return out

    def variances(self, *, ddof: int = 0) -> np.ndarray:
        """Per-column variances with the requested degrees of freedom."""
        ddof = check_integer_in_range(ddof, name="ddof", minimum=0)
        if self._count - ddof <= 0:
            raise ValidationError(
                f"variance with ddof={ddof} needs more than {ddof} row(s), got {self._count}"
            )
        totals = self._drain()
        n = self._n_columns
        out = np.empty(n, dtype=float)
        for index in range(n):
            out[index] = self._second_moment(totals[index], totals[n + index], ddof)
        return out

    def _second_moment(self, linear, quadratic, ddof: int) -> float:
        """``(Q·m − S²) / (m·(m − ddof))``, exact when unpoisoned."""
        m = self._count
        if isinstance(linear, Fraction) and isinstance(quadratic, Fraction):
            # Exact: the numerator is m² times the true variance, which is
            # non-negative by Cauchy-Schwarz — no clamping needed.
            return float((quadratic * m - linear * linear) / (m * (m - ddof)))
        linear = float(linear)
        quadratic = float(quadratic)
        with np.errstate(invalid="ignore", over="ignore"):
            return float((quadratic - linear * (linear / m)) / (m - ddof))

    def covariance(self, column_i: int, column_j: int, *, ddof: int = 0) -> float:
        """Covariance of one column pair (requires ``cross=True``)."""
        if not self._cross:
            raise ValidationError("covariance requires a StreamingMoments built with cross=True")
        ddof = check_integer_in_range(ddof, name="ddof", minimum=0)
        if self._count - ddof <= 0:
            raise ValidationError(
                f"covariance with ddof={ddof} needs more than {ddof} row(s), got {self._count}"
            )
        if column_i == column_j:
            return float(self.variances(ddof=ddof)[column_i])
        totals = self._drain()
        i, j = min(column_i, column_j), max(column_i, column_j)
        cross = totals[2 * self._n_columns + self._pairs.index((i, j))]
        linear_i, linear_j = totals[i], totals[j]
        m = self._count
        if (
            isinstance(cross, Fraction)
            and isinstance(linear_i, Fraction)
            and isinstance(linear_j, Fraction)
        ):
            return float((cross * m - linear_i * linear_j) / (m * (m - ddof)))
        cross = float(cross)
        linear_i, linear_j = float(linear_i), float(linear_j)
        with np.errstate(invalid="ignore", over="ignore"):
            return float((cross - linear_i * (linear_j / m)) / (m - ddof))

    def pair_moments(self, column_i: int, column_j: int, *, ddof: int = 1):
        """``(σ_i², σ_j², σ_ij)`` of a column pair — the security-range inputs."""
        variances = self.variances(ddof=ddof)
        return (
            float(variances[column_i]),
            float(variances[column_j]),
            self.covariance(column_i, column_j, ddof=ddof),
        )


def correlation_from_moments(accumulator: StreamingMoments, *, ddof: int = 1) -> np.ndarray:
    """Correlation matrix from an accumulated ``StreamingMoments(n, cross=True)``.

    Shared by the max-variance pair selection of every release path: the
    in-memory :class:`~repro.core.RBT` feeds the whole matrix through one
    accumulator, the streaming pipeline feeds row chunks, the distributed
    pipeline merges per-party accumulators — exact summation makes all the
    resulting matrices bitwise identical, so the greedy pairing (and with it
    the whole release) cannot diverge between the paths even on near-tied
    correlations.  Degenerate (zero-variance) columns yield NaN, which the
    pairing treats as zero correlation.
    """
    variances = accumulator.variances(ddof=ddof)
    n = variances.shape[0]
    correlation = np.eye(n)
    with np.errstate(invalid="ignore", divide="ignore"):
        for i in range(n):
            for j in range(i + 1, n):
                denominator = np.sqrt(variances[i] * variances[j])
                value = (
                    accumulator.covariance(i, j, ddof=ddof) / denominator
                    if denominator > 0
                    else np.nan
                )
                correlation[i, j] = correlation[j, i] = value
    return correlation


def streamed_correlation(values, *, ddof: int = 1) -> np.ndarray:
    """Correlation matrix of a materialized ``(m, n)`` array via the exact reducer."""
    accumulator = StreamingMoments(np.asarray(values).shape[1], cross=True)
    accumulator.update(values)
    return correlation_from_moments(accumulator, ddof=ddof)


def streamed_pair_moments(attribute_i, attribute_j, *, ddof: int = 1) -> tuple[float, float, float]:
    """``(σ_i², σ_j², σ_ij)`` of two materialized columns via the exact reducer.

    This is the in-memory entry point of the bitwise contract: feeding the
    same two columns chunk-by-chunk into a ``StreamingMoments(2, cross=True)``
    produces exactly these three numbers.
    """
    stacked = np.column_stack(
        (np.asarray(attribute_i, dtype=float), np.asarray(attribute_j, dtype=float))
    )
    accumulator = StreamingMoments(2, cross=True)
    accumulator.update(stacked)
    return accumulator.pair_moments(0, 1, ddof=ddof)


# --------------------------------------------------------------------------- #
# Lossless JSON wire form of the sketch state
# --------------------------------------------------------------------------- #
def state_to_jsonable(state: dict) -> dict:
    """Re-encode a :meth:`StreamingMoments.state` payload as pure JSON types.

    Bucket sums are serialized as C99 hex-float strings (``float.hex``), which
    round-trip **every** double bit-for-bit — including negative zero and
    subnormals, which decimal-repr JSON encoders (and downstream parsers that
    normalize ``-0.0`` to ``0``) can silently corrupt.  The versioned release
    bundle persists sketch states through this codec, so its byte-identity
    contract survives a JSON round trip.
    """
    if not isinstance(state, dict) or state.get("format") != 1:
        raise ValidationError("unrecognized StreamingMoments state payload")
    values = np.asarray(state["bucket_values"], dtype=float)
    return {
        "format": 1,
        "n_columns": int(state["n_columns"]),
        "cross": bool(state["cross"]),
        "count": int(state["count"]),
        "deposits": int(state["deposits"]),
        "bucket_indices": [int(index) for index in np.asarray(state["bucket_indices"])],
        "bucket_values": [[float(value).hex() for value in row] for row in values],
        "poison_nan": [int(count) for count in np.asarray(state["poison_nan"])],
        "poison_pos": [int(count) for count in np.asarray(state["poison_pos"])],
        "poison_neg": [int(count) for count in np.asarray(state["poison_neg"])],
    }


def state_from_jsonable(payload: dict) -> dict:
    """Invert :func:`state_to_jsonable`; the result feeds :meth:`StreamingMoments.from_state`."""
    if not isinstance(payload, dict) or payload.get("format") != 1:
        raise ValidationError("unrecognized StreamingMoments JSON state payload")
    n_columns = int(payload["n_columns"])
    cross = bool(payload["cross"])
    n_quantities = 2 * n_columns + (n_columns * (n_columns - 1) // 2 if cross else 0)
    rows = payload["bucket_values"]
    values = np.empty((len(rows), n_quantities), dtype=float)
    for row_index, row in enumerate(rows):
        if len(row) != n_quantities:
            raise ValidationError(
                f"bucket row {row_index} has {len(row)} value(s), expected {n_quantities}"
            )
        for column_index, text in enumerate(row):
            try:
                values[row_index, column_index] = float.fromhex(text)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"invalid hex-float bucket value {text!r}") from exc
    return {
        "format": 1,
        "n_columns": n_columns,
        "cross": cross,
        "count": int(payload["count"]),
        "deposits": int(payload["deposits"]),
        "bucket_indices": np.asarray(
            [int(index) for index in payload["bucket_indices"]], dtype=np.int64
        ),
        "bucket_values": values,
        "poison_nan": np.asarray([int(c) for c in payload["poison_nan"]], dtype=np.int64),
        "poison_pos": np.asarray([int(c) for c in payload["poison_pos"]], dtype=np.int64),
        "poison_neg": np.asarray([int(c) for c in payload["poison_neg"]], dtype=np.int64),
    }
