"""Chunk-size-invariant streaming statistics for the out-of-core release path.

The streaming release pipeline (:mod:`repro.pipeline.streaming`) promises that
the bytes it writes are *identical* to the in-memory owner workflow, for any
chunk size.  Everything downstream of the statistics — normalization, the
security-range solve, the rotation itself — is elementwise or closed-form, so
the whole promise reduces to one requirement: the per-column moments computed
from a stream of row chunks must be **bitwise identical** to the moments
computed from the materialized matrix.

Naive chunked accumulation cannot deliver that: floating-point addition is not
associative, so ``sum(chunk sums)`` depends on where the chunk boundaries
fall.  :class:`StreamingMoments` removes the dependency with two ingredients:

1. **Fixed tiling.**  Rows are buffered into tiles of :data:`STREAM_TILE_ROWS`
   rows aligned to *absolute* row indices.  Each complete (or final partial)
   tile is reduced with ``numpy``'s pairwise summation; because the tile
   boundaries depend only on the absolute row position, every chunking of the
   same rows produces the same tiles and therefore the same per-tile partials.
2. **Exactly-rounded combination.**  The per-tile partial sums are combined
   with :func:`math.fsum`, which returns the correctly rounded sum of its
   inputs regardless of their order.

Values are shifted by the first data row before any squaring, so the
single-pass variance formula ``(Q − S²/m) / (m − ddof)`` operates on values
whose magnitude is of the order of the data's spread rather than its mean —
the classic shifted-data estimator — keeping it numerically safe even for
un-normalized inputs.  The shift is itself a function of the stream content
only (row 0), so it, too, is chunk-invariant.

The accumulators operate on plain ``(rows, n_columns)`` float arrays and know
nothing about CSV files or :class:`~repro.data.DataMatrix` — the I/O layer in
:mod:`repro.data.io` and the pipeline own those concerns.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .backends import get_backend

__all__ = [
    "STREAM_TILE_ROWS",
    "StreamingMoments",
    "correlation_from_moments",
    "streamed_correlation",
    "streamed_pair_moments",
]

#: Rows per reduction tile.  Large enough that the Python-level bookkeeping is
#: negligible, small enough that a tile always fits in cache; the value is part
#: of the bitwise contract (changing it changes the last-ulp rounding of the
#: accumulated sums), so treat it like a file-format constant.
STREAM_TILE_ROWS: int = 1024

#: Per-tile partials are collapsed into one exactly-rounded super-partial every
#: this many entries, so the partial lists stay O(1) in the row count (without
#: it an N-row stream would hold N / STREAM_TILE_ROWS small arrays).  The
#: collapse points are a function of the absolute tile sequence alone, so the
#: result stays chunk-invariant; like the tile height, the value is part of
#: the bitwise contract.
_COMBINE_EVERY_TILES: int = 2048


def _combine(parts: list[np.ndarray]) -> np.ndarray:
    """Exactly-rounded per-column combination of partial-sum arrays."""
    width = parts[0].shape[0]
    return np.array([math.fsum(part[c] for part in parts) for c in range(width)], dtype=float)


def _tile_partials_worker(arrays, start: int, stop: int, *, tile_rows, shift, pairs):
    """Per-tile ``(sum, sum-of-squares, cross)`` partials for tiles ``start:stop``.

    Module level so process backends can ship it.  Tile extraction and the
    per-tile arithmetic are copied from :meth:`StreamingMoments._flush`
    verbatim — the bitwise contract rides on the two staying identical.
    """
    region = arrays["region"]
    out = []
    for index in range(start, stop):
        shifted = region[index * tile_rows : (index + 1) * tile_rows] - shift
        sums = shifted.sum(axis=0)
        sumsqs = (shifted * shifted).sum(axis=0)
        crosses = None
        if pairs:
            crosses = np.empty(len(pairs), dtype=float)
            for position, (i, j) in enumerate(pairs):
                crosses[position] = np.sum(shifted[:, i] * shifted[:, j])
        out.append((sums, sumsqs, crosses))
    return out


class StreamingMoments:
    """Single-pass column moments that are invariant to chunk boundaries.

    Feed row chunks with :meth:`update`; read statistics through
    :meth:`means` / :meth:`variances` / :meth:`covariance` /
    :meth:`pair_moments`.  Feeding the same rows split at *any* chunk
    boundaries — one row at a time, or the whole matrix in a single call —
    yields bitwise-identical statistics.

    Parameters
    ----------
    n_columns:
        Width of the row chunks.
    cross:
        When ``True`` also accumulate the pairwise cross products of every
        column pair ``i < j`` (needed for covariances).  Off by default
        because the normalizer fit only needs per-column moments.
    tile_rows:
        Reduction tile height; exposed for tests, keep the default otherwise.
    backend:
        Execution backend spec for the per-tile reductions (see
        :mod:`repro.perf.backends`).  Complete tiles are fanned out and
        their partials appended in tile order with the serial collapse
        rule, so every backend yields bitwise-identical statistics.  May
        also be assigned after construction (``accumulator.backend = ...``);
        the attribute is re-resolved on every :meth:`update`, and the
        statistics do not depend on which backend computed which tile.
    """

    def __init__(
        self,
        n_columns: int,
        *,
        cross: bool = False,
        tile_rows: int = STREAM_TILE_ROWS,
        combine_every: int = _COMBINE_EVERY_TILES,
        backend=None,
    ):
        self.backend = backend
        self._n_columns = check_integer_in_range(n_columns, name="n_columns", minimum=1)
        tile_rows = check_integer_in_range(tile_rows, name="tile_rows", minimum=1)
        self._combine_every = check_integer_in_range(combine_every, name="combine_every", minimum=2)
        self._tile = np.empty((tile_rows, self._n_columns), dtype=float)
        self._fill = 0
        self._cross = bool(cross)
        self._pairs = (
            [(i, j) for i in range(self._n_columns) for j in range(i + 1, self._n_columns)]
            if self._cross
            else []
        )
        self._shift: np.ndarray | None = None
        self._sum_parts: list[np.ndarray] = []
        self._sumsq_parts: list[np.ndarray] = []
        self._cross_parts: list[np.ndarray] = []
        self._count = 0
        self._finalized: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of rows accumulated so far."""
        return self._count

    @property
    def n_columns(self) -> int:
        """Width of the accumulated rows."""
        return self._n_columns

    def update(self, chunk) -> "StreamingMoments":
        """Accumulate a ``(rows, n_columns)`` chunk of values."""
        if self._finalized is not None:
            raise ValidationError("StreamingMoments cannot be updated after statistics were read")
        array = np.asarray(chunk, dtype=float)
        if array.ndim != 2 or array.shape[1] != self._n_columns:
            raise ValidationError(
                f"chunk must be a 2-D array with {self._n_columns} column(s), "
                f"got shape {array.shape}"
            )
        if array.shape[0] == 0:
            return self
        if self._shift is None:
            self._shift = array[0].astype(float, copy=True)
        position = 0
        tile_rows = self._tile.shape[0]
        backend = get_backend(self.backend)
        if backend.workers > 1:
            position = self._update_parallel(array, backend)
        while position < array.shape[0]:
            take = min(tile_rows - self._fill, array.shape[0] - position)
            self._tile[self._fill : self._fill + take] = array[position : position + take]
            self._fill += take
            position += take
            if self._fill == tile_rows:
                self._flush(self._tile)
                self._fill = 0
        self._count += array.shape[0]
        return self

    def _update_parallel(self, array: np.ndarray, backend) -> int:
        """Fan this chunk's complete tiles out to ``backend``; return the position reached.

        The partial tile buffer is topped up (and flushed) first so the
        fanned-out region starts on an absolute tile boundary; the serial
        loop below picks up whatever rows remain.  Tile extraction and the
        per-tile arithmetic match :meth:`_flush` exactly, and partials are
        appended in tile order under the same collapse rule, so the final
        statistics are bitwise identical to the serial path.
        """
        position = 0
        tile_rows = self._tile.shape[0]
        if self._fill:
            take = min(tile_rows - self._fill, array.shape[0])
            self._tile[self._fill : self._fill + take] = array[:take]
            self._fill += take
            position = take
            if self._fill < tile_rows:
                return position
            self._flush(self._tile)
            self._fill = 0
        n_tiles = (array.shape[0] - position) // tile_rows
        if n_tiles < 2:
            return position
        region = array[position : position + n_tiles * tile_rows]
        block_tiles = max(1, -(-n_tiles // (2 * backend.workers)))
        pairs = tuple(self._pairs) if self._cross else None
        for _start, _stop, partials in backend.imap_blocks(
            _tile_partials_worker,
            n_tiles,
            block_tiles,
            arrays={"region": region},
            kwargs={"tile_rows": tile_rows, "shift": self._shift, "pairs": pairs},
        ):
            for sums, sumsqs, crosses in partials:
                self._append_partials(sums, sumsqs, crosses)
        return position + n_tiles * tile_rows

    def _flush(self, tile: np.ndarray) -> None:
        """Reduce one C-contiguous tile into per-tile partial sums."""
        shifted = tile - self._shift
        sums = shifted.sum(axis=0)
        sumsqs = (shifted * shifted).sum(axis=0)
        products = None
        if self._cross:
            products = np.empty(len(self._pairs), dtype=float)
            for index, (i, j) in enumerate(self._pairs):
                products[index] = np.sum(shifted[:, i] * shifted[:, j])
        self._append_partials(sums, sumsqs, products)

    def _append_partials(self, sums, sumsqs, crosses) -> None:
        self._sum_parts.append(sums)
        self._sumsq_parts.append(sumsqs)
        if self._cross:
            self._cross_parts.append(crosses)
        # Bound the partial lists: every _combine_every entries collapse into
        # one exactly-rounded super-partial.  The trigger depends only on how
        # many tiles have been flushed, never on the chunk boundaries (or on
        # which backend reduced them), so the final statistics remain
        # chunk-invariant.
        if len(self._sum_parts) >= self._combine_every:
            self._sum_parts = [_combine(self._sum_parts)]
            self._sumsq_parts = [_combine(self._sumsq_parts)]
            if self._cross:
                self._cross_parts = [_combine(self._cross_parts)]

    def _drain(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flush the partial tile and combine the per-tile partials exactly."""
        if self._finalized is not None:
            return self._finalized
        if self._count == 0:
            raise ValidationError("StreamingMoments received no rows")
        if self._fill:
            self._flush(self._tile[: self._fill])
            self._fill = 0
        sums = _combine(self._sum_parts)
        sumsqs = _combine(self._sumsq_parts)
        crosses = _combine(self._cross_parts) if self._cross_parts else np.empty(0, dtype=float)
        self._finalized = (sums, sumsqs, crosses)
        return self._finalized

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def means(self) -> np.ndarray:
        """Per-column arithmetic means."""
        sums, _, _ = self._drain()
        return self._shift + sums / self._count

    def variances(self, *, ddof: int = 0) -> np.ndarray:
        """Per-column variances with the requested degrees of freedom."""
        ddof = check_integer_in_range(ddof, name="ddof", minimum=0)
        sums, sumsqs, _ = self._drain()
        if self._count - ddof <= 0:
            raise ValidationError(
                f"variance with ddof={ddof} needs more than {ddof} row(s), got {self._count}"
            )
        centered = np.maximum(sumsqs - sums * sums / self._count, 0.0)
        return centered / (self._count - ddof)

    def covariance(self, column_i: int, column_j: int, *, ddof: int = 0) -> float:
        """Covariance of one column pair (requires ``cross=True``)."""
        if not self._cross:
            raise ValidationError("covariance requires a StreamingMoments built with cross=True")
        ddof = check_integer_in_range(ddof, name="ddof", minimum=0)
        sums, _, crosses = self._drain()
        if self._count - ddof <= 0:
            raise ValidationError(
                f"covariance with ddof={ddof} needs more than {ddof} row(s), got {self._count}"
            )
        if column_i == column_j:
            return float(self.variances(ddof=ddof)[column_i])
        i, j = min(column_i, column_j), max(column_i, column_j)
        index = self._pairs.index((i, j))
        centered = crosses[index] - sums[i] * sums[j] / self._count
        return float(centered / (self._count - ddof))

    def pair_moments(self, column_i: int, column_j: int, *, ddof: int = 1):
        """``(σ_i², σ_j², σ_ij)`` of a column pair — the security-range inputs."""
        variances = self.variances(ddof=ddof)
        return (
            float(variances[column_i]),
            float(variances[column_j]),
            self.covariance(column_i, column_j, ddof=ddof),
        )


def correlation_from_moments(accumulator: StreamingMoments, *, ddof: int = 1) -> np.ndarray:
    """Correlation matrix from an accumulated ``StreamingMoments(n, cross=True)``.

    Shared by the max-variance pair selection of both release paths: the
    in-memory :class:`~repro.core.RBT` feeds the whole matrix through one
    accumulator, the streaming pipeline feeds row chunks — the tiling makes
    the resulting matrices bitwise identical, so the greedy pairing (and
    with it the whole release) cannot diverge between the two paths even on
    near-tied correlations.  Degenerate (zero-variance) columns yield NaN,
    which the pairing treats as zero correlation.
    """
    variances = accumulator.variances(ddof=ddof)
    n = variances.shape[0]
    correlation = np.eye(n)
    with np.errstate(invalid="ignore", divide="ignore"):
        for i in range(n):
            for j in range(i + 1, n):
                denominator = np.sqrt(variances[i] * variances[j])
                value = (
                    accumulator.covariance(i, j, ddof=ddof) / denominator
                    if denominator > 0
                    else np.nan
                )
                correlation[i, j] = correlation[j, i] = value
    return correlation


def streamed_correlation(values, *, ddof: int = 1) -> np.ndarray:
    """Correlation matrix of a materialized ``(m, n)`` array via the tiled reducer."""
    accumulator = StreamingMoments(np.asarray(values).shape[1], cross=True)
    accumulator.update(values)
    return correlation_from_moments(accumulator, ddof=ddof)


def streamed_pair_moments(attribute_i, attribute_j, *, ddof: int = 1) -> tuple[float, float, float]:
    """``(σ_i², σ_j², σ_ij)`` of two materialized columns via the tiled reducer.

    This is the in-memory entry point of the bitwise contract: feeding the
    same two columns chunk-by-chunk into a ``StreamingMoments(2, cross=True)``
    produces exactly these three numbers.
    """
    stacked = np.column_stack(
        (np.asarray(attribute_i, dtype=float), np.asarray(attribute_j, dtype=float))
    )
    accumulator = StreamingMoments(2, cross=True)
    accumulator.update(stacked)
    return accumulator.pair_moments(0, 1, ddof=ddof)
