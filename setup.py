"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 517/660 editable installs cannot build wheel metadata.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work offline; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
