"""Unit tests for the DataMatrix abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataMatrix
from repro.exceptions import SchemaError, ValidationError


@pytest.fixture
def matrix() -> DataMatrix:
    return DataMatrix(
        [[1.0, 10.0, 100.0], [2.0, 20.0, 200.0], [3.0, 30.0, 300.0]],
        columns=["a", "b", "c"],
        ids=["r1", "r2", "r3"],
    )


class TestConstruction:
    def test_shape_and_columns(self, matrix):
        assert matrix.shape == (3, 3)
        assert matrix.n_objects == 3
        assert matrix.n_attributes == 3
        assert matrix.columns == ("a", "b", "c")
        assert len(matrix) == 3

    def test_default_column_names(self):
        assert DataMatrix([[1.0, 2.0]]).columns == ("x0", "x1")

    def test_values_are_read_only(self, matrix):
        with pytest.raises(ValueError):
            matrix.values[0, 0] = 99.0

    def test_values_are_copied_from_input(self):
        source = np.array([[1.0, 2.0]])
        matrix = DataMatrix(source)
        source[0, 0] = 42.0
        assert matrix.values[0, 0] == 1.0

    def test_column_count_mismatch(self):
        with pytest.raises(SchemaError, match="column name"):
            DataMatrix([[1.0, 2.0]], columns=["only_one"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="unique"):
            DataMatrix([[1.0, 2.0]], columns=["a", "a"])

    def test_id_length_mismatch(self):
        with pytest.raises(ValidationError, match="one entry per row"):
            DataMatrix([[1.0], [2.0]], ids=["only-one"])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            DataMatrix([[np.nan]])

    def test_equality_and_hash(self, matrix):
        other = DataMatrix(matrix.values, columns=matrix.columns, ids=matrix.ids)
        assert matrix == other
        assert hash(matrix) == hash(other)
        assert matrix != DataMatrix(matrix.values, columns=["x", "y", "z"], ids=matrix.ids)
        assert (matrix == "not a matrix") is False


class TestColumnAccess:
    def test_column_returns_copy(self, matrix):
        column = matrix.column("b")
        assert column.tolist() == [10.0, 20.0, 30.0]
        column[0] = -1.0
        assert matrix.column("b")[0] == 10.0

    def test_column_index(self, matrix):
        assert matrix.column_index("c") == 2

    def test_unknown_column(self, matrix):
        with pytest.raises(KeyError, match="unknown column"):
            matrix.column("zzz")

    def test_columns_array_order(self, matrix):
        array = matrix.columns_array(["c", "a"])
        assert array[:, 0].tolist() == [100.0, 200.0, 300.0]
        assert array[:, 1].tolist() == [1.0, 2.0, 3.0]

    def test_select_and_drop(self, matrix):
        selected = matrix.select(["c", "b"])
        assert selected.columns == ("c", "b")
        assert selected.ids == matrix.ids
        dropped = matrix.drop(["b"])
        assert dropped.columns == ("a", "c")

    def test_drop_all_columns_rejected(self, matrix):
        with pytest.raises(ValidationError, match="every column"):
            matrix.drop(["a", "b", "c"])

    def test_rows_selection(self, matrix):
        subset = matrix.rows([2, 0])
        assert subset.ids == ("r3", "r1")
        assert subset.values[:, 0].tolist() == [3.0, 1.0]


class TestDerivation:
    def test_with_values_shape_checked(self, matrix):
        with pytest.raises(ValidationError, match="shape"):
            matrix.with_values(np.zeros((2, 3)))

    def test_with_values_keeps_metadata(self, matrix):
        updated = matrix.with_values(np.zeros((3, 3)))
        assert updated.columns == matrix.columns
        assert updated.ids == matrix.ids
        assert np.all(updated.values == 0.0)

    def test_with_column_values(self, matrix):
        updated = matrix.with_column_values({"b": [7.0, 8.0, 9.0]})
        assert updated.column("b").tolist() == [7.0, 8.0, 9.0]
        assert updated.column("a").tolist() == [1.0, 2.0, 3.0]

    def test_with_column_values_length_checked(self, matrix):
        with pytest.raises(ValidationError, match="length"):
            matrix.with_column_values({"b": [1.0]})

    def test_without_ids(self, matrix):
        assert matrix.without_ids().ids is None

    def test_rename(self, matrix):
        renamed = matrix.rename({"a": "alpha"})
        assert renamed.columns == ("alpha", "b", "c")
        with pytest.raises(ValidationError):
            matrix.rename({"zzz": "x"})


class TestStatistics:
    def test_column_means(self, matrix):
        assert matrix.column_means().tolist() == [2.0, 20.0, 200.0]

    def test_column_variances_population_vs_sample(self, matrix):
        population = matrix.column_variances(ddof=0)
        sample = matrix.column_variances(ddof=1)
        assert np.allclose(sample, population * 3 / 2)

    def test_column_minmax(self, matrix):
        minima, maxima = matrix.column_minmax()
        assert minima.tolist() == [1.0, 10.0, 100.0]
        assert maxima.tolist() == [3.0, 30.0, 300.0]

    def test_describe_keys(self, matrix):
        description = matrix.describe()
        assert set(description) == {"a", "b", "c"}
        assert set(description["a"]) == {"mean", "std", "var", "min", "max"}
        assert description["a"]["mean"] == 2.0


class TestRecordsRoundTrip:
    def test_to_records_includes_ids(self, matrix):
        records = matrix.to_records()
        assert records[0]["id"] == "r1"
        assert records[2]["c"] == 300.0

    def test_from_records(self):
        records = [
            {"id": 1, "x": 1.0, "y": 2.0},
            {"id": 2, "x": 3.0, "y": 4.0},
        ]
        matrix = DataMatrix.from_records(records, id_field="id")
        assert matrix.columns == ("x", "y")
        assert matrix.ids == (1, 2)

    def test_from_records_missing_attribute(self):
        with pytest.raises(ValidationError, match="missing attribute"):
            DataMatrix.from_records([{"x": 1.0}, {"y": 2.0}])

    def test_from_records_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            DataMatrix.from_records([])

    def test_round_trip(self, matrix):
        rebuilt = DataMatrix.from_records(
            matrix.to_records(), columns=list(matrix.columns), id_field="id"
        )
        assert rebuilt == matrix
