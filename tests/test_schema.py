"""Unit tests for schemas and column roles."""

from __future__ import annotations

import pytest

from repro.data import ColumnRole, ColumnSpec, Schema
from repro.exceptions import SchemaError


class TestColumnRole:
    def test_numeric_roles(self):
        assert ColumnRole.CONFIDENTIAL_NUMERIC.is_numeric
        assert ColumnRole.NUMERIC.is_numeric
        assert not ColumnRole.IDENTIFIER.is_numeric
        assert not ColumnRole.CATEGORICAL.is_numeric

    def test_construct_from_string(self):
        assert ColumnRole("identifier") is ColumnRole.IDENTIFIER


class TestColumnSpec:
    def test_defaults_to_numeric(self):
        assert ColumnSpec("age").role is ColumnRole.NUMERIC

    def test_string_role_is_coerced(self):
        assert ColumnSpec("age", "confidential_numeric").role is ColumnRole.CONFIDENTIAL_NUMERIC

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            ColumnSpec("")


class TestSchema:
    def make(self) -> Schema:
        return Schema.from_names(
            ["id", "age", "weight", "city"],
            roles={"id": ColumnRole.IDENTIFIER, "city": ColumnRole.CATEGORICAL},
            default_role=ColumnRole.CONFIDENTIAL_NUMERIC,
        )

    def test_from_names_roles(self):
        schema = self.make()
        assert schema.identifier_names() == ["id"]
        assert schema.confidential_names() == ["age", "weight"]
        assert schema.numeric_names() == ["age", "weight"]
        assert schema.names_with_role(ColumnRole.CATEGORICAL) == ["city"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.from_names(["a", "a"])

    def test_unknown_role_override_rejected(self):
        with pytest.raises(SchemaError, match="unknown column"):
            Schema.from_names(["a"], roles={"b": ColumnRole.IDENTIFIER})

    def test_len_iter_contains_getitem(self):
        schema = self.make()
        assert len(schema) == 4
        assert [spec.name for spec in schema] == ["id", "age", "weight", "city"]
        assert "age" in schema
        assert "salary" not in schema
        assert schema["age"].role is ColumnRole.CONFIDENTIAL_NUMERIC
        with pytest.raises(KeyError):
            schema["salary"]

    def test_role_of(self):
        assert self.make().role_of("city") is ColumnRole.CATEGORICAL

    def test_select_preserves_order(self):
        selected = self.make().select(["weight", "age"])
        assert selected.names == ["weight", "age"]

    def test_select_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make().select(["salary"])

    def test_drop(self):
        dropped = self.make().drop(["id", "city"])
        assert dropped.names == ["age", "weight"]

    def test_drop_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make().drop(["salary"])

    def test_with_role(self):
        updated = self.make().with_role("age", ColumnRole.NUMERIC)
        assert updated.role_of("age") is ColumnRole.NUMERIC
        # The original schema is unchanged (schemas are immutable value objects).
        assert self.make().role_of("age") is ColumnRole.CONFIDENTIAL_NUMERIC

    def test_with_role_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make().with_role("salary", ColumnRole.NUMERIC)
