"""Tests for the fast CSV codec, the pipelined I/O helpers and bench diffing.

The fast codec's contract is that it is *observationally identical* to the
``csv``-module reference codec: same chunks (bitwise values, same ids, same
``start_row``), same error messages, same written bytes.  Most tests here
therefore run both codecs side by side and compare.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import MatrixCsvWriter, iter_matrix_csv, matrix_to_csv
from repro.exceptions import SerializationError, ValidationError
from repro.perf.benchreport import (
    diff_bench_reports,
    format_bench_diff,
    has_regressions,
    load_bench_report,
)
from repro.perf.csv_codec import (
    DecodedChunkCache,
    PipelinedTextSink,
    decode_matrix_csv,
    encode_block_via_csv_writer,
    encode_matrix_block,
    prefetch_chunks,
    resolve_codec,
)

#: Floats whose shortest-repr forms exercise every formatting edge: negative
#: zero, subnormals, exponent boundaries and 16/17-significant-digit cases.
EXTREME_FLOATS = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.1,
    -0.3,
    5e-324,
    -5e-324,
    2.2250738585072014e-308,
    1.7976931348623157e308,
    -1.7976931348623157e308,
    9007199254740993.0,
    0.30000000000000004,
    1e16,
    1e-5,
    123456.78901234567,
    2.0**-1022,
    3.141592653589793,
]


def _decode_both(path, **kwargs):
    fast = list(iter_matrix_csv(path, codec="fast", **kwargs))
    python = list(iter_matrix_csv(path, codec="python", **kwargs))
    return fast, python


def _assert_chunks_equal(fast, python):
    assert len(fast) == len(python)
    for a, b in zip(fast, python):
        assert a.columns == b.columns
        assert a.ids == b.ids
        assert a.start_row == b.start_row
        assert a.values.shape == b.values.shape
        assert np.array_equal(
            a.values.view(np.uint64), b.values.view(np.uint64)
        ), "decoded values differ bitwise"


def _error_both(path, **kwargs):
    messages = []
    for codec in ("fast", "python"):
        with pytest.raises(SerializationError) as excinfo:
            list(iter_matrix_csv(path, codec=codec, **kwargs))
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1], "codecs raised different messages"
    return messages[0]


class TestResolveCodec:
    def test_default_is_fast(self):
        assert resolve_codec(None) == "fast"

    def test_explicit_values(self):
        assert resolve_codec("fast") == "fast"
        assert resolve_codec("python") == "python"
        assert resolve_codec("FAST") == "fast"

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError, match="fast"):
            resolve_codec("arrow")


class TestDecodeParity:
    """Both codecs produce identical chunks on well-formed and hostile files."""

    @pytest.mark.parametrize("chunk_rows", [1, 3, 1000])
    def test_basic_parity(self, tmp_path, chunk_rows):
        path = tmp_path / "m.csv"
        rows = "".join(
            f"r{i},{float(i) / 7!r},{-float(i) * 3.3!r}\n" for i in range(50)
        )
        path.write_text("id,a,b\n" + rows, encoding="utf-8")
        fast, python = _decode_both(path, chunk_rows=chunk_rows)
        _assert_chunks_equal(fast, python)

    def test_extreme_floats_parity(self, tmp_path):
        path = tmp_path / "extreme.csv"
        lines = ["id,x,y"]
        for i, value in enumerate(EXTREME_FLOATS):
            lines.append(f"r{i},{value!r},{-value!r}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fast, python = _decode_both(path, chunk_rows=4)
        _assert_chunks_equal(fast, python)
        merged = np.concatenate([chunk.values for chunk in fast])
        expected = np.array([[v, -v] for v in EXTREME_FLOATS])
        assert np.array_equal(merged.view(np.uint64), expected.view(np.uint64))

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(b"id,a,b\r\nr0,1.5,2.5\r\nr1,-0.0,3.25\r\n")
        fast, python = _decode_both(path, chunk_rows=1)
        _assert_chunks_equal(fast, python)
        assert fast[0].values[0, 0] == 1.5

    def test_utf8_bom(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(b"\xef\xbb\xbfid,a,b\nr0,1.0,2.0\n")
        fast, python = _decode_both(path, chunk_rows=10)
        _assert_chunks_equal(fast, python)
        assert fast[0].columns == ("a", "b")

    def test_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "notrail.csv"
        path.write_bytes(b"id,a,b\nr0,1.0,2.0\nr1,3.0,4.0")
        fast, python = _decode_both(path, chunk_rows=1)
        _assert_chunks_equal(fast, python)
        assert len(fast) == 2

    def test_crlf_bom_and_no_trailing_newline_together(self, tmp_path):
        path = tmp_path / "hostile.csv"
        path.write_bytes(b"\xef\xbb\xbfid,a\r\nr0,1.25\r\nr1,2.5")
        fast, python = _decode_both(path, chunk_rows=1)
        _assert_chunks_equal(fast, python)
        assert len(fast) == 2

    def test_quoted_labels_fall_back_identically(self, tmp_path):
        path = tmp_path / "quoted.csv"
        path.write_text(
            'id,a,b\n"row, one",1.0,2.0\n"say ""hi""",3.0,4.0\nplain,5.0,6.0\n',
            encoding="utf-8",
        )
        fast, python = _decode_both(path, chunk_rows=2)
        _assert_chunks_equal(fast, python)
        assert fast[0].ids == ("row, one", 'say "hi"')

    def test_blank_lines_skipped_identically(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("id,a\n\nr0,1.0\n\n\nr1,2.0\n", encoding="utf-8")
        fast, python = _decode_both(path, chunk_rows=1)
        _assert_chunks_equal(fast, python)
        assert len(fast) == 2

    def test_no_id_column(self, tmp_path):
        path = tmp_path / "noid.csv"
        path.write_text("a,b\n1.0,2.0\n3.0,4.0\n", encoding="utf-8")
        fast, python = _decode_both(path, chunk_rows=1)
        _assert_chunks_equal(fast, python)
        assert fast[0].ids is None

    def test_ragged_row_same_error(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("id,a,b\nr0,1.0,2.0\nr1,3.0\n", encoding="utf-8")
        message = _error_both(path, chunk_rows=10)
        assert "field(s)" in message

    def test_non_numeric_same_error(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("id,a,b\nr0,1.0,hello\n", encoding="utf-8")
        message = _error_both(path, chunk_rows=10)
        assert "hello" in message

    def test_underscore_token_same_outcome(self, tmp_path):
        # float("1_5") parses in Python while np.loadtxt rejects it, so the
        # fast codec must fall back rather than error.
        path = tmp_path / "under.csv"
        path.write_text("id,a\nr0,1_5\n", encoding="utf-8")
        fast, python = _decode_both(path, chunk_rows=10)
        _assert_chunks_equal(fast, python)
        assert fast[0].values[0, 0] == 15.0

    def test_duplicate_header_same_error(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("id,a,a\nr0,1.0,2.0\n", encoding="utf-8")
        _error_both(path, chunk_rows=10)

    def test_empty_and_header_only_same_error(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("", encoding="utf-8")
        _error_both(empty, chunk_rows=10)
        header_only = tmp_path / "header.csv"
        header_only.write_text("id,a\n", encoding="utf-8")
        _error_both(header_only, chunk_rows=10)

    def test_error_after_complete_chunks_same_prefix(self, tmp_path):
        # The python codec yields every complete chunk before raising on a
        # bad row; the fast fallback must preserve that ordering.
        path = tmp_path / "late.csv"
        path.write_text("id,a\nr0,1.0\nr1,2.0\nr2,oops\n", encoding="utf-8")
        prefixes = []
        for codec in ("fast", "python"):
            chunks = []
            with pytest.raises(SerializationError):
                for chunk in iter_matrix_csv(path, chunk_rows=1, codec=codec):
                    chunks.append(chunk)
            prefixes.append(chunks)
        _assert_chunks_equal(prefixes[0], prefixes[1])
        assert len(prefixes[0]) == 2

    def test_fuzz_parity(self, tmp_path):
        rng = np.random.default_rng(20260807)
        tokens = ["1.5", "-0.0", "2e308", "nan", "inf", "-inf", "1_5", "x", '"q,q"', ""]
        for trial in range(30):
            n_rows = int(rng.integers(0, 8))
            n_cols = int(rng.integers(1, 4))
            lines = ["id," + ",".join(f"c{j}" for j in range(n_cols))]
            for i in range(n_rows):
                if rng.random() < 0.15:
                    lines.append("")  # blank line
                cells = [f"r{i}"]
                for _ in range(n_cols + (1 if rng.random() < 0.1 else 0)):
                    if rng.random() < 0.25:
                        cells.append(tokens[int(rng.integers(0, len(tokens)))])
                    else:
                        cells.append(repr(float(rng.normal())))
                lines.append(",".join(cells))
            path = tmp_path / f"fuzz{trial}.csv"
            newline = "\r\n" if trial % 3 == 0 else "\n"
            body = newline.join(lines) + (newline if trial % 2 == 0 else "")
            path.write_text(body, encoding="utf-8")
            chunk_rows = int(rng.integers(1, 5))
            results = []
            for codec in ("fast", "python"):
                chunks: list = []
                error = None
                try:
                    for chunk in iter_matrix_csv(path, chunk_rows=chunk_rows, codec=codec):
                        chunks.append(chunk)
                except SerializationError as exc:
                    error = str(exc)
                results.append((chunks, error))
            (fast_chunks, fast_error), (python_chunks, python_error) = results
            assert fast_error == python_error, f"trial {trial}: {fast_error!r} vs {python_error!r}"
            _assert_chunks_equal(fast_chunks, python_chunks)


class TestEncodeParity:
    """The fast encoder's bytes match the csv.writer reference cell for cell."""

    def test_fast_block_matches_reference(self):
        values = np.array([EXTREME_FLOATS, EXTREME_FLOATS[::-1]], dtype=np.float64).T
        ids = [f"r{i}" for i in range(values.shape[0])]
        fast = encode_matrix_block(values, ids)
        assert fast is not None
        assert fast == encode_block_via_csv_writer(values, ids, None)

    def test_no_ids(self):
        values = np.array([[1.5, -0.0], [5e-324, 1e16]])
        fast = encode_matrix_block(values, None)
        assert fast == encode_block_via_csv_writer(values, None, None)

    def test_ids_needing_quotes_are_ineligible(self):
        values = np.array([[1.0], [2.0]])
        assert encode_matrix_block(values, ["a,b", "plain"]) is None
        assert encode_matrix_block(values, ['say "hi"', "plain"]) is None
        assert encode_matrix_block(values, ["line\nbreak", "plain"]) is None

    def test_non_string_ids_are_ineligible(self):
        values = np.array([[1.0]])
        assert encode_matrix_block(values, [7]) is None

    def test_writer_byte_identity_across_codecs(self, tmp_path):
        rng = np.random.default_rng(5)
        values = rng.normal(size=(200, 3)) * 1e3
        values[0] = [-0.0, 5e-324, 1.7976931348623157e308]
        ids = [f"row-{i}" for i in range(200)]
        outputs = {}
        for codec in ("fast", "python"):
            path = tmp_path / f"{codec}.csv"
            with MatrixCsvWriter(path, ["a", "b", "c"], include_ids=True, codec=codec) as w:
                w.write_rows(values[:77], ids=ids[:77])
                w.write_rows(values[77:], ids=ids[77:])
            outputs[codec] = path.read_bytes()
        assert outputs["fast"] == outputs["python"]

    def test_float_format_still_honoured(self, tmp_path):
        values = np.array([[1.23456789]])
        path = tmp_path / "fmt.csv"
        with MatrixCsvWriter(path, ["a"], include_ids=False, float_format="%.3f", codec="fast") as w:
            w.write_rows(values)
        assert path.read_bytes() == b"a\r\n1.235\r\n"


class TestRoundTripProperty:
    """encode(decode(file)) reproduces the file byte for byte."""

    @pytest.mark.parametrize("codec", ["fast", "python"])
    @pytest.mark.parametrize("chunk_rows", [1, 7])
    def test_round_trip_byte_identical(self, tmp_path, codec, chunk_rows):
        source = tmp_path / "source.csv"
        rng = np.random.default_rng(99)
        values = np.concatenate(
            [
                np.array([EXTREME_FLOATS, EXTREME_FLOATS[::-1]], dtype=np.float64).T,
                rng.normal(size=(25, 2)) * 10.0 ** rng.integers(-300, 300, size=(25, 2)),
            ]
        )
        ids = [f"obj {i}" if i % 3 else f'"q{i}",x' for i in range(values.shape[0])]
        with MatrixCsvWriter(source, ["a", "b"], include_ids=True, codec=codec) as writer:
            writer.write_rows(values, ids=ids)

        copy = tmp_path / "copy.csv"
        with MatrixCsvWriter(copy, ["a", "b"], include_ids=True, codec=codec) as writer:
            for chunk in iter_matrix_csv(source, chunk_rows=chunk_rows, codec=codec):
                writer.write_rows(chunk.values, ids=list(chunk.ids))
        assert copy.read_bytes() == source.read_bytes()


class TestPipelinedIO:
    def test_prefetch_yields_identical_chunks(self, tmp_path):
        path = tmp_path / "m.csv"
        rows = "".join(f"r{i},{float(i)!r}\n" for i in range(100))
        path.write_text("id,a\n" + rows, encoding="utf-8")
        plain = list(iter_matrix_csv(path, chunk_rows=7))
        prefetched = list(iter_matrix_csv(path, chunk_rows=7, prefetch=2))
        _assert_chunks_equal(prefetched, plain)

    def test_prefetch_propagates_errors(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,a\nr0,oops\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            list(iter_matrix_csv(path, chunk_rows=1, prefetch=2))

    def test_prefetch_depth_validated(self):
        with pytest.raises(ValidationError):
            list(prefetch_chunks(iter([]), depth=0))

    def test_pipelined_writer_byte_identical(self, tmp_path):
        rng = np.random.default_rng(11)
        values = rng.normal(size=(500, 2))
        ids = [f"r{i}" for i in range(500)]
        plain_path, piped_path = tmp_path / "plain.csv", tmp_path / "piped.csv"
        for path, pipelined in ((plain_path, False), (piped_path, True)):
            with MatrixCsvWriter(path, ["a", "b"], include_ids=True, pipelined=pipelined) as w:
                for start in range(0, 500, 37):
                    w.write_rows(values[start : start + 37], ids=ids[start : start + 37])
        assert piped_path.read_bytes() == plain_path.read_bytes()

    def test_sink_rejects_write_after_close(self, tmp_path):
        handle = (tmp_path / "sink.txt").open("w", encoding="utf-8")
        sink = PipelinedTextSink(handle)
        sink.write("hello")
        sink.close()
        with pytest.raises(SerializationError):
            sink.write("again")
        handle.close()


class TestDecodedChunkCache:
    def test_replay_is_bitwise_identical(self, tmp_path):
        path = tmp_path / "m.csv"
        matrix_to_csv_rows = "".join(f"r{i},{float(i) / 3!r},{-float(i)!r}\n" for i in range(40))
        path.write_text("id,a,b\n" + matrix_to_csv_rows, encoding="utf-8")
        chunks = [
            (chunk.values, chunk.ids) for chunk in iter_matrix_csv(path, chunk_rows=7)
        ]
        with DecodedChunkCache() as cache:
            teed = list(cache.tee(iter(chunks)))
            assert cache.complete
            replayed = list(cache.replay())
            assert len(replayed) == len(teed)
            for (values_a, ids_a), (values_b, ids_b) in zip(teed, replayed):
                assert ids_a == ids_b
                assert np.array_equal(values_a.view(np.uint64), values_b.view(np.uint64))

    def test_incomplete_tee_cannot_replay(self):
        cache = DecodedChunkCache()
        try:
            iterator = cache.tee(iter([(np.zeros((2, 2)), None), (np.ones((1, 2)), None)]))
            next(iterator)  # abandon before exhaustion
            assert not cache.complete
            with pytest.raises(ValidationError):
                list(cache.replay())
        finally:
            cache.close()


class TestChunkRowsValidation:
    @pytest.mark.parametrize("codec", ["fast", "python"])
    def test_invalid_chunk_rows_rejected(self, tmp_path, codec):
        path = tmp_path / "m.csv"
        path.write_text("id,a\nr0,1.0\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="chunk_rows"):
            list(iter_matrix_csv(path, chunk_rows=0, codec=codec))

    def test_decode_matrix_csv_direct(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("id,a\nr0,1.0\nr1,2.0\n", encoding="utf-8")
        chunks = list(decode_matrix_csv(path, chunk_rows=1))
        assert [chunk.start_row for chunk in chunks] == [0, 1]


class TestBenchReport:
    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ValidationError):
            load_bench_report(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValidationError):
            load_bench_report(bad)

    def test_regression_and_contract_gating(self):
        old = {"hot_paths": {"s": {"speedup": 3.0, "byte_identical": True, "seconds": 1.0}}}
        good = {"hot_paths": {"s": {"speedup": 2.9, "byte_identical": True, "seconds": 1.1}}}
        bad = {"hot_paths": {"s": {"speedup": 1.0, "byte_identical": False, "seconds": 1.0}}}
        assert not has_regressions(diff_bench_reports(old, good))
        rows = diff_bench_reports(old, bad)
        assert has_regressions(rows)
        statuses = {row["path"]: row["status"] for row in rows}
        assert statuses["s.speedup"] == "REGRESSED"
        assert statuses["s.byte_identical"] == "BROKEN"

    def test_missing_gated_metric_fails(self):
        old = {"hot_paths": {"s": {"speedup": 3.0}}}
        new = {"hot_paths": {"s": {}}}
        assert has_regressions(diff_bench_reports(old, new))

    def test_format_mentions_gate_outcome(self):
        old = {"hot_paths": {"s": {"speedup": 3.0}}}
        new = {"hot_paths": {"s": {"speedup": 3.2}}}
        text = format_bench_diff(diff_bench_reports(old, new))
        assert "OK" in text and "s.speedup" in text
