"""Unit tests for identifier suppression and the pre-processing pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ColumnRole, DataMatrix, Schema, Table
from repro.exceptions import ValidationError
from repro.preprocessing import (
    IdentifierSuppressor,
    MinMaxNormalizer,
    PreprocessingPipeline,
    suppress_identifiers,
)


@pytest.fixture
def table() -> Table:
    schema = Schema.from_names(
        ["id", "phone", "age", "weight"],
        roles={"id": ColumnRole.IDENTIFIER, "phone": ColumnRole.IDENTIFIER},
        default_role=ColumnRole.CONFIDENTIAL_NUMERIC,
    )
    return Table(
        schema,
        {
            "id": [1, 2, 3],
            "phone": ["555-1", "555-2", "555-3"],
            "age": [30.0, 40.0, 50.0],
            "weight": [70.0, 80.0, 90.0],
        },
    )


class TestIdentifierSuppressor:
    def test_schema_driven_suppression(self, table):
        released = IdentifierSuppressor().transform(table)
        assert released.column_names == ["age", "weight"]

    def test_extra_columns_on_table(self, table):
        released = IdentifierSuppressor(extra_columns=["weight"]).transform(table)
        assert released.column_names == ["age"]

    def test_matrix_extra_columns_and_ids(self):
        matrix = DataMatrix(
            [[1.0, 2.0, 3.0]], columns=["a", "b", "c"], ids=["obj"]
        )
        suppressor = IdentifierSuppressor(extra_columns=["b"], drop_object_ids=True)
        released = suppressor.transform(matrix)
        assert released.columns == ("a", "c")
        assert released.ids is None

    def test_matrix_without_matching_columns_is_unchanged(self):
        matrix = DataMatrix([[1.0, 2.0]], columns=["a", "b"], ids=["x"])
        released = IdentifierSuppressor(extra_columns=["zzz"]).transform(matrix)
        assert released.columns == ("a", "b")
        assert released.ids == ("x",)

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError, match="Table or DataMatrix"):
            IdentifierSuppressor().transform([[1.0]])

    def test_one_shot_helper(self, table):
        released = suppress_identifiers(table)
        assert released.column_names == ["age", "weight"]


class TestPreprocessingPipeline:
    def test_run_table_normalizes_confidential_columns(self, table):
        pipeline = PreprocessingPipeline()
        normalized = pipeline.run_table(table)
        assert normalized.columns == ("age", "weight")
        assert np.allclose(normalized.values.mean(axis=0), 0.0, atol=1e-12)

    def test_run_table_keeps_requested_ids(self, table):
        normalized = PreprocessingPipeline().run_table(table, id_column="id")
        assert normalized.ids == (1, 2, 3)

    def test_run_table_unknown_id_column(self, table):
        with pytest.raises(ValidationError, match="unknown id column"):
            PreprocessingPipeline().run_table(table, id_column="ssn")

    def test_run_matrix_with_custom_normalizer(self):
        matrix = DataMatrix([[0.0, 10.0], [10.0, 30.0]], columns=["a", "b"])
        pipeline = PreprocessingPipeline(normalizer=MinMaxNormalizer())
        normalized = pipeline.run_matrix(matrix)
        assert normalized.values.min() == pytest.approx(0.0)
        assert normalized.values.max() == pytest.approx(1.0)

    def test_run_dispatches_by_type(self, table):
        pipeline = PreprocessingPipeline()
        from_table = pipeline.run(table)
        assert from_table.columns == ("age", "weight")
        matrix = DataMatrix([[1.0, 2.0], [3.0, 4.0]], columns=["a", "b"])
        from_matrix = pipeline.run(matrix)
        assert from_matrix.columns == ("a", "b")

    def test_run_rejects_other_types(self):
        with pytest.raises(ValidationError, match="Table or DataMatrix"):
            PreprocessingPipeline().run([[1.0, 2.0]])

    def test_run_matrix_rejects_table(self, table):
        with pytest.raises(ValidationError, match="DataMatrix"):
            PreprocessingPipeline().run_matrix(table)

    def test_run_table_rejects_matrix(self):
        matrix = DataMatrix([[1.0, 2.0]], columns=["a", "b"])
        with pytest.raises(ValidationError, match="Table"):
            PreprocessingPipeline().run_table(matrix)
